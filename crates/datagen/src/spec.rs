//! Dataset containers, generation configuration and summary statistics.

use feataug_tabular::Table;

/// The learning task of a synthetic dataset (mirrors `feataug_ml::Task` without taking the
/// dependency — the datagen crate only depends on the table substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Binary classification, evaluated with AUC.
    Binary,
    /// Multi-class classification with `n_classes`, evaluated with macro-F1.
    MultiClass(usize),
    /// Regression, evaluated with RMSE.
    Regression,
}

impl TaskKind {
    /// Paper-style metric name for this task.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TaskKind::Binary => "AUC",
            TaskKind::MultiClass(_) => "F1",
            TaskKind::Regression => "RMSE",
        }
    }
}

/// Knobs shared by every generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of entities (rows of the training table `D`).
    pub n_entities: usize,
    /// Average number of relevant-table rows per entity (the one-to-many fan-out).
    pub fanout: usize,
    /// Number of additional uninformative columns appended to the relevant table.
    pub n_noise_cols: usize,
    /// RNG seed; every generated value derives deterministically from it.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_entities: 2000,
            fanout: 20,
            n_noise_cols: 2,
            seed: 42,
        }
    }
}

impl GenConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        GenConfig {
            n_entities: 120,
            fanout: 6,
            n_noise_cols: 1,
            seed: 7,
        }
    }

    /// A small configuration for integration tests and quick examples.
    pub fn small() -> Self {
        GenConfig {
            n_entities: 600,
            fanout: 10,
            n_noise_cols: 2,
            seed: 42,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style entity-count override.
    pub fn with_entities(mut self, n: usize) -> Self {
        self.n_entities = n;
        self
    }

    /// Builder-style fan-out override.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }
}

/// A generated dataset: the training table, the relevant table and the metadata FeatAug needs.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Dataset name (paper name, lowercase).
    pub name: &'static str,
    /// Training table `D`: entity key column(s), base features, and a `label` column.
    pub train: Table,
    /// Relevant table `R` with a foreign key into `D`.
    pub relevant: Table,
    /// Foreign-key / group-by column names shared by `D` and `R` (paper's `K`).
    pub key_columns: Vec<String>,
    /// Name of the label column in `train`.
    pub label_column: String,
    /// Columns of `R` that are sensible aggregation targets (paper's `A`).
    pub agg_columns: Vec<String>,
    /// Columns of `R` offered as candidate predicate attributes (paper's `attr`).
    pub predicate_attrs: Vec<String>,
    /// The learning task.
    pub task: TaskKind,
    /// Human-readable description of the planted signal (documented in DESIGN.md).
    pub signal_description: &'static str,
}

impl SyntheticDataset {
    /// Names of the base feature columns of `D` (everything except keys and the label).
    pub fn base_feature_columns(&self) -> Vec<String> {
        self.train
            .column_names()
            .into_iter()
            .filter(|c| *c != self.label_column && !self.key_columns.iter().any(|k| k == c))
            .map(|s| s.to_string())
            .collect()
    }

    /// Summary statistics in the shape of the paper's Table I / Table IV rows.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name,
            n_tables: 2,
            relevant_rows: self.relevant.num_rows(),
            train_rows: self.train.num_rows(),
            n_relevant_cols: self.relevant.num_columns(),
            n_agg_columns: self.agg_columns.len(),
            n_predicate_attrs: self.predicate_attrs.len(),
            task: self.task,
        }
    }
}

/// One declared foreign-key edge of a [`SyntheticSchema`]:
/// `left.left_keys[i] = right.right_keys[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaEdgeSpec {
    /// Left table name.
    pub left: String,
    /// Right table name.
    pub right: String,
    /// Key columns on the left table.
    pub left_keys: Vec<String>,
    /// Key columns on the right table (same arity).
    pub right_keys: Vec<String>,
}

/// A generated **multi-table** dataset: a training table plus a chain (or
/// DAG) of relevant tables with declared foreign keys, for exercising
/// join-path search. The single-relevant-table [`SyntheticDataset`] is the
/// degenerate one-table case of this shape.
#[derive(Debug, Clone)]
pub struct SyntheticSchema {
    /// Dataset name (lowercase, `-schema` suffixed).
    pub name: &'static str,
    /// Training table `D`: entity keys, base features, and a label column.
    pub train: Table,
    /// The relevant tables, in chain order (the first links to `train`).
    pub tables: Vec<Table>,
    /// Declared foreign-key edges (including the `train` ↔ first-table one).
    pub edges: Vec<SchemaEdgeSpec>,
    /// Foreign-key column names shared by `train` and the base table.
    pub key_columns: Vec<String>,
    /// Name of the label column in `train`.
    pub label_column: String,
    /// The learning task.
    pub task: TaskKind,
    /// Human-readable description of the planted multi-hop signal.
    pub signal_description: &'static str,
}

impl SyntheticSchema {
    /// The relevant table of this name, if generated.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name() == name)
    }
}

/// Summary statistics of a generated dataset (paper Tables I, II, IV, V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: &'static str,
    /// Number of tables (training + relevant).
    pub n_tables: usize,
    /// Rows in the relevant table `R`.
    pub relevant_rows: usize,
    /// Rows in the training table `D`.
    pub train_rows: usize,
    /// Columns in the relevant table.
    pub n_relevant_cols: usize,
    /// Number of aggregation attributes (paper's "# of A").
    pub n_agg_columns: usize,
    /// Number of candidate predicate attributes (paper's "# of attr").
    pub n_predicate_attrs: usize,
    /// Learning task.
    pub task: TaskKind,
}

impl DatasetStats {
    /// Number of query templates `2^|attr|` (paper Table II's "# of T").
    pub fn n_query_templates(&self) -> f64 {
        2f64.powi(self.n_predicate_attrs as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let cfg = GenConfig::default()
            .with_seed(9)
            .with_entities(50)
            .with_fanout(3);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.n_entities, 50);
        assert_eq!(cfg.fanout, 3);
    }

    #[test]
    fn task_metric_names() {
        assert_eq!(TaskKind::Binary.metric_name(), "AUC");
        assert_eq!(TaskKind::MultiClass(4).metric_name(), "F1");
        assert_eq!(TaskKind::Regression.metric_name(), "RMSE");
    }

    #[test]
    fn template_count_is_power_of_two() {
        let stats = DatasetStats {
            name: "x",
            n_tables: 2,
            relevant_rows: 10,
            train_rows: 5,
            n_relevant_cols: 8,
            n_agg_columns: 3,
            n_predicate_attrs: 5,
            task: TaskKind::Binary,
        };
        assert_eq!(stats.n_query_templates(), 32.0);
    }
}
