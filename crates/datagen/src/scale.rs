//! Scaling utilities for the paper's scalability experiments (Figures 7–9).
//!
//! * [`widen_relevant`] duplicates the relevant table horizontally — the paper builds
//!   "Student-Wide" this way to sweep the number of columns (Figure 7).
//! * [`DatasetScale`] bundles the row/column knobs a scalability sweep varies, producing a
//!   scaled copy of a [`SyntheticDataset`].

use feataug_tabular::{Column, Table};

use crate::spec::SyntheticDataset;

/// Horizontally widen the relevant table of `dataset` until it has at least `target_cols`
/// columns, by duplicating non-key columns with suffixed names (`price__w1`, `price__w2`, …).
/// The duplicated columns are also appended to `predicate_attrs` so the Query Template
/// Identification search space really grows, matching the paper's Student-Wide construction.
pub fn widen_relevant(dataset: &SyntheticDataset, target_cols: usize) -> SyntheticDataset {
    let mut out = dataset.clone();
    let base_cols: Vec<String> = dataset
        .relevant
        .column_names()
        .into_iter()
        .filter(|c| !dataset.key_columns.iter().any(|k| k == c))
        .map(|s| s.to_string())
        .collect();
    if base_cols.is_empty() {
        return out;
    }
    let mut wave = 1usize;
    while out.relevant.num_columns() < target_cols {
        for col_name in &base_cols {
            if out.relevant.num_columns() >= target_cols {
                break;
            }
            let new_name = format!("{col_name}__w{wave}");
            let col = dataset
                .relevant
                .column(col_name)
                .expect("base column exists")
                .clone();
            out.relevant
                .add_column(new_name.clone(), col)
                .expect("fresh widened column");
            if dataset.predicate_attrs.iter().any(|p| p == col_name) {
                out.predicate_attrs.push(new_name.clone());
            }
            if dataset.agg_columns.iter().any(|a| a == col_name) {
                out.agg_columns.push(new_name);
            }
        }
        wave += 1;
    }
    out
}

/// Take the first `n` rows of a table (no shuffle — generators already randomise row order
/// within entities, and truncation keeps the one-to-many relationship intact for the kept keys).
fn truncate_rows(table: &Table, n: usize) -> Table {
    table.head(n)
}

/// A scaling recipe for the scalability figures.
#[derive(Debug, Clone, Copy)]
pub struct DatasetScale {
    /// Keep only this many training rows (None = all).
    pub train_rows: Option<usize>,
    /// Keep only this many relevant rows (None = all).
    pub relevant_rows: Option<usize>,
    /// Widen the relevant table to this many columns (None = unchanged).
    pub relevant_cols: Option<usize>,
}

impl DatasetScale {
    /// Identity scale.
    pub fn identity() -> Self {
        DatasetScale {
            train_rows: None,
            relevant_rows: None,
            relevant_cols: None,
        }
    }

    /// Scale only the training-table rows (Figure 8 sweeps).
    pub fn train_rows(n: usize) -> Self {
        DatasetScale {
            train_rows: Some(n),
            relevant_rows: None,
            relevant_cols: None,
        }
    }

    /// Scale only the relevant-table rows (Figure 9 sweeps).
    pub fn relevant_rows(n: usize) -> Self {
        DatasetScale {
            train_rows: None,
            relevant_rows: Some(n),
            relevant_cols: None,
        }
    }

    /// Scale only the relevant-table column count (Figure 7 sweeps).
    pub fn relevant_cols(n: usize) -> Self {
        DatasetScale {
            train_rows: None,
            relevant_rows: None,
            relevant_cols: Some(n),
        }
    }

    /// Apply the scale to a dataset, returning a scaled copy.
    pub fn apply(&self, dataset: &SyntheticDataset) -> SyntheticDataset {
        let mut out = dataset.clone();
        if let Some(cols) = self.relevant_cols {
            out = widen_relevant(&out, cols);
        }
        if let Some(rows) = self.train_rows {
            out.train = truncate_rows(&out.train, rows);
            // Keep only relevant rows whose keys survive, by filtering on key membership.
            out.relevant = filter_relevant_to_train(&out);
        }
        if let Some(rows) = self.relevant_rows {
            out.relevant = truncate_rows(&out.relevant, rows);
        }
        out
    }
}

/// Keep only relevant-table rows whose composite key appears in the (possibly truncated)
/// training table.
fn filter_relevant_to_train(dataset: &SyntheticDataset) -> Table {
    use std::collections::HashSet;
    let keys: Vec<&str> = dataset.key_columns.iter().map(|s| s.as_str()).collect();
    let mut keep_keys: HashSet<String> = HashSet::new();
    for row in 0..dataset.train.num_rows() {
        let composite: Vec<String> = keys
            .iter()
            .map(|k| dataset.train.value(row, k).expect("key exists").to_string())
            .collect();
        keep_keys.insert(composite.join("\u{1f}"));
    }
    let mut keep_rows = Vec::new();
    for row in 0..dataset.relevant.num_rows() {
        let composite: Vec<String> = keys
            .iter()
            .map(|k| {
                dataset
                    .relevant
                    .value(row, k)
                    .expect("key exists")
                    .to_string()
            })
            .collect();
        if keep_keys.contains(&composite.join("\u{1f}")) {
            keep_rows.push(row);
        }
    }
    dataset.relevant.take(&keep_rows)
}

/// Add `n` constant integer columns to a table — a cheap way to pad width when a benchmark only
/// cares about column *count*, not content.
pub fn pad_constant_columns(table: &mut Table, n: usize) {
    let rows = table.num_rows();
    for i in 0..n {
        table
            .add_column(format!("pad_{i}"), Column::from_i64s(&vec![0; rows]))
            .expect("fresh pad column");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GenConfig;
    use crate::tmall;

    #[test]
    fn widen_reaches_target_and_extends_attrs() {
        let ds = tmall::generate(&GenConfig::tiny());
        let before_cols = ds.relevant.num_columns();
        let wide = widen_relevant(&ds, before_cols + 10);
        assert!(wide.relevant.num_columns() >= before_cols + 10);
        assert!(wide.predicate_attrs.len() > ds.predicate_attrs.len());
        assert_eq!(wide.relevant.num_rows(), ds.relevant.num_rows());
    }

    #[test]
    fn train_row_scaling_filters_relevant_rows() {
        let ds = tmall::generate(&GenConfig::tiny());
        let scaled = DatasetScale::train_rows(30).apply(&ds);
        assert_eq!(scaled.train.num_rows(), 30);
        assert!(scaled.relevant.num_rows() < ds.relevant.num_rows());
        assert!(scaled.relevant.num_rows() > 0);
    }

    #[test]
    fn relevant_row_scaling_truncates() {
        let ds = tmall::generate(&GenConfig::tiny());
        let scaled = DatasetScale::relevant_rows(50).apply(&ds);
        assert_eq!(scaled.relevant.num_rows(), 50);
        assert_eq!(scaled.train.num_rows(), ds.train.num_rows());
    }

    #[test]
    fn identity_scale_is_noop() {
        let ds = tmall::generate(&GenConfig::tiny());
        let scaled = DatasetScale::identity().apply(&ds);
        assert_eq!(scaled.train.num_rows(), ds.train.num_rows());
        assert_eq!(scaled.relevant.num_columns(), ds.relevant.num_columns());
    }

    #[test]
    fn pad_constant_columns_adds_width() {
        let mut ds = tmall::generate(&GenConfig::tiny());
        let before = ds.relevant.num_columns();
        pad_constant_columns(&mut ds.relevant, 5);
        assert_eq!(ds.relevant.num_columns(), before + 5);
    }
}
