//! Tmall-style repeat-buyer dataset (binary classification, one-to-many).
//!
//! Mirrors the paper's Tmall dataset: the training table holds (user, merchant) pairs with a
//! small demographic profile and a "will this user buy from this merchant again" label; the
//! relevant table holds their interaction logs (product price, department, brand, action type,
//! timestamp).
//!
//! **Planted signal**: the label is driven mostly by the user's *average spend on Electronics in
//! the most recent 30 days* — i.e. by `AVG(pprice) WHERE department = 'Electronics' AND
//! timestamp >= recent_cutoff GROUP BY user_id, merchant_id` — plus a weaker unconditional
//! activity signal and noise. A predicate-free aggregation (Featuretools) can only capture the
//! weaker components.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid, zscore};

/// Departments appearing in the logs; Electronics carries the planted signal.
pub const DEPARTMENTS: [&str; 5] = ["Electronics", "Home", "Clothing", "Food", "Toys"];
/// Brand vocabulary (uninformative).
pub const BRANDS: [&str; 8] = ["b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"];
/// User action types (weakly informative via purchase counts).
pub const ACTIONS: [&str; 3] = ["click", "cart", "purchase"];

/// Start of the simulated log window (epoch seconds, ~Aug 2022).
pub const WINDOW_START: i64 = 1_660_000_000;
/// Length of the simulated window in seconds (365 days).
pub const WINDOW_LEN: i64 = 365 * 24 * 3600;
/// The "recent" cutoff carrying the signal: the last 30 days of the window.
pub const RECENT_CUTOFF: i64 = WINDOW_START + WINDOW_LEN - 30 * 24 * 3600;

/// Generate the Tmall-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7a11);
    let n = cfg.n_entities;
    let n_merchants = (n / 20).max(5);

    // Training-table columns.
    let mut user_ids = Vec::with_capacity(n);
    let mut merchant_ids = Vec::with_capacity(n);
    let mut ages = Vec::with_capacity(n);
    let mut genders: Vec<&str> = Vec::with_capacity(n);

    // Relevant-table columns.
    let mut r_user = Vec::new();
    let mut r_merchant = Vec::new();
    let mut r_price = Vec::new();
    let mut r_qty = Vec::new();
    let mut r_dept: Vec<&str> = Vec::new();
    let mut r_brand: Vec<&str> = Vec::new();
    let mut r_action: Vec<&str> = Vec::new();
    let mut r_ts = Vec::new();

    // Per-entity planted signal components.
    let mut recent_elec_avg = Vec::with_capacity(n);
    let mut total_logs = Vec::with_capacity(n);
    let mut age_effect = Vec::with_capacity(n);

    for i in 0..n {
        let user = format!("u{i}");
        let merchant = format!("m{}", i % n_merchants);
        let age = rng.gen_range(18..70);
        let gender = if rng.gen_bool(0.5) { "F" } else { "M" };

        // Latent traits.
        let electronics_affinity = normal(&mut rng);
        let recency_bias = normal(&mut rng);
        let activity = (cfg.fanout as f64 * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;

        let mut elec_recent_sum = 0.0;
        let mut elec_recent_cnt = 0usize;
        for _ in 0..activity {
            // Department choice: Electronics more likely for high-affinity users.
            let p_elec = sigmoid(0.6 * electronics_affinity - 0.6);
            let dept = if rng.gen::<f64>() < p_elec {
                "Electronics"
            } else {
                DEPARTMENTS[1 + rng.gen_range(0..DEPARTMENTS.len() - 1)]
            };
            // Timestamp: recent rows more likely for high recency-bias users.
            let recent = rng.gen::<f64>() < sigmoid(0.8 * recency_bias);
            let ts = if recent {
                RECENT_CUTOFF + rng.gen_range(0..(WINDOW_START + WINDOW_LEN - RECENT_CUTOFF))
            } else {
                WINDOW_START + rng.gen_range(0..(RECENT_CUTOFF - WINDOW_START))
            };
            // Price: only the *conditional mean* of recent Electronics purchases carries the
            // user's latent affinity. All prices are drawn from wide, overlapping ranges, so
            // predicate-free aggregates (unconditional AVG / MAX / SUM) see mostly noise: the
            // informative subset is ~5% of the rows and its values sit inside the global range.
            let price = if dept == "Electronics" && ts >= RECENT_CUTOFF {
                // Mean shifts with affinity (≈ 60..220 for affinity in ±1.5), tight noise.
                (120.0 + 55.0 * electronics_affinity) * rng.gen_range(0.85..1.15)
            } else {
                // Background rows: wide multiplicative noise around department-level bases that
                // covers the same numeric range as the informative subset.
                let base = match dept {
                    "Electronics" => 120.0,
                    "Home" => 60.0,
                    "Clothing" => 40.0,
                    "Food" => 15.0,
                    _ => 25.0,
                };
                base * rng.gen_range(0.3..2.8)
            }
            .max(1.0);
            let qty = rng.gen_range(1..5i64);
            let action = ACTIONS[rng.gen_range(0..ACTIONS.len())];
            let brand = BRANDS[rng.gen_range(0..BRANDS.len())];

            if dept == "Electronics" && ts >= RECENT_CUTOFF {
                elec_recent_sum += price;
                elec_recent_cnt += 1;
            }

            r_user.push(user.clone());
            r_merchant.push(merchant.clone());
            r_price.push(price);
            r_qty.push(qty);
            r_dept.push(dept);
            r_brand.push(brand);
            r_action.push(action);
            r_ts.push(ts);
        }

        recent_elec_avg.push(if elec_recent_cnt > 0 {
            elec_recent_sum / elec_recent_cnt as f64
        } else {
            0.0
        });
        total_logs.push(activity as f64);
        age_effect.push((age as f64 - 44.0) / 26.0);

        user_ids.push(user);
        merchant_ids.push(merchant);
        ages.push(age as i64);
        genders.push(gender);
    }

    // Label: strong predicate-aware component + weak unconditional component + noise.
    zscore(&mut recent_elec_avg);
    zscore(&mut total_logs);
    let labels: Vec<i64> = (0..n)
        .map(|i| {
            let logit = 1.8 * recent_elec_avg[i]
                + 0.35 * total_logs[i]
                + 0.2 * age_effect[i]
                + 0.5 * normal(&mut rng)
                - 0.2;
            (rng.gen::<f64>() < sigmoid(logit)) as i64
        })
        .collect();

    let mut train = Table::new("user_info");
    train
        .add_column("user_id", Column::from_strings(&user_ids))
        .unwrap();
    train
        .add_column("merchant_id", Column::from_strings(&merchant_ids))
        .unwrap();
    train.add_column("age", Column::from_i64s(&ages)).unwrap();
    train
        .add_column("gender", Column::from_strs(&genders))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("user_logs");
    relevant
        .add_column("user_id", Column::from_strings(&r_user))
        .unwrap();
    relevant
        .add_column("merchant_id", Column::from_strings(&r_merchant))
        .unwrap();
    relevant
        .add_column("pprice", Column::from_f64s(&r_price))
        .unwrap();
    relevant
        .add_column("quantity", Column::from_i64s(&r_qty))
        .unwrap();
    relevant
        .add_column("department", Column::from_strs(&r_dept))
        .unwrap();
    relevant
        .add_column("brand", Column::from_strs(&r_brand))
        .unwrap();
    relevant
        .add_column("action", Column::from_strs(&r_action))
        .unwrap();
    relevant
        .add_column("timestamp", Column::from_datetimes(&r_ts))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "tmall",
        train,
        relevant,
        key_columns: vec!["user_id".into(), "merchant_id".into()],
        label_column: "label".into(),
        agg_columns: vec!["pprice".into(), "quantity".into()],
        predicate_attrs: vec![
            "department".into(),
            "timestamp".into(),
            "action".into(),
            "brand".into(),
            "quantity".into(),
        ],
        task: TaskKind::Binary,
        signal_description:
            "label ≈ f(AVG(pprice) WHERE department='Electronics' AND timestamp>=recent_cutoff)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::groupby::group_by_aggregate;
    use feataug_tabular::{AggFunc, Predicate};

    #[test]
    fn shapes_and_schema() {
        let cfg = GenConfig::tiny();
        let ds = generate(&cfg);
        assert_eq!(ds.train.num_rows(), cfg.n_entities);
        assert!(ds.relevant.num_rows() >= cfg.n_entities); // at least one log per entity
        assert!(ds.train.column("label").is_ok());
        for key in &ds.key_columns {
            assert!(ds.train.column(key).is_ok());
            assert!(ds.relevant.column(key).is_ok());
        }
        for a in &ds.agg_columns {
            assert!(ds.relevant.column(a).is_ok());
        }
        for p in &ds.predicate_attrs {
            assert!(ds.relevant.column(p).is_ok());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GenConfig::tiny());
        let b = generate(&GenConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.relevant, b.relevant);
        let c = generate(&GenConfig::tiny().with_seed(123));
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn labels_are_not_degenerate() {
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();
        let rate = labels.iter().sum::<f64>() / labels.len() as f64;
        assert!(rate > 0.1 && rate < 0.9, "positive rate = {rate}");
    }

    #[test]
    fn predicate_restricted_aggregate_is_informative() {
        // The planted feature (recent Electronics average price) should correlate with the label
        // more strongly than the unrestricted average price.
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();

        let restricted = ds
            .relevant
            .filter(&Predicate::and(vec![
                Predicate::eq("department", "Electronics"),
                Predicate::ge("timestamp", RECENT_CUTOFF),
            ]))
            .unwrap();
        let keys: Vec<&str> = ds.key_columns.iter().map(|s| s.as_str()).collect();
        let planted = group_by_aggregate(&restricted, &keys, AggFunc::Avg, "pprice", "f").unwrap();
        let unrestricted =
            group_by_aggregate(&ds.relevant, &keys, AggFunc::Avg, "pprice", "f").unwrap();

        let attach = |feats: &feataug_tabular::Table| -> Vec<f64> {
            let joined = feataug_tabular::join::left_join(&ds.train, feats, &keys, &keys).unwrap();
            joined
                .column("f")
                .unwrap()
                .to_f64_vec()
                .into_iter()
                .map(|v| v.unwrap_or(0.0))
                .collect()
        };
        let corr = |x: &[f64]| {
            let n = x.len() as f64;
            let mx = x.iter().sum::<f64>() / n;
            let my = labels.iter().sum::<f64>() / n;
            let mut sxy = 0.0;
            let mut sxx = 0.0;
            let mut syy = 0.0;
            for (a, b) in x.iter().zip(&labels) {
                sxy += (a - mx) * (b - my);
                sxx += (a - mx) * (a - mx);
                syy += (b - my) * (b - my);
            }
            (sxy / (sxx.sqrt() * syy.sqrt() + 1e-12)).abs()
        };
        let planted_corr = corr(&attach(&planted));
        let plain_corr = corr(&attach(&unrestricted));
        assert!(
            planted_corr > plain_corr,
            "planted {planted_corr} should beat unrestricted {plain_corr}"
        );
        assert!(
            planted_corr > 0.2,
            "planted signal too weak: {planted_corr}"
        );
    }
}
