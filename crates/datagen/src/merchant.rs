//! Merchant-loyalty dataset (regression, one-to-many).
//!
//! Mirrors the paper's Merchant dataset (Kaggle "Elo Merchant Category Recommendation"): the
//! training table holds merchants with a continuous loyalty target; the relevant table holds the
//! card transactions observed at each merchant (purchase amount, installments, category flags,
//! city, month lag).
//!
//! **Planted signal**: the target tracks the merchant's *average purchase amount for category-A
//! transactions within the last three months* — `AVG(purchase_amount) WHERE category = 'A' AND
//! month_lag >= -3 GROUP BY merchant_id` — plus a weak transaction-count component and noise.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid, zscore};

/// Transaction categories; `A` carries the planted signal.
pub const CATEGORIES: [&str; 3] = ["A", "B", "C"];
/// Cities (uninformative).
pub const CITIES: [&str; 6] = ["c10", "c21", "c35", "c48", "c57", "c63"];

/// Month-lag threshold (inclusive) carrying the signal: the three most recent months.
pub const RECENT_MONTH_LAG: i64 = -3;

/// Generate the Merchant-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3e8c);
    let n = cfg.n_entities;

    let mut merchant_ids = Vec::with_capacity(n);
    let mut group_codes = Vec::with_capacity(n);
    let mut city_counts = Vec::with_capacity(n);

    let mut r_merchant = Vec::new();
    let mut r_amount = Vec::new();
    let mut r_installments = Vec::new();
    let mut r_category: Vec<&str> = Vec::new();
    let mut r_city: Vec<&str> = Vec::new();
    let mut r_month_lag = Vec::new();
    let mut r_authorized = Vec::new();

    let mut recent_a_avg = Vec::with_capacity(n);
    let mut txn_counts = Vec::with_capacity(n);

    for i in 0..n {
        let merchant = format!("m{i}");
        let premium = normal(&mut rng); // drives category-A amounts
        let txns = (cfg.fanout as f64 * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;

        let mut a_recent_sum = 0.0;
        let mut a_recent_cnt = 0usize;
        for _ in 0..txns {
            let p_a = sigmoid(0.5 * premium - 0.4);
            let category = if rng.gen::<f64>() < p_a {
                "A"
            } else if rng.gen_bool(0.5) {
                "B"
            } else {
                "C"
            };
            let month_lag: i64 = -rng.gen_range(0..13i64);
            // Only the *conditional mean* of recent category-A transactions expresses the
            // merchant's latent premium; every other amount is wide multiplicative noise over the
            // same numeric range, so predicate-free aggregates stay mostly uninformative.
            let amount = if category == "A" && month_lag >= RECENT_MONTH_LAG {
                (80.0 + 40.0 * premium) * rng.gen_range(0.85..1.15)
            } else {
                let base = match category {
                    "A" => 80.0,
                    "B" => 45.0,
                    _ => 20.0,
                };
                base * rng.gen_range(0.3..2.8)
            }
            .max(1.0);
            if category == "A" && month_lag >= RECENT_MONTH_LAG {
                a_recent_sum += amount;
                a_recent_cnt += 1;
            }
            r_merchant.push(merchant.clone());
            r_amount.push(amount);
            r_installments.push(rng.gen_range(1..12i64));
            r_category.push(category);
            r_city.push(CITIES[rng.gen_range(0..CITIES.len())]);
            r_month_lag.push(month_lag);
            r_authorized.push(rng.gen_bool(0.9));
        }

        recent_a_avg.push(if a_recent_cnt > 0 {
            a_recent_sum / a_recent_cnt as f64
        } else {
            0.0
        });
        txn_counts.push(txns as f64);
        merchant_ids.push(merchant);
        group_codes.push((i % 5) as i64);
        city_counts.push(rng.gen_range(1..30i64));
    }

    // Continuous target centred near the paper's loyalty-score scale (mean 0, wide spread,
    // reported RMSE around 3.9-4.1).
    zscore(&mut recent_a_avg);
    let mut count_z = txn_counts.clone();
    zscore(&mut count_z);
    let targets: Vec<f64> = (0..n)
        .map(|i| 2.6 * recent_a_avg[i] + 0.5 * count_z[i] + 2.8 * normal(&mut rng))
        .collect();

    let mut train = Table::new("merchants");
    train
        .add_column("merchant_id", Column::from_strings(&merchant_ids))
        .unwrap();
    train
        .add_column("merchant_group", Column::from_i64s(&group_codes))
        .unwrap();
    train
        .add_column("city_count", Column::from_i64s(&city_counts))
        .unwrap();
    train
        .add_column("label", Column::from_f64s(&targets))
        .unwrap();

    let mut relevant = Table::new("transactions");
    relevant
        .add_column("merchant_id", Column::from_strings(&r_merchant))
        .unwrap();
    relevant
        .add_column("purchase_amount", Column::from_f64s(&r_amount))
        .unwrap();
    relevant
        .add_column("installments", Column::from_i64s(&r_installments))
        .unwrap();
    relevant
        .add_column("category", Column::from_strs(&r_category))
        .unwrap();
    relevant
        .add_column("city", Column::from_strs(&r_city))
        .unwrap();
    relevant
        .add_column("month_lag", Column::from_i64s(&r_month_lag))
        .unwrap();
    relevant
        .add_column("authorized", Column::from_bools(&r_authorized))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "merchant",
        train,
        relevant,
        key_columns: vec!["merchant_id".into()],
        label_column: "label".into(),
        agg_columns: vec!["purchase_amount".into(), "installments".into()],
        predicate_attrs: vec![
            "category".into(),
            "month_lag".into(),
            "city".into(),
            "authorized".into(),
            "installments".into(),
        ],
        task: TaskKind::Regression,
        signal_description:
            "label ≈ 2.6·z(AVG(purchase_amount) WHERE category='A' AND month_lag>=-3) + noise",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.train.num_rows(), cfg.n_entities);
        assert_eq!(a.task, TaskKind::Regression);
    }

    #[test]
    fn target_is_continuous_with_spread() {
        let ds = generate(&GenConfig::small());
        let y = ds.train.column("label").unwrap().numeric_values();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        assert!(var.sqrt() > 2.0, "target std too small: {}", var.sqrt());
        assert!(mean.abs() < 1.0, "target mean should be near zero: {mean}");
    }

    #[test]
    fn month_lags_are_non_positive() {
        let ds = generate(&GenConfig::tiny());
        let lags = ds.relevant.column("month_lag").unwrap().numeric_values();
        assert!(lags.iter().all(|&l| l <= 0.0 && l >= -12.0));
    }
}
