//! Instacart-style reorder-prediction dataset (binary classification, one-to-many).
//!
//! Mirrors the paper's Instacart dataset: the training table holds users with a "will this user
//! buy the target product (bananas) next order" label; the relevant table holds their historical
//! order lines (product, department, aisle, order hour, days since prior order, reordered flag).
//!
//! **Planted signal**: the label is driven mostly by *how many produce-department items the user
//! bought during morning hours* — `COUNT(*) WHERE department = 'produce' AND order_hour BETWEEN
//! 7 AND 11 GROUP BY user_id` — plus a weak overall basket-size effect and noise.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SchemaEdgeSpec, SyntheticDataset, SyntheticSchema, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid, zscore};

/// Departments; `produce` carries the planted signal.
pub const DEPARTMENTS: [&str; 6] = [
    "produce",
    "dairy",
    "snacks",
    "beverages",
    "frozen",
    "household",
];
/// Aisles (uninformative).
pub const AISLES: [&str; 6] = ["a1", "a2", "a3", "a4", "a5", "a6"];

/// Morning-hour window carrying the signal (inclusive bounds).
pub const MORNING_START: i64 = 7;
/// Upper bound of the signal window.
pub const MORNING_END: i64 = 11;

/// Generate the Instacart-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1257);
    let n = cfg.n_entities;

    let mut user_ids = Vec::with_capacity(n);
    let mut n_prior_orders = Vec::with_capacity(n);
    let mut avg_basket = Vec::with_capacity(n);

    let mut r_user = Vec::new();
    let mut r_product: Vec<String> = Vec::new();
    let mut r_dept: Vec<&str> = Vec::new();
    let mut r_aisle: Vec<&str> = Vec::new();
    let mut r_hour = Vec::new();
    let mut r_days_prior = Vec::new();
    let mut r_reordered = Vec::new();
    let mut r_cart_pos = Vec::new();

    let mut morning_produce = Vec::with_capacity(n);
    let mut basket_sizes = Vec::with_capacity(n);

    for i in 0..n {
        let user = format!("u{i}");
        let produce_affinity = normal(&mut rng);
        let morning_shopper = normal(&mut rng);
        let lines = (cfg.fanout as f64 * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;

        let mut signal_count = 0.0;
        for line in 0..lines {
            let p_produce = sigmoid(0.7 * produce_affinity - 0.5);
            let dept = if rng.gen::<f64>() < p_produce {
                "produce"
            } else {
                DEPARTMENTS[1 + rng.gen_range(0..DEPARTMENTS.len() - 1)]
            };
            let morning = rng.gen::<f64>() < sigmoid(0.8 * morning_shopper);
            let hour: i64 = if morning {
                rng.gen_range(MORNING_START..=MORNING_END)
            } else {
                // afternoon / evening hours
                rng.gen_range(12..23)
            };
            if dept == "produce" && (MORNING_START..=MORNING_END).contains(&hour) {
                signal_count += 1.0;
            }
            let product = format!("p{}", rng.gen_range(0..50));
            let aisle = AISLES[rng.gen_range(0..AISLES.len())];
            let days_prior = rng.gen_range(0.0..30.0);
            let reordered = rng.gen_bool(0.4 + 0.1 * sigmoid(produce_affinity));
            let cart_pos = (line % 20) as i64 + 1;

            r_user.push(user.clone());
            r_product.push(product);
            r_dept.push(dept);
            r_aisle.push(aisle);
            r_hour.push(hour);
            r_days_prior.push(days_prior);
            r_reordered.push(reordered);
            r_cart_pos.push(cart_pos);
        }

        morning_produce.push(signal_count);
        basket_sizes.push(lines as f64);
        user_ids.push(user);
        n_prior_orders.push(rng.gen_range(3..40i64));
        avg_basket.push(lines as f64 / 3.0 + rng.gen_range(0.0..2.0));
    }

    zscore(&mut morning_produce);
    let mut basket_z = basket_sizes.clone();
    zscore(&mut basket_z);
    let labels: Vec<i64> = (0..n)
        .map(|i| {
            let logit = 1.7 * morning_produce[i] + 0.3 * basket_z[i] + 0.5 * normal(&mut rng) - 0.1;
            (rng.gen::<f64>() < sigmoid(logit)) as i64
        })
        .collect();

    let mut train = Table::new("users");
    train
        .add_column("user_id", Column::from_strings(&user_ids))
        .unwrap();
    train
        .add_column("n_prior_orders", Column::from_i64s(&n_prior_orders))
        .unwrap();
    train
        .add_column("avg_basket", Column::from_f64s(&avg_basket))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("order_history");
    relevant
        .add_column("user_id", Column::from_strings(&r_user))
        .unwrap();
    relevant
        .add_column("product", Column::from_strings(&r_product))
        .unwrap();
    relevant
        .add_column("department", Column::from_strs(&r_dept))
        .unwrap();
    relevant
        .add_column("aisle", Column::from_strs(&r_aisle))
        .unwrap();
    relevant
        .add_column("order_hour", Column::from_i64s(&r_hour))
        .unwrap();
    relevant
        .add_column("days_since_prior", Column::from_f64s(&r_days_prior))
        .unwrap();
    relevant
        .add_column("reordered", Column::from_bools(&r_reordered))
        .unwrap();
    relevant
        .add_column("cart_position", Column::from_i64s(&r_cart_pos))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "instacart",
        train,
        relevant,
        key_columns: vec!["user_id".into()],
        label_column: "label".into(),
        agg_columns: vec![
            "days_since_prior".into(),
            "cart_position".into(),
            "order_hour".into(),
        ],
        predicate_attrs: vec![
            "department".into(),
            "order_hour".into(),
            "aisle".into(),
            "reordered".into(),
            "days_since_prior".into(),
            "cart_position".into(),
        ],
        task: TaskKind::Binary,
        signal_description: "label ≈ f(COUNT(*) WHERE department='produce' AND 7<=order_hour<=11)",
    }
}

/// Generate the **normalized multi-hop** Instacart schema:
///
/// ```text
/// users(user_id, n_prior_orders, label)
///   ⟵ orders(user_id, order_id, order_hour, days_since_prior)
///        ⟵ order_items(order_id, product_id, cart_position, reordered)
///             ⟶ products(product_id, department, aisle, price)
/// ```
///
/// This is the same reorder-prediction story as [`generate`], but the flat
/// `order_history` table is split into its third-normal-form chain, so the
/// planted signal genuinely requires a **2-hop join path**: counting a
/// user's morning produce items needs `order_hour` from `orders` *and*
/// `department` from `products`, reachable only through
/// `orders ⋈ order_items ⋈ products`. No single table (nor any 1-hop view)
/// carries both signal attributes.
pub fn generate_schema(cfg: &GenConfig) -> SyntheticSchema {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9ac3);
    let n = cfg.n_entities;

    // Product catalog with fixed departments. The first two products are
    // pinned so both the signal department and its complement are always
    // inhabited, even under adversarial seeds.
    let n_products = 50usize;
    let mut p_ids = Vec::with_capacity(n_products);
    let mut p_dept: Vec<&str> = Vec::with_capacity(n_products);
    let mut p_aisle: Vec<&str> = Vec::with_capacity(n_products);
    let mut p_price = Vec::with_capacity(n_products);
    for j in 0..n_products {
        p_ids.push(format!("p{j}"));
        let dept = match j {
            0 => "produce",
            1 => DEPARTMENTS[1],
            _ => DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())],
        };
        p_dept.push(dept);
        p_aisle.push(AISLES[rng.gen_range(0..AISLES.len())]);
        p_price.push(rng.gen_range(1.0..20.0f64));
    }
    let produce_products: Vec<usize> = (0..n_products)
        .filter(|&j| p_dept[j] == "produce")
        .collect();
    let other_products: Vec<usize> = (0..n_products)
        .filter(|&j| p_dept[j] != "produce")
        .collect();

    let mut user_ids = Vec::with_capacity(n);
    let mut n_prior_orders = Vec::with_capacity(n);

    let mut o_user = Vec::new();
    let mut o_order: Vec<String> = Vec::new();
    let mut o_hour = Vec::new();
    let mut o_days_prior = Vec::new();

    let mut i_order: Vec<String> = Vec::new();
    let mut i_product: Vec<String> = Vec::new();
    let mut i_cart_pos = Vec::new();
    let mut i_reordered = Vec::new();

    let mut morning_produce = Vec::with_capacity(n);
    let mut item_totals = Vec::with_capacity(n);
    let mut order_counter = 0usize;

    for i in 0..n {
        let user = format!("u{i}");
        let produce_affinity = normal(&mut rng);
        let morning_shopper = normal(&mut rng);
        let n_orders = ((cfg.fanout as f64 / 3.0) * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;

        let mut signal_count = 0.0;
        let mut total_items = 0.0;
        for _ in 0..n_orders {
            let order_id = format!("o{order_counter}");
            order_counter += 1;
            let morning = rng.gen::<f64>() < sigmoid(0.8 * morning_shopper);
            let hour: i64 = if morning {
                rng.gen_range(MORNING_START..=MORNING_END)
            } else {
                rng.gen_range(12..23)
            };
            o_user.push(user.clone());
            o_order.push(order_id.clone());
            o_hour.push(hour);
            o_days_prior.push(rng.gen_range(0.0..30.0));

            let n_items = 1 + rng.gen_range(0..4);
            for item in 0..n_items {
                let p_produce = sigmoid(0.7 * produce_affinity - 0.3);
                let product = if rng.gen::<f64>() < p_produce {
                    produce_products[rng.gen_range(0..produce_products.len())]
                } else {
                    other_products[rng.gen_range(0..other_products.len())]
                };
                if p_dept[product] == "produce" && (MORNING_START..=MORNING_END).contains(&hour) {
                    signal_count += 1.0;
                }
                i_order.push(order_id.clone());
                i_product.push(p_ids[product].clone());
                i_cart_pos.push(item as i64 + 1);
                i_reordered.push(rng.gen_bool(0.4 + 0.1 * sigmoid(produce_affinity)));
                total_items += 1.0;
            }
        }

        morning_produce.push(signal_count);
        item_totals.push(total_items);
        user_ids.push(user);
        n_prior_orders.push(rng.gen_range(3..40i64));
    }

    zscore(&mut morning_produce);
    zscore(&mut item_totals);
    let labels: Vec<i64> = (0..n)
        .map(|i| {
            let logit =
                1.7 * morning_produce[i] + 0.3 * item_totals[i] + 0.5 * normal(&mut rng) - 0.1;
            (rng.gen::<f64>() < sigmoid(logit)) as i64
        })
        .collect();

    let mut train = Table::new("users");
    train
        .add_column("user_id", Column::from_strings(&user_ids))
        .unwrap();
    train
        .add_column("n_prior_orders", Column::from_i64s(&n_prior_orders))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut orders = Table::new("orders");
    orders
        .add_column("user_id", Column::from_strings(&o_user))
        .unwrap();
    orders
        .add_column("order_id", Column::from_strings(&o_order))
        .unwrap();
    orders
        .add_column("order_hour", Column::from_i64s(&o_hour))
        .unwrap();
    orders
        .add_column("days_since_prior", Column::from_f64s(&o_days_prior))
        .unwrap();

    let mut order_items = Table::new("order_items");
    order_items
        .add_column("order_id", Column::from_strings(&i_order))
        .unwrap();
    order_items
        .add_column("product_id", Column::from_strings(&i_product))
        .unwrap();
    order_items
        .add_column("cart_position", Column::from_i64s(&i_cart_pos))
        .unwrap();
    order_items
        .add_column("reordered", Column::from_bools(&i_reordered))
        .unwrap();

    let mut products = Table::new("products");
    products
        .add_column("product_id", Column::from_strings(&p_ids))
        .unwrap();
    products
        .add_column("department", Column::from_strs(&p_dept))
        .unwrap();
    products
        .add_column("aisle", Column::from_strs(&p_aisle))
        .unwrap();
    products
        .add_column("price", Column::from_f64s(&p_price))
        .unwrap();

    let edge = |left: &str, right: &str, key: &str| SchemaEdgeSpec {
        left: left.to_string(),
        right: right.to_string(),
        left_keys: vec![key.to_string()],
        right_keys: vec![key.to_string()],
    };
    SyntheticSchema {
        name: "instacart-schema",
        train,
        tables: vec![orders, order_items, products],
        edges: vec![
            edge("users", "orders", "user_id"),
            edge("orders", "order_items", "order_id"),
            edge("order_items", "products", "product_id"),
        ],
        key_columns: vec!["user_id".into()],
        label_column: "label".into(),
        task: TaskKind::Binary,
        signal_description: "label ≈ f(COUNT(*) OVER orders ⋈ order_items ⋈ products \
                             WHERE department='produce' AND 7<=order_hour<=11)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.relevant, b.relevant);
        assert_eq!(a.train.num_rows(), cfg.n_entities);
        assert_eq!(a.key_columns, vec!["user_id".to_string()]);
        assert!(a.relevant.column("department").is_ok());
    }

    #[test]
    fn label_balance_reasonable() {
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();
        let rate = labels.iter().sum::<f64>() / labels.len() as f64;
        assert!(rate > 0.15 && rate < 0.85, "positive rate = {rate}");
    }

    #[test]
    fn order_hours_are_valid() {
        let ds = generate(&GenConfig::tiny());
        let hours = ds.relevant.column("order_hour").unwrap().numeric_values();
        assert!(hours.iter().all(|&h| (0.0..24.0).contains(&h)));
    }

    #[test]
    fn schema_shapes_edges_and_determinism() {
        let cfg = GenConfig::tiny();
        let a = generate_schema(&cfg);
        let b = generate_schema(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.train.num_rows(), cfg.n_entities);
        assert_eq!(a.edges.len(), 3);
        assert_eq!(a.edges[0].left, "users");
        let orders = a.table("orders").unwrap();
        let items = a.table("order_items").unwrap();
        let products = a.table("products").unwrap();
        assert!(orders.num_rows() >= cfg.n_entities);
        assert!(items.num_rows() >= orders.num_rows());
        assert_eq!(products.num_rows(), 50);
        // No single relevant table carries both signal attributes.
        assert!(orders.column("order_hour").is_ok() && orders.column("department").is_err());
        assert!(products.column("department").is_ok() && products.column("order_hour").is_err());
    }

    #[test]
    fn schema_signal_needs_both_hops() {
        // The 2-hop morning-produce count must separate the label classes;
        // computed here by hand (order → hour; item → order, product;
        // product → department) to avoid depending on the join machinery.
        let ds = generate_schema(&GenConfig::small());
        let orders = ds.table("orders").unwrap();
        let items = ds.table("order_items").unwrap();
        let products = ds.table("products").unwrap();
        let mut hour_of = std::collections::HashMap::new();
        let mut user_of = std::collections::HashMap::new();
        for row in 0..orders.num_rows() {
            let oid = format!("{:?}", orders.value(row, "order_id").unwrap());
            hour_of.insert(
                oid.clone(),
                orders.column("order_hour").unwrap().numeric_values()[row],
            );
            user_of.insert(oid, format!("{:?}", orders.value(row, "user_id").unwrap()));
        }
        let mut dept_of = std::collections::HashMap::new();
        for row in 0..products.num_rows() {
            dept_of.insert(
                format!("{:?}", products.value(row, "product_id").unwrap()),
                format!("{:?}", products.value(row, "department").unwrap()),
            );
        }
        let mut counts: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for row in 0..items.num_rows() {
            let oid = format!("{:?}", items.value(row, "order_id").unwrap());
            let pid = format!("{:?}", items.value(row, "product_id").unwrap());
            let hour = hour_of[&oid];
            if dept_of[&pid].contains("produce")
                && (MORNING_START as f64..=MORNING_END as f64).contains(&hour)
            {
                *counts.entry(user_of[&oid].clone()).or_default() += 1.0;
            }
        }
        let labels = ds.train.column("label").unwrap().numeric_values();
        let mut pos_mean = 0.0;
        let mut neg_mean = 0.0;
        let (mut pos_n, mut neg_n) = (0.0, 0.0);
        for row in 0..ds.train.num_rows() {
            let user = format!("{:?}", ds.train.value(row, "user_id").unwrap());
            let c = counts.get(&user).copied().unwrap_or(0.0);
            if labels[row] > 0.5 {
                pos_mean += c;
                pos_n += 1.0;
            } else {
                neg_mean += c;
                neg_n += 1.0;
            }
        }
        assert!(pos_n > 0.0 && neg_n > 0.0);
        assert!(
            pos_mean / pos_n > neg_mean / neg_n + 0.5,
            "positive users should buy more morning produce ({} vs {})",
            pos_mean / pos_n,
            neg_mean / neg_n
        );
    }
}
