//! Instacart-style reorder-prediction dataset (binary classification, one-to-many).
//!
//! Mirrors the paper's Instacart dataset: the training table holds users with a "will this user
//! buy the target product (bananas) next order" label; the relevant table holds their historical
//! order lines (product, department, aisle, order hour, days since prior order, reordered flag).
//!
//! **Planted signal**: the label is driven mostly by *how many produce-department items the user
//! bought during morning hours* — `COUNT(*) WHERE department = 'produce' AND order_hour BETWEEN
//! 7 AND 11 GROUP BY user_id` — plus a weak overall basket-size effect and noise.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid, zscore};

/// Departments; `produce` carries the planted signal.
pub const DEPARTMENTS: [&str; 6] = [
    "produce",
    "dairy",
    "snacks",
    "beverages",
    "frozen",
    "household",
];
/// Aisles (uninformative).
pub const AISLES: [&str; 6] = ["a1", "a2", "a3", "a4", "a5", "a6"];

/// Morning-hour window carrying the signal (inclusive bounds).
pub const MORNING_START: i64 = 7;
/// Upper bound of the signal window.
pub const MORNING_END: i64 = 11;

/// Generate the Instacart-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1257);
    let n = cfg.n_entities;

    let mut user_ids = Vec::with_capacity(n);
    let mut n_prior_orders = Vec::with_capacity(n);
    let mut avg_basket = Vec::with_capacity(n);

    let mut r_user = Vec::new();
    let mut r_product: Vec<String> = Vec::new();
    let mut r_dept: Vec<&str> = Vec::new();
    let mut r_aisle: Vec<&str> = Vec::new();
    let mut r_hour = Vec::new();
    let mut r_days_prior = Vec::new();
    let mut r_reordered = Vec::new();
    let mut r_cart_pos = Vec::new();

    let mut morning_produce = Vec::with_capacity(n);
    let mut basket_sizes = Vec::with_capacity(n);

    for i in 0..n {
        let user = format!("u{i}");
        let produce_affinity = normal(&mut rng);
        let morning_shopper = normal(&mut rng);
        let lines = (cfg.fanout as f64 * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;

        let mut signal_count = 0.0;
        for line in 0..lines {
            let p_produce = sigmoid(0.7 * produce_affinity - 0.5);
            let dept = if rng.gen::<f64>() < p_produce {
                "produce"
            } else {
                DEPARTMENTS[1 + rng.gen_range(0..DEPARTMENTS.len() - 1)]
            };
            let morning = rng.gen::<f64>() < sigmoid(0.8 * morning_shopper);
            let hour: i64 = if morning {
                rng.gen_range(MORNING_START..=MORNING_END)
            } else {
                // afternoon / evening hours
                rng.gen_range(12..23)
            };
            if dept == "produce" && (MORNING_START..=MORNING_END).contains(&hour) {
                signal_count += 1.0;
            }
            let product = format!("p{}", rng.gen_range(0..50));
            let aisle = AISLES[rng.gen_range(0..AISLES.len())];
            let days_prior = rng.gen_range(0.0..30.0);
            let reordered = rng.gen_bool(0.4 + 0.1 * sigmoid(produce_affinity));
            let cart_pos = (line % 20) as i64 + 1;

            r_user.push(user.clone());
            r_product.push(product);
            r_dept.push(dept);
            r_aisle.push(aisle);
            r_hour.push(hour);
            r_days_prior.push(days_prior);
            r_reordered.push(reordered);
            r_cart_pos.push(cart_pos);
        }

        morning_produce.push(signal_count);
        basket_sizes.push(lines as f64);
        user_ids.push(user);
        n_prior_orders.push(rng.gen_range(3..40i64));
        avg_basket.push(lines as f64 / 3.0 + rng.gen_range(0.0..2.0));
    }

    zscore(&mut morning_produce);
    let mut basket_z = basket_sizes.clone();
    zscore(&mut basket_z);
    let labels: Vec<i64> = (0..n)
        .map(|i| {
            let logit = 1.7 * morning_produce[i] + 0.3 * basket_z[i] + 0.5 * normal(&mut rng) - 0.1;
            (rng.gen::<f64>() < sigmoid(logit)) as i64
        })
        .collect();

    let mut train = Table::new("users");
    train
        .add_column("user_id", Column::from_strings(&user_ids))
        .unwrap();
    train
        .add_column("n_prior_orders", Column::from_i64s(&n_prior_orders))
        .unwrap();
    train
        .add_column("avg_basket", Column::from_f64s(&avg_basket))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("order_history");
    relevant
        .add_column("user_id", Column::from_strings(&r_user))
        .unwrap();
    relevant
        .add_column("product", Column::from_strings(&r_product))
        .unwrap();
    relevant
        .add_column("department", Column::from_strs(&r_dept))
        .unwrap();
    relevant
        .add_column("aisle", Column::from_strs(&r_aisle))
        .unwrap();
    relevant
        .add_column("order_hour", Column::from_i64s(&r_hour))
        .unwrap();
    relevant
        .add_column("days_since_prior", Column::from_f64s(&r_days_prior))
        .unwrap();
    relevant
        .add_column("reordered", Column::from_bools(&r_reordered))
        .unwrap();
    relevant
        .add_column("cart_position", Column::from_i64s(&r_cart_pos))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "instacart",
        train,
        relevant,
        key_columns: vec!["user_id".into()],
        label_column: "label".into(),
        agg_columns: vec![
            "days_since_prior".into(),
            "cart_position".into(),
            "order_hour".into(),
        ],
        predicate_attrs: vec![
            "department".into(),
            "order_hour".into(),
            "aisle".into(),
            "reordered".into(),
            "days_since_prior".into(),
            "cart_position".into(),
        ],
        task: TaskKind::Binary,
        signal_description: "label ≈ f(COUNT(*) WHERE department='produce' AND 7<=order_hour<=11)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.relevant, b.relevant);
        assert_eq!(a.train.num_rows(), cfg.n_entities);
        assert_eq!(a.key_columns, vec!["user_id".to_string()]);
        assert!(a.relevant.column("department").is_ok());
    }

    #[test]
    fn label_balance_reasonable() {
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();
        let rate = labels.iter().sum::<f64>() / labels.len() as f64;
        assert!(rate > 0.15 && rate < 0.85, "positive rate = {rate}");
    }

    #[test]
    fn order_hours_are_valid() {
        let ds = generate(&GenConfig::tiny());
        let hours = ds.relevant.column("order_hour").unwrap().numeric_values();
        assert!(hours.iter().all(|&h| (0.0..24.0).contains(&h)));
    }
}
