//! Covtype-style forest-cover dataset (multi-class classification, single table / one-to-one).
//!
//! Mirrors the paper's Covtype setup: the dataset is a single wide table; the paper treats the
//! table itself as the relevant table, keyed by a row index, so feature augmentation degenerates
//! to a one-to-one relationship. The training table keeps a handful of base features and the
//! label; the "relevant" table carries the remaining cartographic attributes.
//!
//! **Planted signal**: the cover-type class is a deterministic function of elevation, slope and
//! distance-to-hydrology bands (plus label noise), so useful features must be pulled out of the
//! relevant table.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal};

/// Number of cover-type classes generated (the paper reports 4 wilderness areas).
pub const N_CLASSES: usize = 4;
/// Wilderness-area names.
pub const WILDERNESS: [&str; 4] = ["rawah", "neota", "comanche", "cache"];
/// Soil-type vocabulary (uninformative).
pub const SOILS: [&str; 8] = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"];

/// Generate the Covtype-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc04e);
    let n = cfg.n_entities;

    let mut index = Vec::with_capacity(n);
    let mut base_aspect = Vec::with_capacity(n);
    let mut base_hillshade_9 = Vec::with_capacity(n);
    let mut base_hillshade_noon = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    let mut r_index = Vec::with_capacity(n);
    let mut r_elevation = Vec::with_capacity(n);
    let mut r_slope = Vec::with_capacity(n);
    let mut r_hydro_dist = Vec::with_capacity(n);
    let mut r_road_dist = Vec::with_capacity(n);
    let mut r_fire_dist = Vec::with_capacity(n);
    let mut r_hillshade_3 = Vec::with_capacity(n);
    let mut r_wilderness: Vec<&str> = Vec::with_capacity(n);
    let mut r_soil: Vec<&str> = Vec::with_capacity(n);

    for i in 0..n {
        let id = format!("r{i}");
        let elevation = 1800.0 + 1500.0 * rng.gen::<f64>();
        let slope = 40.0 * rng.gen::<f64>();
        let hydro = 600.0 * rng.gen::<f64>();
        let road = 3000.0 * rng.gen::<f64>();
        let fire = 3000.0 * rng.gen::<f64>();

        // Class bands on elevation, modulated by slope and hydrology distance, plus noise.
        let score = (elevation - 1800.0) / 1500.0 + 0.2 * (slope / 40.0) - 0.15 * (hydro / 600.0)
            + 0.12 * normal(&mut rng);
        let class = if score < 0.3 {
            0
        } else if score < 0.6 {
            1
        } else if score < 0.85 {
            2
        } else {
            3
        };

        index.push(id.clone());
        base_aspect.push(rng.gen_range(0.0..360.0));
        base_hillshade_9.push(rng.gen_range(100.0..255.0));
        base_hillshade_noon.push(rng.gen_range(150.0..255.0));
        labels.push(class as i64);

        r_index.push(id);
        r_elevation.push(elevation);
        r_slope.push(slope);
        r_hydro_dist.push(hydro);
        r_road_dist.push(road);
        r_fire_dist.push(fire);
        r_hillshade_3.push(rng.gen_range(50.0..255.0));
        r_wilderness.push(WILDERNESS[rng.gen_range(0..WILDERNESS.len())]);
        r_soil.push(SOILS[rng.gen_range(0..SOILS.len())]);
    }

    let mut train = Table::new("covtype_train");
    train
        .add_column("data_index", Column::from_strings(&index))
        .unwrap();
    train
        .add_column("aspect", Column::from_f64s(&base_aspect))
        .unwrap();
    train
        .add_column("hillshade_9am", Column::from_f64s(&base_hillshade_9))
        .unwrap();
    train
        .add_column("hillshade_noon", Column::from_f64s(&base_hillshade_noon))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("covtype_attrs");
    relevant
        .add_column("data_index", Column::from_strings(&r_index))
        .unwrap();
    relevant
        .add_column("elevation", Column::from_f64s(&r_elevation))
        .unwrap();
    relevant
        .add_column("slope", Column::from_f64s(&r_slope))
        .unwrap();
    relevant
        .add_column("hydro_distance", Column::from_f64s(&r_hydro_dist))
        .unwrap();
    relevant
        .add_column("road_distance", Column::from_f64s(&r_road_dist))
        .unwrap();
    relevant
        .add_column("fire_distance", Column::from_f64s(&r_fire_dist))
        .unwrap();
    relevant
        .add_column("hillshade_3pm", Column::from_f64s(&r_hillshade_3))
        .unwrap();
    relevant
        .add_column("wilderness", Column::from_strs(&r_wilderness))
        .unwrap();
    relevant
        .add_column("soil_type", Column::from_strs(&r_soil))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "covtype",
        train,
        relevant,
        key_columns: vec!["data_index".into()],
        label_column: "label".into(),
        agg_columns: vec![
            "elevation".into(),
            "slope".into(),
            "hydro_distance".into(),
            "road_distance".into(),
            "fire_distance".into(),
            "hillshade_3pm".into(),
        ],
        predicate_attrs: vec![
            "wilderness".into(),
            "soil_type".into(),
            "slope".into(),
            "hydro_distance".into(),
        ],
        task: TaskKind::MultiClass(N_CLASSES),
        signal_description:
            "class = banded(elevation + 0.2·slope − 0.15·hydro_distance + noise), attributes \
             live in the one-to-one relevant table",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_relationship() {
        let cfg = GenConfig::tiny();
        let ds = generate(&cfg);
        assert_eq!(ds.train.num_rows(), ds.relevant.num_rows());
        assert_eq!(ds.train.num_rows(), cfg.n_entities);
        assert!(feataug_tabular::join::is_unique_key(&ds.relevant, &["data_index"]).unwrap());
    }

    #[test]
    fn all_classes_present() {
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();
        for c in 0..N_CLASSES {
            assert!(
                labels.iter().any(|&l| l as usize == c),
                "class {c} missing from generated labels"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&GenConfig::tiny());
        let b = generate(&GenConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.relevant, b.relevant);
    }
}
