//! Household poverty-level dataset (multi-class classification, one-to-one).
//!
//! Mirrors the paper's Household dataset (Costa-Rican household poverty prediction): a single
//! wide table is split into a small training table (key, a few base features, the poverty-level
//! label) and a relevant table carrying the remaining observable household attributes, joined
//! one-to-one on the household id.
//!
//! **Planted signal**: the poverty level is a banded function of a latent wealth score that is
//! expressed through several relevant-table attributes (monthly rent, rooms per person,
//! education years, appliance ownership) plus noise.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid};

/// Number of poverty levels.
pub const N_CLASSES: usize = 4;
/// Region vocabulary (uninformative).
pub const REGIONS: [&str; 6] = [
    "central",
    "chorotega",
    "pacifico",
    "brunca",
    "atlantica",
    "norte",
];
/// Wall material vocabulary (weakly informative through the wealth score).
pub const WALLS: [&str; 4] = ["block", "wood", "prefab", "waste"];

/// Generate the Household-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x40c5);
    let n = cfg.n_entities;

    let mut ids = Vec::with_capacity(n);
    let mut base_members = Vec::with_capacity(n);
    let mut base_children = Vec::with_capacity(n);
    let mut base_region: Vec<&str> = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    let mut r_id = Vec::with_capacity(n);
    let mut r_rent = Vec::with_capacity(n);
    let mut r_rooms = Vec::with_capacity(n);
    let mut r_edu_years = Vec::with_capacity(n);
    let mut r_appliances = Vec::with_capacity(n);
    let mut r_overcrowding = Vec::with_capacity(n);
    let mut r_wall: Vec<&str> = Vec::with_capacity(n);
    let mut r_has_toilet = Vec::with_capacity(n);
    let mut r_has_electricity = Vec::with_capacity(n);
    let mut r_mobile_phones = Vec::with_capacity(n);

    for i in 0..n {
        let id = format!("h{i}");
        let wealth = normal(&mut rng);
        let members = rng.gen_range(1..9i64);
        let children = rng.gen_range(0..members.min(5));

        let rent = (250.0 * (0.5 * wealth).exp() * (0.7 + 0.6 * rng.gen::<f64>())).max(10.0);
        let rooms = (2.0 + wealth + rng.gen_range(0.0..2.0))
            .round()
            .clamp(1.0, 10.0);
        let edu = (6.0 + 3.0 * wealth + rng.gen_range(-2.0..2.0)).clamp(0.0, 20.0);
        let appliances = (2.0 + 1.5 * wealth + rng.gen_range(-1.0..1.0))
            .round()
            .clamp(0.0, 8.0);
        let overcrowding = members as f64 / rooms;
        let wall = if wealth > 0.3 {
            "block"
        } else {
            WALLS[rng.gen_range(0..WALLS.len())]
        };
        let has_toilet = rng.gen::<f64>() < sigmoid(1.5 * wealth + 1.0);
        let has_electricity = rng.gen::<f64>() < sigmoid(1.2 * wealth + 1.5);
        let phones = (1.0 + wealth + rng.gen_range(0.0..2.0))
            .round()
            .clamp(0.0, 6.0) as i64;

        // Poverty level: 0 = extreme .. 3 = non-vulnerable, from a banded wealth score + noise.
        let score = wealth + 0.25 * normal(&mut rng);
        let label = if score < -0.8 {
            0
        } else if score < 0.0 {
            1
        } else if score < 0.8 {
            2
        } else {
            3
        };

        ids.push(id.clone());
        base_members.push(members);
        base_children.push(children);
        base_region.push(REGIONS[rng.gen_range(0..REGIONS.len())]);
        labels.push(label as i64);

        r_id.push(id);
        r_rent.push(rent);
        r_rooms.push(rooms);
        r_edu_years.push(edu);
        r_appliances.push(appliances);
        r_overcrowding.push(overcrowding);
        r_wall.push(wall);
        r_has_toilet.push(has_toilet);
        r_has_electricity.push(has_electricity);
        r_mobile_phones.push(phones);
    }

    let mut train = Table::new("household_train");
    train
        .add_column("household_id", Column::from_strings(&ids))
        .unwrap();
    train
        .add_column("members", Column::from_i64s(&base_members))
        .unwrap();
    train
        .add_column("children", Column::from_i64s(&base_children))
        .unwrap();
    train
        .add_column("region", Column::from_strs(&base_region))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("household_attrs");
    relevant
        .add_column("household_id", Column::from_strings(&r_id))
        .unwrap();
    relevant
        .add_column("monthly_rent", Column::from_f64s(&r_rent))
        .unwrap();
    relevant
        .add_column("rooms", Column::from_f64s(&r_rooms))
        .unwrap();
    relevant
        .add_column("education_years", Column::from_f64s(&r_edu_years))
        .unwrap();
    relevant
        .add_column("appliances", Column::from_f64s(&r_appliances))
        .unwrap();
    relevant
        .add_column("overcrowding", Column::from_f64s(&r_overcrowding))
        .unwrap();
    relevant
        .add_column("wall_material", Column::from_strs(&r_wall))
        .unwrap();
    relevant
        .add_column("has_toilet", Column::from_bools(&r_has_toilet))
        .unwrap();
    relevant
        .add_column("has_electricity", Column::from_bools(&r_has_electricity))
        .unwrap();
    relevant
        .add_column("mobile_phones", Column::from_i64s(&r_mobile_phones))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "household",
        train,
        relevant,
        key_columns: vec!["household_id".into()],
        label_column: "label".into(),
        agg_columns: vec![
            "monthly_rent".into(),
            "rooms".into(),
            "education_years".into(),
            "appliances".into(),
            "overcrowding".into(),
            "mobile_phones".into(),
        ],
        predicate_attrs: vec![
            "wall_material".into(),
            "has_toilet".into(),
            "has_electricity".into(),
            "rooms".into(),
        ],
        task: TaskKind::MultiClass(N_CLASSES),
        signal_description:
            "poverty level = banded(latent wealth); wealth is expressed through rent, rooms, \
             education, appliances in the one-to-one relevant table",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_and_deterministic() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.train.num_rows(), a.relevant.num_rows());
        assert!(feataug_tabular::join::is_unique_key(&a.relevant, &["household_id"]).unwrap());
    }

    #[test]
    fn all_poverty_levels_present() {
        let ds = generate(&GenConfig::small());
        let labels = ds.train.column("label").unwrap().numeric_values();
        for c in 0..N_CLASSES {
            assert!(labels.iter().any(|&l| l as usize == c), "class {c} missing");
        }
    }

    #[test]
    fn rent_positive_and_overcrowding_consistent() {
        let ds = generate(&GenConfig::tiny());
        let rent = ds.relevant.column("monthly_rent").unwrap().numeric_values();
        assert!(rent.iter().all(|&r| r > 0.0));
        let over = ds.relevant.column("overcrowding").unwrap().numeric_values();
        assert!(over.iter().all(|&o| o > 0.0));
    }
}
