//! # feataug-datagen
//!
//! Synthetic dataset generators that stand in for the six evaluation datasets of the FeatAug
//! paper (Tmall, Instacart, Student, Merchant, Covtype, Household).
//!
//! The original datasets are Kaggle / Tianchi downloads that cannot be redistributed, so each
//! generator reproduces the *structural* properties the algorithms depend on instead of the raw
//! data:
//!
//! * a training table `D` with an entity key, a handful of base features and a label,
//! * a relevant table `R` in a one-to-many relationship with `D` (or one-to-one for the
//!   Covtype / Household stand-ins),
//! * categorical, numerical and datetime attributes in `R` usable as predicate columns,
//! * a **planted predicate-dependent signal**: the label is driven primarily by an aggregate of
//!   `R` restricted by a predicate (e.g. *average spend on Electronics in the last month*),
//!   with a weaker unconditional component and noise. Predicate-aware feature augmentation can
//!   therefore outperform predicate-free augmentation on these datasets by construction — which
//!   is exactly the phenomenon the paper's Table III measures on the real data.
//!
//! All generators are deterministic given [`GenConfig::seed`].

pub mod covtype;
pub mod household;
pub mod instacart;
pub mod merchant;
pub mod scale;
pub mod spec;
pub mod student;
pub mod tmall;
pub(crate) mod util;

pub use scale::{widen_relevant, DatasetScale};
pub use spec::{
    DatasetStats, GenConfig, SchemaEdgeSpec, SyntheticDataset, SyntheticSchema, TaskKind,
};

/// Generate one of the six named datasets (`tmall`, `instacart`, `student`, `merchant`,
/// `covtype`, `household`) with the given configuration. Returns `None` for unknown names.
pub fn generate_by_name(name: &str, cfg: &GenConfig) -> Option<SyntheticDataset> {
    match name.to_ascii_lowercase().as_str() {
        "tmall" => Some(tmall::generate(cfg)),
        "instacart" => Some(instacart::generate(cfg)),
        "student" => Some(student::generate(cfg)),
        "merchant" => Some(merchant::generate(cfg)),
        "covtype" => Some(covtype::generate(cfg)),
        "household" => Some(household::generate(cfg)),
        _ => None,
    }
}

/// The four one-to-many datasets of the paper's Table I, in paper order.
pub fn one_to_many_names() -> &'static [&'static str] {
    &["tmall", "instacart", "student", "merchant"]
}

/// The two single-table / one-to-one datasets of the paper's Table IV.
pub fn one_to_one_names() -> &'static [&'static str] {
    &["covtype", "household"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_by_name_covers_all_datasets() {
        let cfg = GenConfig::tiny();
        for name in one_to_many_names().iter().chain(one_to_one_names()) {
            let ds = generate_by_name(name, &cfg).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(ds.name, *name);
            assert!(ds.train.num_rows() > 0);
            assert!(ds.relevant.num_rows() > 0);
        }
        assert!(generate_by_name("unknown", &cfg).is_none());
    }
}
