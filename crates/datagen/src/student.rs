//! Student-performance dataset (binary classification, one-to-many, time-series flavoured).
//!
//! Mirrors the paper's Student dataset (Kaggle "Predict Student Performance from Game Play"):
//! the training table holds game sessions with a "will the player answer the question correctly"
//! label; the relevant table holds the raw event stream of each session (event name, room,
//! level, elapsed time, hover duration, coordinates).
//!
//! **Planted signal**: the label depends mostly on *how much time the player spent on notebook
//! events in the late levels* — `SUM(hover_duration) WHERE event_name = 'notebook_click' AND
//! level >= 10 GROUP BY session_id` — with a weak total-activity component and noise.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use feataug_tabular::{Column, Table};

use crate::spec::{GenConfig, SyntheticDataset, TaskKind};
use crate::util::{add_noise_columns, normal, sigmoid, zscore};

/// Event vocabulary; `notebook_click` carries the planted signal.
pub const EVENTS: [&str; 6] = [
    "navigate_click",
    "notebook_click",
    "person_click",
    "cutscene_click",
    "map_hover",
    "checkpoint",
];
/// Rooms (uninformative).
pub const ROOMS: [&str; 5] = ["tunic", "kohlcenter", "capitol", "library", "basement"];

/// Level threshold above which notebook time is informative.
pub const SIGNAL_LEVEL: i64 = 10;

/// Generate the Student-style dataset.
pub fn generate(cfg: &GenConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57d7);
    let n = cfg.n_entities;

    let mut session_ids = Vec::with_capacity(n);
    let mut level_groups: Vec<&str> = Vec::with_capacity(n);
    let mut question_ids = Vec::with_capacity(n);

    let mut r_session = Vec::new();
    let mut r_event: Vec<&str> = Vec::new();
    let mut r_room: Vec<&str> = Vec::new();
    let mut r_level = Vec::new();
    let mut r_elapsed = Vec::new();
    let mut r_hover = Vec::new();
    let mut r_x = Vec::new();
    let mut r_y = Vec::new();

    let mut signal = Vec::with_capacity(n);
    let mut activity = Vec::with_capacity(n);

    for i in 0..n {
        let session = format!("s{i}");
        let diligence = normal(&mut rng); // how much the player uses the notebook late-game
        let events = (cfg.fanout as f64 * (0.6 + 0.8 * rng.gen::<f64>()))
            .round()
            .max(2.0) as usize;

        let mut notebook_late_time = 0.0;
        let mut elapsed = 0.0;
        for _ in 0..events {
            let level = rng.gen_range(1..=22i64);
            let p_notebook = sigmoid(0.7 * diligence - 0.8);
            let event = if rng.gen::<f64>() < p_notebook {
                "notebook_click"
            } else {
                EVENTS[if rng.gen_bool(0.5) {
                    0
                } else {
                    2 + rng.gen_range(0..EVENTS.len() - 2)
                }]
            };
            // Only the *conditional mean* of notebook hovers in the late levels expresses the
            // player's diligence; every other hover duration is wide noise over the same range,
            // so the unconditional SUM/AVG of hover_duration stays mostly uninformative.
            let hover = if event == "notebook_click" && level >= SIGNAL_LEVEL {
                (2.0 + 0.9 * diligence).max(0.1) * rng.gen_range(0.85..1.15)
            } else {
                rng.gen_range(0.0..4.0)
            };
            elapsed += rng.gen_range(0.2..5.0);
            if event == "notebook_click" && level >= SIGNAL_LEVEL {
                notebook_late_time += hover;
            }
            r_session.push(session.clone());
            r_event.push(event);
            r_room.push(ROOMS[rng.gen_range(0..ROOMS.len())]);
            r_level.push(level);
            r_elapsed.push(elapsed);
            r_hover.push(hover);
            r_x.push(rng.gen_range(-400.0..400.0));
            r_y.push(rng.gen_range(-300.0..300.0));
        }

        signal.push(notebook_late_time);
        activity.push(events as f64);
        session_ids.push(session);
        level_groups.push(["0-4", "5-12", "13-22"][i % 3]);
        question_ids.push((i % 18) as i64 + 1);
    }

    zscore(&mut signal);
    let mut activity_z = activity.clone();
    zscore(&mut activity_z);
    let labels: Vec<i64> = (0..n)
        .map(|i| {
            let logit = 1.6 * signal[i] + 0.3 * activity_z[i] + 0.5 * normal(&mut rng) + 0.1;
            (rng.gen::<f64>() < sigmoid(logit)) as i64
        })
        .collect();

    let mut train = Table::new("sessions");
    train
        .add_column("session_id", Column::from_strings(&session_ids))
        .unwrap();
    train
        .add_column("level_group", Column::from_strs(&level_groups))
        .unwrap();
    train
        .add_column("question_id", Column::from_i64s(&question_ids))
        .unwrap();
    train
        .add_column("label", Column::from_i64s(&labels))
        .unwrap();

    let mut relevant = Table::new("game_events");
    relevant
        .add_column("session_id", Column::from_strings(&r_session))
        .unwrap();
    relevant
        .add_column("event_name", Column::from_strs(&r_event))
        .unwrap();
    relevant
        .add_column("room", Column::from_strs(&r_room))
        .unwrap();
    relevant
        .add_column("level", Column::from_i64s(&r_level))
        .unwrap();
    relevant
        .add_column("elapsed_time", Column::from_f64s(&r_elapsed))
        .unwrap();
    relevant
        .add_column("hover_duration", Column::from_f64s(&r_hover))
        .unwrap();
    relevant
        .add_column("screen_x", Column::from_f64s(&r_x))
        .unwrap();
    relevant
        .add_column("screen_y", Column::from_f64s(&r_y))
        .unwrap();
    add_noise_columns(&mut relevant, cfg.n_noise_cols, &mut rng);

    SyntheticDataset {
        name: "student",
        train,
        relevant,
        key_columns: vec!["session_id".into()],
        label_column: "label".into(),
        agg_columns: vec![
            "hover_duration".into(),
            "elapsed_time".into(),
            "screen_x".into(),
            "screen_y".into(),
        ],
        predicate_attrs: vec![
            "event_name".into(),
            "level".into(),
            "room".into(),
            "elapsed_time".into(),
        ],
        task: TaskKind::Binary,
        signal_description:
            "label ≈ f(SUM(hover_duration) WHERE event_name='notebook_click' AND level>=10)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GenConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.relevant.num_rows(), b.relevant.num_rows());
        assert_eq!(a.train.num_rows(), cfg.n_entities);
        assert_eq!(a.name, "student");
    }

    #[test]
    fn levels_in_range_and_labels_balanced() {
        let ds = generate(&GenConfig::small());
        let levels = ds.relevant.column("level").unwrap().numeric_values();
        assert!(levels.iter().all(|&l| (1.0..=22.0).contains(&l)));
        let labels = ds.train.column("label").unwrap().numeric_values();
        let rate = labels.iter().sum::<f64>() / labels.len() as f64;
        assert!(rate > 0.15 && rate < 0.9, "rate {rate}");
    }

    #[test]
    fn base_features_exclude_key_and_label() {
        let ds = generate(&GenConfig::tiny());
        let base = ds.base_feature_columns();
        assert!(base.contains(&"level_group".to_string()));
        assert!(!base.contains(&"session_id".to_string()));
        assert!(!base.contains(&"label".to_string()));
    }
}
