//! Shared helpers for the dataset generators.

use rand::rngs::StdRng;
use rand::Rng;

use feataug_tabular::{Column, Table};

/// Numerically stable sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Standard normal sample via Box-Muller.
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Append `n` uninformative columns (alternating float noise and low-cardinality categoricals)
/// to a table. Names are `noise_0`, `noise_1`, ….
pub(crate) fn add_noise_columns(table: &mut Table, n: usize, rng: &mut StdRng) {
    let rows = table.num_rows();
    for c in 0..n {
        let name = format!("noise_{c}");
        if c % 2 == 0 {
            let vals: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            table
                .add_column(name, Column::from_f64s(&vals))
                .expect("fresh noise column");
        } else {
            let choices = ["n0", "n1", "n2", "n3"];
            let vals: Vec<&str> = (0..rows)
                .map(|_| choices[rng.gen_range(0..choices.len())])
                .collect();
            table
                .add_column(name, Column::from_strs(&vals))
                .expect("fresh noise column");
        }
    }
}

/// Z-score normalise a vector in place (no-op for constant vectors).
pub(crate) fn zscore(values: &mut [f64]) {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std > 1e-12 {
        for v in values.iter_mut() {
            *v = (*v - mean) / std;
        }
    } else {
        for v in values.iter_mut() {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normal_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..5000).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1);
    }

    #[test]
    fn noise_columns_are_added_with_unique_names() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Table::new("t");
        t.add_column("k", Column::from_i64s(&[1, 2, 3])).unwrap();
        add_noise_columns(&mut t, 3, &mut rng);
        assert_eq!(t.num_columns(), 4);
        assert!(t.column("noise_0").is_ok());
        assert!(t.column("noise_2").is_ok());
    }

    #[test]
    fn zscore_normalises() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        zscore(&mut v);
        let mean: f64 = v.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let mut constant = vec![5.0, 5.0];
        zscore(&mut constant);
        assert_eq!(constant, vec![0.0, 0.0]);
    }
}
