//! Property-based tests for the tabular engine: aggregation invariants, predicate semantics,
//! group-by / join cardinalities and CSV round-trips.

use proptest::prelude::*;

use feataug_tabular::csv::{from_csv_string, to_csv_string};
use feataug_tabular::groupby::{group_by_aggregate, group_by_aggregate_sorted};
use feataug_tabular::join::left_join;
use feataug_tabular::kernels::apply_kernel;
use feataug_tabular::{AggFunc, Column, Predicate, Table, Value};

/// Adversarial float inputs for kernel-equivalence tests: indices into this palette are what
/// proptest shrinks over, so every draw can produce ±0.0, NaNs of both payload signs,
/// infinities and repeated values (single-element and all-equal slices come from short or
/// constant index vectors).
fn palette_values(indices: &[u8]) -> Vec<f64> {
    const PALETTE: [f64; 10] = [
        0.0,
        -0.0,
        f64::NAN,
        1.0,
        -1.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        2.5,
        2.5,
        1e300,
    ];
    indices
        .iter()
        .map(|&i| {
            let v = PALETTE[i as usize % PALETTE.len()];
            // Odd indices past the palette flip the NaN payload sign.
            if v.is_nan() && i >= PALETTE.len() as u8 {
                -v
            } else {
                v
            }
        })
        .collect()
}

fn small_table(keys: Vec<u8>, values: Vec<Option<f64>>) -> Table {
    let n = keys.len().min(values.len());
    let key_strs: Vec<String> = keys[..n].iter().map(|k| format!("k{}", k % 5)).collect();
    let mut t = Table::new("t");
    t.add_column("key", Column::from_strings(&key_strs))
        .unwrap();
    t.add_column("val", Column::from_opt_f64s(&values[..n]))
        .unwrap();
    t
}

proptest! {
    #[test]
    fn min_le_avg_le_max(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let min = AggFunc::Min.apply(&values).unwrap();
        let max = AggFunc::Max.apply(&values).unwrap();
        let avg = AggFunc::Avg.apply(&values).unwrap();
        prop_assert!(min <= avg + 1e-9);
        prop_assert!(avg <= max + 1e-9);
    }

    #[test]
    fn variance_and_derived_stats_nonnegative(values in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        prop_assert!(AggFunc::Var.apply(&values).unwrap() >= 0.0);
        prop_assert!(AggFunc::VarSample.apply(&values).unwrap() >= 0.0);
        prop_assert!(AggFunc::Std.apply(&values).unwrap() >= 0.0);
        prop_assert!(AggFunc::Entropy.apply(&values).unwrap() >= -1e-12);
        prop_assert!(AggFunc::Mad.apply(&values).unwrap() >= 0.0);
    }

    #[test]
    fn count_distinct_at_most_count(values in proptest::collection::vec(-50i64..50, 0..60)) {
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let count = AggFunc::Count.apply(&f).unwrap();
        let distinct = AggFunc::CountDistinct.apply(&f).unwrap();
        prop_assert!(distinct <= count);
    }

    #[test]
    fn median_between_min_and_max(values in proptest::collection::vec(-1e4f64..1e4, 1..30)) {
        let min = AggFunc::Min.apply(&values).unwrap();
        let max = AggFunc::Max.apply(&values).unwrap();
        let med = AggFunc::Median.apply(&values).unwrap();
        prop_assert!(min <= med && med <= max);
    }

    #[test]
    fn filter_never_grows_table(
        keys in proptest::collection::vec(0u8..10, 1..40),
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..40),
        low in -50.0f64..50.0,
    ) {
        let t = small_table(keys, values);
        let filtered = t.filter(&Predicate::ge("val", low)).unwrap();
        prop_assert!(filtered.num_rows() <= t.num_rows());
        // Every surviving value satisfies the predicate.
        for row in 0..filtered.num_rows() {
            match filtered.value(row, "val").unwrap() {
                Value::Float(v) => prop_assert!(v >= low),
                Value::Null => prop_assert!(false, "null rows must be dropped"),
                other => prop_assert!(false, "unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn groupby_row_count_equals_distinct_keys(
        keys in proptest::collection::vec(0u8..10, 1..60),
        values in proptest::collection::vec(proptest::option::of(-10.0f64..10.0), 1..60),
    ) {
        let t = small_table(keys, values);
        let out = group_by_aggregate(&t, &["key"], AggFunc::Sum, "val", "f").unwrap();
        prop_assert_eq!(out.num_rows(), t.column("key").unwrap().n_distinct());
    }

    #[test]
    fn hash_and_sort_groupby_agree(
        keys in proptest::collection::vec(0u8..6, 1..50),
        values in proptest::collection::vec(proptest::option::of(-10.0f64..10.0), 1..50),
    ) {
        let t = small_table(keys, values);
        let a = group_by_aggregate(&t, &["key"], AggFunc::Avg, "val", "f").unwrap();
        let b = group_by_aggregate_sorted(&t, &["key"], AggFunc::Avg, "val", "f").unwrap();
        let collect = |t: &Table| {
            let mut v: Vec<(String, String)> = (0..t.num_rows())
                .map(|i| (
                    t.value(i, "key").unwrap().to_string(),
                    format!("{:.9}", t.value(i, "f").unwrap().as_f64().unwrap_or(f64::NAN)),
                ))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(collect(&a), collect(&b));
    }

    #[test]
    fn left_join_preserves_left_cardinality(
        left_keys in proptest::collection::vec(0u8..8, 1..30),
        right_keys in proptest::collection::vec(0u8..8, 1..30),
    ) {
        let left_strs: Vec<String> = left_keys.iter().map(|k| format!("k{k}")).collect();
        let mut left = Table::new("left");
        left.add_column("key", Column::from_strings(&left_strs)).unwrap();

        // Right side: one row per distinct key (as produced by a group-by).
        let mut distinct = right_keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let right_strs: Vec<String> = distinct.iter().map(|k| format!("k{k}")).collect();
        let feats: Vec<f64> = distinct.iter().map(|&k| k as f64).collect();
        let mut right = Table::new("right");
        right.add_column("key", Column::from_strings(&right_strs)).unwrap();
        right.add_column("feature", Column::from_f64s(&feats)).unwrap();

        let joined = left_join(&left, &right, &["key"], &["key"]).unwrap();
        prop_assert_eq!(joined.num_rows(), left.num_rows());
        prop_assert_eq!(joined.num_columns(), 2);
    }

    #[test]
    fn csv_roundtrip(
        keys in proptest::collection::vec(0u8..5, 1..20),
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..20),
    ) {
        let t = small_table(keys, values);
        let text = to_csv_string(&t);
        let back = from_csv_string("t", &text).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        prop_assert_eq!(back.schema(), t.schema());
    }

    /// Every aggregation kernel must reproduce the `AggFunc::apply` oracle bit for bit over
    /// adversarial float slices: signed zeros, NaN payloads of both signs, infinities,
    /// single-element slices and all-equal slices.
    #[test]
    fn apply_kernel_bit_identical_to_apply_oracle(
        indices in proptest::collection::vec(0u8..20, 0..40),
    ) {
        let values = palette_values(&indices);
        for &agg in AggFunc::all() {
            let oracle = agg.apply(&values);
            let kernel = apply_kernel(agg, &values);
            prop_assert_eq!(
                oracle.map(f64::to_bits),
                kernel.map(f64::to_bits),
                "{} over {:?}: oracle {:?} vs kernel {:?}",
                agg,
                &values,
                oracle,
                kernel
            );
        }
    }

    /// All-equal and single-element slices are the classic degenerate groups; pin them
    /// explicitly rather than hoping the generator finds them.
    #[test]
    fn apply_kernel_matches_oracle_on_degenerate_groups(
        idx in 0u8..20,
        len in 1usize..6,
    ) {
        let values = vec![palette_values(&[idx])[0]; len];
        for &agg in AggFunc::all() {
            let oracle = agg.apply(&values);
            let kernel = apply_kernel(agg, &values);
            prop_assert_eq!(
                oracle.map(f64::to_bits),
                kernel.map(f64::to_bits),
                "{} over {:?}",
                agg,
                &values
            );
        }
    }

    #[test]
    fn selectivity_in_unit_interval(
        keys in proptest::collection::vec(0u8..10, 1..40),
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..40),
        lo in -120.0f64..120.0,
        hi in -120.0f64..120.0,
    ) {
        let t = small_table(keys, values);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let s = Predicate::between("val", lo, hi).selectivity(&t).unwrap();
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
