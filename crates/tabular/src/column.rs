//! Typed, nullable column storage.
//!
//! Every column stores its values in a typed vector with per-row `Option` nullability.
//! Categorical columns are dictionary-encoded ([`CatColumn`]) so that equality predicates,
//! group-by keys and mutual-information estimates can work on small integer codes.

use std::collections::HashMap;

use crate::error::TabularError;
use crate::schema::DataType;
use crate::value::Value;
use crate::Result;

/// A dictionary-encoded categorical column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatColumn {
    /// Distinct values, indexed by code.
    dict: Vec<String>,
    /// Reverse lookup from value to code.
    index: HashMap<String, u32>,
    /// Per-row code (None = NULL).
    codes: Vec<Option<u32>>,
}

impl CatColumn {
    /// Empty categorical column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct non-null values seen so far.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The dictionary of distinct values, indexed by code.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    /// Per-row codes (None = NULL).
    pub fn codes(&self) -> &[Option<u32>] {
        &self.codes
    }

    /// Code for a value if it is already in the dictionary.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Append a (possibly null) value, interning it in the dictionary.
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            None => self.codes.push(None),
            Some(v) => {
                let code = match self.index.get(v) {
                    Some(&c) => c,
                    None => {
                        let c = self.dict.len() as u32;
                        self.dict.push(v.to_string());
                        self.index.insert(v.to_string(), c);
                        c
                    }
                };
                self.codes.push(Some(code));
            }
        }
    }

    /// Value at row `i` (None if NULL or out of bounds).
    pub fn get(&self, i: usize) -> Option<&str> {
        self.codes
            .get(i)
            .and_then(|c| c.map(|c| self.dict[c as usize].as_str()))
    }

    /// Build a new column containing the rows at `indices` (in order).
    pub fn take(&self, indices: &[usize]) -> CatColumn {
        let mut out = CatColumn::new();
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Like [`CatColumn::take`], with `None` indices producing NULL rows. The dictionary is
    /// rebuilt in appearance order of the gathered rows.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> CatColumn {
        let mut out = CatColumn::new();
        for i in indices {
            out.push(i.and_then(|i| self.get(i)));
        }
        out
    }

    /// Build a new column containing the rows at `indices`, keeping this column's *entire*
    /// dictionary (codes included) instead of re-interning by gathered-row appearance order.
    ///
    /// [`CatColumn::take`] minimises the output dictionary, which renumbers codes; partitioned
    /// engines need every partition to agree on the global code assignment so that
    /// code-domain aggregates (`MODE`, `ENTROPY`, `COUNT_DISTINCT` over categoricals) and
    /// dictionary probes stay bit-identical to the unpartitioned table. Values with no
    /// surviving row simply keep an unused dictionary slot.
    pub fn take_with_dict(&self, indices: &[usize]) -> CatColumn {
        CatColumn {
            dict: self.dict.clone(),
            index: self.index.clone(),
            codes: indices.iter().map(|&i| self.codes[i]).collect(),
        }
    }

    /// Append every row of `other`, first absorbing `other`'s entire dictionary in `other`'s
    /// dictionary order (interning novel values before any row is pushed).
    ///
    /// For columns whose dictionary order equals first-appearance row order — everything built
    /// by [`CatColumn::push`] or [`CatColumn::take`] — this matches plain row-by-row pushing
    /// bit for bit. The distinction matters when `other` was built by
    /// [`CatColumn::take_with_dict`] and carries dictionary entries with no surviving rows:
    /// absorbing the dictionary keeps the receiver's code assignment in sync with the
    /// unpartitioned reference even when this partition saw none of a novel value's rows.
    pub fn extend_absorbing_dict(&mut self, other: &CatColumn) {
        for v in &other.dict {
            if !self.index.contains_key(v) {
                let c = self.dict.len() as u32;
                self.dict.push(v.clone());
                self.index.insert(v.clone(), c);
            }
        }
        for code in &other.codes {
            match code {
                None => self.codes.push(None),
                Some(c) => {
                    let v = &other.dict[*c as usize];
                    self.codes.push(Some(self.index[v]));
                }
            }
        }
    }
}

/// A typed, nullable column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<Option<i64>>),
    /// 64-bit floats.
    Float(Vec<Option<f64>>),
    /// Booleans.
    Bool(Vec<Option<bool>>),
    /// Datetimes as seconds since the Unix epoch.
    DateTime(Vec<Option<i64>>),
    /// Dictionary-encoded strings.
    Cat(CatColumn),
}

impl Column {
    // ----- constructors ---------------------------------------------------------------------

    /// Build an integer column from non-null values.
    pub fn from_i64s(values: &[i64]) -> Column {
        Column::Int(values.iter().map(|&v| Some(v)).collect())
    }

    /// Build a float column from non-null values.
    pub fn from_f64s(values: &[f64]) -> Column {
        Column::Float(values.iter().map(|&v| Some(v)).collect())
    }

    /// Build a boolean column from non-null values.
    pub fn from_bools(values: &[bool]) -> Column {
        Column::Bool(values.iter().map(|&v| Some(v)).collect())
    }

    /// Build a datetime column from non-null epoch-second values.
    pub fn from_datetimes(values: &[i64]) -> Column {
        Column::DateTime(values.iter().map(|&v| Some(v)).collect())
    }

    /// Build a categorical column from non-null strings.
    pub fn from_strs(values: &[&str]) -> Column {
        let mut c = CatColumn::new();
        for v in values {
            c.push(Some(v));
        }
        Column::Cat(c)
    }

    /// Build a categorical column from owned strings.
    pub fn from_strings(values: &[String]) -> Column {
        let mut c = CatColumn::new();
        for v in values {
            c.push(Some(v));
        }
        Column::Cat(c)
    }

    /// Build a float column allowing nulls.
    pub fn from_opt_f64s(values: &[Option<f64>]) -> Column {
        Column::Float(values.to_vec())
    }

    /// Build an integer column allowing nulls.
    pub fn from_opt_i64s(values: &[Option<i64>]) -> Column {
        Column::Int(values.to_vec())
    }

    /// Build a categorical column allowing nulls.
    pub fn from_opt_strs(values: &[Option<&str>]) -> Column {
        let mut c = CatColumn::new();
        for v in values {
            c.push(*v);
        }
        Column::Cat(c)
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Column {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::DateTime => Column::DateTime(Vec::new()),
            DataType::Categorical => Column::Cat(CatColumn::new()),
        }
    }

    // ----- basic accessors ------------------------------------------------------------------

    /// The column's logical type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Bool(_) => DataType::Bool,
            Column::DateTime(_) => DataType::DateTime,
            Column::Cat(_) => DataType::Categorical,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::DateTime(v) => v.len(),
            Column::Cat(c) => c.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::DateTime(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Cat(c) => c.codes().iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Cell value at row `i` ([`Value::Null`] when NULL; panics when out of bounds).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => v[i].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[i].map(Value::Float).unwrap_or(Value::Null),
            Column::Bool(v) => v[i].map(Value::Bool).unwrap_or(Value::Null),
            Column::DateTime(v) => v[i].map(Value::DateTime).unwrap_or(Value::Null),
            Column::Cat(c) => c
                .get(i)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
        }
    }

    /// Append a [`Value`] to the column, coercing compatible types
    /// (int → float, int → datetime). Returns an error when the value cannot be stored.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (Column::DateTime(v), Value::DateTime(x)) => v.push(Some(x)),
            (Column::DateTime(v), Value::Int(x)) => v.push(Some(x)),
            (Column::DateTime(v), Value::Null) => v.push(None),
            (Column::Cat(c), Value::Str(ref s)) => c.push(Some(s)),
            (Column::Cat(c), Value::Null) => c.push(None),
            (col, value) => {
                return Err(TabularError::TypeMismatch {
                    column: String::new(),
                    expected: col.dtype().name(),
                    actual: value.data_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Build a new column containing the rows at `indices` (in order, duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::DateTime(v) => Column::DateTime(indices.iter().map(|&i| v[i]).collect()),
            Column::Cat(c) => Column::Cat(c.take(indices)),
        }
    }

    /// Like [`Column::take`], but categorical columns keep their full dictionary and code
    /// assignment (see [`CatColumn::take_with_dict`]); other types behave exactly like
    /// [`Column::take`].
    pub fn take_with_dict(&self, indices: &[usize]) -> Column {
        match self {
            Column::Cat(c) => Column::Cat(c.take_with_dict(indices)),
            other => other.take(indices),
        }
    }

    /// Like [`Column::take`], with `None` indices producing NULL rows — the gather primitive
    /// behind expanding left joins, where unmatched left rows carry NULLs on the right side.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|i| i.and_then(|i| v[i])).collect()),
            Column::Float(v) => {
                Column::Float(indices.iter().map(|i| i.and_then(|i| v[i])).collect())
            }
            Column::Bool(v) => Column::Bool(indices.iter().map(|i| i.and_then(|i| v[i])).collect()),
            Column::DateTime(v) => {
                Column::DateTime(indices.iter().map(|i| i.and_then(|i| v[i])).collect())
            }
            Column::Cat(c) => Column::Cat(c.take_opt(indices)),
        }
    }

    /// Numeric view of the column: one `Option<f64>` per row. Strings map to `None`.
    /// Booleans become 0.0/1.0 and datetimes their epoch seconds.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        match self {
            Column::Int(v) => v.iter().map(|x| x.map(|x| x as f64)).collect(),
            Column::Float(v) => v.clone(),
            Column::Bool(v) => v
                .iter()
                .map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))
                .collect(),
            Column::DateTime(v) => v.iter().map(|x| x.map(|x| x as f64)).collect(),
            Column::Cat(c) => c.codes().iter().map(|x| x.map(|c| c as f64)).collect(),
        }
    }

    /// Non-null numeric values only (order preserved). Categorical codes are used for
    /// categorical columns, which is what aggregation functions such as `COUNT DISTINCT`,
    /// `MODE` and `ENTROPY` need.
    pub fn numeric_values(&self) -> Vec<f64> {
        self.to_f64_vec().into_iter().flatten().collect()
    }

    /// Minimum and maximum of the numeric view, ignoring NULLs. `None` for all-null columns.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for v in self.to_f64_vec().into_iter().flatten() {
            if v.is_nan() {
                continue;
            }
            seen = true;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if seen {
            Some((min, max))
        } else {
            None
        }
    }

    /// The distinct non-null values of the column as [`Value`]s, in first-appearance order,
    /// capped at `limit` entries. Used to build predicate domains.
    pub fn distinct_values(&self, limit: usize) -> Vec<Value> {
        let mut out = Vec::new();
        match self {
            Column::Cat(c) => {
                for v in c.dictionary().iter().take(limit) {
                    out.push(Value::Str(v.clone()));
                }
            }
            _ => {
                let mut seen = Vec::new();
                for i in 0..self.len() {
                    let v = self.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if !seen.contains(&v) {
                        seen.push(v.clone());
                        out.push(v);
                        if out.len() >= limit {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of distinct non-null values (exact; walks the whole column for non-categorical
    /// types).
    pub fn n_distinct(&self) -> usize {
        match self {
            Column::Cat(c) => {
                // Only count dictionary entries that actually appear.
                let mut used = vec![false; c.cardinality()];
                for code in c.codes().iter().flatten() {
                    used[*code as usize] = true;
                }
                used.into_iter().filter(|&u| u).count()
            }
            _ => {
                let mut vals: Vec<u64> = self
                    .to_f64_vec()
                    .into_iter()
                    .flatten()
                    .map(|f| f.to_bits())
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_interns_values() {
        let mut c = CatColumn::new();
        c.push(Some("a"));
        c.push(Some("b"));
        c.push(Some("a"));
        c.push(None);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.get(0), Some("a"));
        assert_eq!(c.get(2), Some("a"));
        assert_eq!(c.get(3), None);
        assert_eq!(c.code_of("b"), Some(1));
        assert_eq!(c.code_of("z"), None);
    }

    #[test]
    fn column_constructors_and_len() {
        assert_eq!(Column::from_i64s(&[1, 2, 3]).len(), 3);
        assert_eq!(Column::from_f64s(&[1.0]).len(), 1);
        assert_eq!(Column::from_strs(&["a", "b"]).len(), 2);
        assert_eq!(Column::from_bools(&[true]).dtype(), DataType::Bool);
        assert_eq!(Column::from_datetimes(&[5]).dtype(), DataType::DateTime);
        assert!(Column::empty(DataType::Float).is_empty());
    }

    #[test]
    fn get_returns_null_for_missing() {
        let c = Column::from_opt_f64s(&[Some(1.0), None]);
        assert_eq!(c.get(0), Value::Float(1.0));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn push_with_coercion() {
        let mut c = Column::Float(vec![]);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(3.0));

        let mut d = Column::DateTime(vec![]);
        d.push(Value::Int(100)).unwrap();
        assert_eq!(d.get(0), Value::DateTime(100));

        let mut s = Column::Cat(CatColumn::new());
        assert!(s.push(Value::Float(1.0)).is_err());
        s.push(Value::Str("x".into())).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::from_i64s(&[10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn take_opt_inserts_nulls() {
        let c = Column::from_strs(&["a", "b", "c"]);
        let t = c.take_opt(&[Some(2), None, Some(2), Some(0)]);
        assert_eq!(t.get(0), Value::Str("c".into()));
        assert_eq!(t.get(1), Value::Null);
        assert_eq!(t.get(2), Value::Str("c".into()));
        assert_eq!(t.get(3), Value::Str("a".into()));
        // Dictionary is rebuilt in appearance order of the gathered rows.
        match t {
            Column::Cat(c) => assert_eq!(c.dictionary(), &["c".to_string(), "a".to_string()]),
            other => panic!("expected categorical, got {other:?}"),
        }
    }

    #[test]
    fn numeric_views() {
        let c = Column::from_opt_i64s(&[Some(1), None, Some(3)]);
        assert_eq!(c.to_f64_vec(), vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.numeric_values(), vec![1.0, 3.0]);
        assert_eq!(c.numeric_range(), Some((1.0, 3.0)));

        let all_null = Column::from_opt_f64s(&[None, None]);
        assert_eq!(all_null.numeric_range(), None);
    }

    #[test]
    fn distinct_values_and_counts() {
        let c = Column::from_strs(&["a", "b", "a", "c"]);
        let d = c.distinct_values(10);
        assert_eq!(d.len(), 3);
        assert_eq!(c.n_distinct(), 3);

        let n = Column::from_i64s(&[5, 5, 7]);
        assert_eq!(n.n_distinct(), 2);
        assert_eq!(n.distinct_values(1).len(), 1);
    }

    #[test]
    fn take_with_dict_preserves_codes_and_dictionary() {
        let mut c = CatColumn::new();
        for v in ["a", "b", "c", "b", None.unwrap_or("d")] {
            c.push(Some(v));
        }
        // Keep only rows of "c" and "b": plain take would renumber, take_with_dict must not.
        let t = c.take_with_dict(&[2, 3]);
        assert_eq!(t.dictionary(), c.dictionary());
        assert_eq!(t.codes(), &[Some(2), Some(1)]);
        assert_eq!(t.code_of("d"), Some(3), "row-less values keep their code");
        assert_eq!(t.get(0), Some("c"));

        let col = Column::Cat(c.clone());
        match col.take_with_dict(&[2, 3]) {
            Column::Cat(tc) => assert_eq!(tc, t),
            other => panic!("expected categorical, got {other:?}"),
        }
        // Non-categorical columns delegate to plain take.
        let ints = Column::from_i64s(&[10, 20, 30]);
        assert_eq!(ints.take_with_dict(&[2, 0]), ints.take(&[2, 0]));
    }

    #[test]
    fn extend_absorbing_dict_matches_row_pushes_and_absorbs_rowless_values() {
        // Push-built batch: absorbing must equal row-by-row pushing.
        let mut base = CatColumn::new();
        base.push(Some("a"));
        base.push(Some("b"));
        let mut batch = CatColumn::new();
        for v in [Some("c"), Some("a"), None, Some("d")] {
            batch.push(v);
        }
        let mut absorbed = base.clone();
        absorbed.extend_absorbing_dict(&batch);
        let mut pushed = base.clone();
        for i in 0..batch.len() {
            pushed.push(batch.get(i));
        }
        assert_eq!(absorbed.codes(), pushed.codes());
        assert_eq!(absorbed.dictionary(), pushed.dictionary());

        // take_with_dict-built batch: dictionary entries with no rows are still interned,
        // in the batch's dictionary order.
        let rowless = batch.take_with_dict(&[1]); // one "a" row, dict still [c, a, d]
        let mut target = base.clone();
        target.extend_absorbing_dict(&rowless);
        assert_eq!(
            target.dictionary(),
            &["a", "b", "c", "d"].map(String::from),
            "novel values interned in the batch's dictionary order, rows or not"
        );
        assert_eq!(target.codes(), &[Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn n_distinct_ignores_unused_dictionary_entries() {
        let mut c = CatColumn::new();
        c.push(Some("a"));
        c.push(Some("b"));
        let col = Column::Cat(c.take(&[0])); // only "a" survives
        assert_eq!(col.n_distinct(), 1);
    }
}
