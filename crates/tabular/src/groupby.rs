//! Group-by aggregation — the relational core of feature generation.
//!
//! [`group_by_aggregate`] evaluates `SELECT k, agg(a) FROM R GROUP BY k` and returns a table
//! with one row per group. [`group_by_aggregate_multi`] computes several `(agg, column)` pairs
//! in a single pass over the data, which the Featuretools baseline uses to materialise its whole
//! feature pool efficiently. A sort-based variant ([`group_by_aggregate_sorted`]) is provided
//! for the engine ablation benchmark.

use std::collections::HashMap;

use crate::aggregate::AggFunc;
use crate::column::Column;
use crate::error::TabularError;
use crate::table::Table;
use crate::Result;

/// A hashable, equality-comparable atom of a group or join key.
///
/// Group-by, joins and the `feataug` query engine all key rows by vectors of
/// these typed atoms instead of rendered strings; categorical values are
/// represented by their dictionary code, so comparing atoms across tables
/// requires translating codes first (see [`crate::join::KeyMapper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyAtom {
    /// SQL NULL. Forms its own group in a group-by; never matches in a join.
    Null,
    /// Integer or datetime (epoch-second) key value.
    Int(i64),
    /// Floats keyed by their bit pattern (exact grouping, NaN-safe).
    Bits(u64),
    /// Boolean key value.
    Bool(bool),
    /// Dictionary code of a categorical value (table-local).
    Code(u32),
}

/// A composite group key (one atom per key column).
type GroupKey = Vec<KeyAtom>;

/// The [`KeyAtom`] of `col` at `row`.
pub fn key_atom(col: &Column, row: usize) -> KeyAtom {
    match col {
        Column::Int(v) => v[row].map(KeyAtom::Int).unwrap_or(KeyAtom::Null),
        Column::DateTime(v) => v[row].map(KeyAtom::Int).unwrap_or(KeyAtom::Null),
        Column::Float(v) => v[row]
            .map(|f| KeyAtom::Bits(f.to_bits()))
            .unwrap_or(KeyAtom::Null),
        Column::Bool(v) => v[row].map(KeyAtom::Bool).unwrap_or(KeyAtom::Null),
        Column::Cat(c) => c.codes()[row].map(KeyAtom::Code).unwrap_or(KeyAtom::Null),
    }
}

/// Build the group index: for every distinct key, the row indices belonging to it, in
/// first-appearance order of the groups.
fn build_groups(table: &Table, key_columns: &[&str]) -> Result<Vec<(Vec<usize>, usize)>> {
    if key_columns.is_empty() {
        return Err(TabularError::InvalidArgument(
            "group-by needs at least one key".into(),
        ));
    }
    let cols: Vec<&Column> = key_columns
        .iter()
        .map(|k| table.column(k))
        .collect::<Result<Vec<_>>>()?;
    let mut index: HashMap<GroupKey, usize> = HashMap::new();
    // (rows of the group, representative row used to emit key values)
    let mut groups: Vec<(Vec<usize>, usize)> = Vec::new();
    for row in 0..table.num_rows() {
        let key: GroupKey = cols.iter().map(|c| key_atom(c, row)).collect();
        match index.get(&key) {
            Some(&gid) => groups[gid].0.push(row),
            None => {
                index.insert(key, groups.len());
                groups.push((vec![row], row));
            }
        }
    }
    Ok(groups)
}

/// `SELECT key_columns, agg(agg_column) AS out_name FROM table GROUP BY key_columns`.
///
/// NULL values of `agg_column` are ignored inside each group; groups whose values are all NULL
/// produce a NULL aggregate (except `COUNT` / `COUNT DISTINCT`, which produce 0).
pub fn group_by_aggregate(
    table: &Table,
    key_columns: &[&str],
    agg: AggFunc,
    agg_column: &str,
    out_name: &str,
) -> Result<Table> {
    group_by_aggregate_multi(table, key_columns, &[(agg, agg_column, out_name)])
}

/// Compute several aggregations in one pass: each entry of `specs` is
/// `(function, aggregated column, output column name)`.
pub fn group_by_aggregate_multi(
    table: &Table,
    key_columns: &[&str],
    specs: &[(AggFunc, &str, &str)],
) -> Result<Table> {
    let groups = build_groups(table, key_columns)?;

    // Pre-extract the numeric views of every aggregated column (deduplicated).
    let mut views: HashMap<&str, Vec<Option<f64>>> = HashMap::new();
    for (_, col, _) in specs {
        if !views.contains_key(col) {
            views.insert(col, table.column(col)?.to_f64_vec());
        }
    }

    let mut out = Table::new(format!("{}_agg", table.name()));

    // Key columns: one representative row per group.
    let representatives: Vec<usize> = groups.iter().map(|(_, rep)| *rep).collect();
    for &key in key_columns {
        let col = table.column(key)?;
        out.add_column(key, col.take(&representatives))?;
    }

    // Aggregate columns.
    for (agg, col_name, out_name) in specs {
        let view = &views[col_name];
        let mut values: Vec<Option<f64>> = Vec::with_capacity(groups.len());
        let mut buf: Vec<f64> = Vec::new();
        for (rows, _) in &groups {
            buf.clear();
            buf.extend(rows.iter().filter_map(|&r| view[r]));
            values.push(agg.apply(&buf));
        }
        out.add_column(*out_name, Column::from_opt_f64s(&values))?;
    }
    Ok(out)
}

/// Sort-based group-by (single aggregation). Functionally identical to
/// [`group_by_aggregate`]; kept as the comparison point for the engine ablation benchmark.
pub fn group_by_aggregate_sorted(
    table: &Table,
    key_columns: &[&str],
    agg: AggFunc,
    agg_column: &str,
    out_name: &str,
) -> Result<Table> {
    if key_columns.is_empty() {
        return Err(TabularError::InvalidArgument(
            "group-by needs at least one key".into(),
        ));
    }
    let cols: Vec<&Column> = key_columns
        .iter()
        .map(|k| table.column(k))
        .collect::<Result<Vec<_>>>()?;
    let view = table.column(agg_column)?.to_f64_vec();

    // Sort row indices by the composite key rendered as comparable values.
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by(|&a, &b| {
        for c in &cols {
            let va = c.get(a);
            let vb = c.get(b);
            let ord = va.total_cmp(&vb);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    let same_key = |a: usize, b: usize| -> bool {
        cols.iter()
            .all(|c| c.get(a).total_cmp(&c.get(b)) == std::cmp::Ordering::Equal)
    };

    let mut representatives: Vec<usize> = Vec::new();
    let mut values: Vec<Option<f64>> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let start = i;
        let rep = order[start];
        let mut buf: Vec<f64> = Vec::new();
        while i < order.len() && same_key(order[i], rep) {
            if let Some(v) = view[order[i]] {
                buf.push(v);
            }
            i += 1;
        }
        representatives.push(rep);
        values.push(agg.apply(&buf));
    }

    let mut out = Table::new(format!("{}_agg", table.name()));
    for &key in key_columns {
        let col = table.column(key)?;
        out.add_column(key, col.take(&representatives))?;
    }
    out.add_column(out_name, Column::from_opt_f64s(&values))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn logs() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b", "b", "c"]))
            .unwrap();
        t.add_column(
            "price",
            Column::from_opt_f64s(&[Some(10.0), Some(20.0), Some(5.0), None, Some(15.0), None]),
        )
        .unwrap();
        t.add_column("qty", Column::from_i64s(&[1, 2, 3, 4, 5, 6]))
            .unwrap();
        t
    }

    #[test]
    fn avg_per_group_ignores_nulls() {
        let t = logs();
        let out = group_by_aggregate(&t, &["cname"], AggFunc::Avg, "price", "f").unwrap();
        assert_eq!(out.num_rows(), 3);
        // Groups appear in first-appearance order: a, b, c.
        assert_eq!(out.value(0, "cname").unwrap(), Value::Str("a".into()));
        assert_eq!(out.value(0, "f").unwrap(), Value::Float(15.0));
        assert_eq!(out.value(1, "f").unwrap(), Value::Float(10.0));
        // Group "c" has only NULL prices -> NULL aggregate.
        assert_eq!(out.value(2, "f").unwrap(), Value::Null);
    }

    #[test]
    fn count_counts_non_null_only() {
        let t = logs();
        let out = group_by_aggregate(&t, &["cname"], AggFunc::Count, "price", "f").unwrap();
        assert_eq!(out.value(0, "f").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(1, "f").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(2, "f").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn multi_key_grouping() {
        let mut t = Table::new("t");
        t.add_column("k1", Column::from_strs(&["x", "x", "y", "y"]))
            .unwrap();
        t.add_column("k2", Column::from_i64s(&[1, 2, 1, 1]))
            .unwrap();
        t.add_column("v", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        let out = group_by_aggregate(&t, &["k1", "k2"], AggFunc::Sum, "v", "s").unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(2, "s").unwrap(), Value::Float(70.0));
    }

    #[test]
    fn multi_aggregation_single_pass() {
        let t = logs();
        let out = group_by_aggregate_multi(
            &t,
            &["cname"],
            &[
                (AggFunc::Sum, "price", "sum_price"),
                (AggFunc::Max, "qty", "max_qty"),
                (AggFunc::Count, "qty", "n"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_columns(), 4);
        assert_eq!(out.value(0, "sum_price").unwrap(), Value::Float(30.0));
        assert_eq!(out.value(1, "max_qty").unwrap(), Value::Float(5.0));
        assert_eq!(out.value(2, "n").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn sorted_groupby_matches_hash_groupby() {
        let t = logs();
        for agg in [AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Median] {
            let hash = group_by_aggregate(&t, &["cname"], agg, "price", "f").unwrap();
            let sorted = group_by_aggregate_sorted(&t, &["cname"], agg, "price", "f").unwrap();
            assert_eq!(hash.num_rows(), sorted.num_rows());
            // Compare as (key -> value) maps because the group orderings differ.
            let to_map = |t: &Table| -> Vec<(String, Value)> {
                let mut v: Vec<(String, Value)> = (0..t.num_rows())
                    .map(|i| {
                        (
                            t.value(i, "cname").unwrap().to_string(),
                            t.value(i, "f").unwrap(),
                        )
                    })
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            };
            assert_eq!(to_map(&hash), to_map(&sorted), "agg {agg:?}");
        }
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let mut t = Table::new("t");
        t.add_column("k", Column::from_opt_strs(&[Some("a"), None, None]))
            .unwrap();
        t.add_column("v", Column::from_f64s(&[1.0, 2.0, 3.0]))
            .unwrap();
        let out = group_by_aggregate(&t, &["k"], AggFunc::Sum, "v", "s").unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, "s").unwrap(), Value::Float(5.0));
    }

    #[test]
    fn empty_key_list_is_an_error() {
        let t = logs();
        assert!(group_by_aggregate(&t, &[], AggFunc::Sum, "price", "f").is_err());
    }

    #[test]
    fn missing_columns_error() {
        let t = logs();
        assert!(group_by_aggregate(&t, &["nope"], AggFunc::Sum, "price", "f").is_err());
        assert!(group_by_aggregate(&t, &["cname"], AggFunc::Sum, "nope", "f").is_err());
    }
}
