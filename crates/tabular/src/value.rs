//! Dynamically-typed scalar values.
//!
//! [`Value`] is the row-wise view of a cell. Columns store data in typed vectors
//! (see [`crate::column::Column`]); `Value` is used at API boundaries — predicate constants,
//! query-vector entries, CSV cells and test assertions.

use std::cmp::Ordering;
use std::fmt;

use crate::schema::DataType;

/// A single dynamically-typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value (SQL NULL).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string / categorical value.
    Str(String),
    /// Datetime as seconds since the Unix epoch.
    DateTime(i64),
}

impl Value {
    /// The [`DataType`] this value naturally belongs to. `Null` maps to [`DataType::Float`]
    /// by convention (it can live in any column; callers that care should check
    /// [`Value::is_null`] first).
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Float,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Bool(_) => DataType::Bool,
            Value::Str(_) => DataType::Categorical,
            Value::DateTime(_) => DataType::DateTime,
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Booleans map to 0.0/1.0 and datetimes to
    /// their epoch seconds; strings and nulls have no numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::DateTime(v) => Some(*v as f64),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Integer view (integers and datetimes only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::DateTime(v) => Some(*v),
            _ => None,
        }
    }

    /// Total ordering used for comparisons inside predicates and sorts.
    ///
    /// * `Null` sorts before everything.
    /// * Numeric values (int / float / bool / datetime) compare numerically.
    /// * Strings compare lexicographically.
    /// * Numeric vs. string comparisons order numerics first (arbitrary but total).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
            (a, b) => {
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::DateTime(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::DateTime(100).as_f64(), Some(100.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Bool(true).total_cmp(&Value::Int(0)),
            Ordering::Greater
        );
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
        // numerics order before strings
        assert_eq!(
            Value::Int(999).total_cmp(&Value::Str("a".into())),
            Ordering::Less
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
    }
}
