//! The [`Table`] type: a named collection of equal-length columns.

use crate::column::Column;
use crate::error::TabularError;
use crate::predicate::Predicate;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::Result;

/// A named, in-memory columnar table.
///
/// Invariant: every column has the same number of rows, and column names are unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Create an empty table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            schema: Schema::new(),
            columns: Vec::new(),
            num_rows: 0,
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema.names()
    }

    /// Add a column. The first column fixes the row count; subsequent columns must match it.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column) -> Result<()> {
        let name = name.into();
        if self.schema.index_of(&name).is_some() {
            return Err(TabularError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && column.len() != self.num_rows {
            return Err(TabularError::LengthMismatch {
                expected: self.num_rows,
                actual: column.len(),
                column: name,
            });
        }
        if self.columns.is_empty() {
            self.num_rows = column.len();
        }
        self.schema.push(Field::new(name, column.dtype()));
        self.columns.push(column);
        Ok(())
    }

    /// Builder-style [`Table::add_column`].
    pub fn with_column(mut self, name: impl Into<String>, column: Column) -> Result<Self> {
        self.add_column(name, column)?;
        Ok(self)
    }

    /// Replace an existing column (same length required), or add it if absent.
    pub fn set_column(&mut self, name: &str, column: Column) -> Result<()> {
        match self.schema.index_of(name) {
            Some(idx) => {
                if column.len() != self.num_rows {
                    return Err(TabularError::LengthMismatch {
                        expected: self.num_rows,
                        actual: column.len(),
                        column: name.to_string(),
                    });
                }
                self.schema.remove(name);
                self.columns.remove(idx);
                self.schema.push(Field::new(name, column.dtype()));
                self.columns.push(column);
                Ok(())
            }
            None => self.add_column(name, column),
        }
    }

    /// Remove a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))?;
        self.schema.remove(name);
        Ok(self.columns.remove(idx))
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Column by positional index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The [`DataType`] of a named column.
    pub fn dtype(&self, name: &str) -> Result<DataType> {
        Ok(self.column(name)?.dtype())
    }

    /// Cell value at (`row`, `column name`).
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.column(name)?.get(row))
    }

    /// Materialise a new table containing only the rows at `indices` (order and duplicates
    /// preserved).
    pub fn take(&self, indices: &[usize]) -> Table {
        let mut out = Table::new(self.name.clone());
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            out.add_column(field.name.clone(), col.take(indices))
                .expect("take preserves schema invariants");
        }
        if self.columns.is_empty() {
            out.num_rows = 0;
        }
        out
    }

    /// Like [`Table::take`], but categorical columns keep their full dictionary and code
    /// assignment (see [`crate::column::CatColumn::take_with_dict`]). Partitioned engines use
    /// this so every partition of a table agrees with the whole table on categorical codes.
    pub fn take_with_dict(&self, indices: &[usize]) -> Table {
        let mut out = Table::new(self.name.clone());
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            out.add_column(field.name.clone(), col.take_with_dict(indices))
                .expect("take preserves schema invariants");
        }
        if self.columns.is_empty() {
            out.num_rows = 0;
        }
        out
    }

    /// Materialise a new table containing only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut out = Table::new(self.name.clone());
        for &n in names {
            out.add_column(n, self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// Filter rows by a [`Predicate`]. Rows where the predicate evaluates to NULL (e.g. a NULL
    /// operand) are dropped, matching SQL `WHERE` semantics.
    pub fn filter(&self, predicate: &Predicate) -> Result<Table> {
        let mut mask = crate::selection::SelectionMask::new();
        crate::selection::select_into(self, predicate, &mut mask)?;
        Ok(self.take(&mask.to_indices()))
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.num_rows);
        let indices: Vec<usize> = (0..n).collect();
        self.take(&indices)
    }

    /// Vertically stack another table with an identical schema under this one.
    pub fn concat(&self, other: &Table) -> Result<Table> {
        if self.schema != *other.schema() {
            return Err(TabularError::InvalidArgument(
                "concat requires identical schemas".to_string(),
            ));
        }
        let mut out = self.clone();
        for (idx, field) in self.schema.fields().iter().enumerate() {
            let other_col = other.column(&field.name)?;
            for i in 0..other.num_rows() {
                out.columns[idx].push(other_col.get(i))?;
            }
        }
        out.num_rows += other.num_rows();
        Ok(out)
    }

    /// Like [`Table::concat`], but categorical columns absorb `other`'s *entire* dictionary
    /// (in `other`'s dictionary order) before any row is appended — see
    /// [`crate::column::CatColumn::extend_absorbing_dict`].
    ///
    /// For batches whose dictionary order equals row first-appearance order (anything built by
    /// pushes or a plain `take`) this is bit-identical to [`Table::concat`]. Partitioned
    /// ingestion relies on the difference: sub-batches cut with [`Table::take_with_dict`]
    /// carry the full batch dictionary, so every partition interns the batch's novel values
    /// in the same global order regardless of which rows it owns.
    pub fn concat_absorbing(&self, other: &Table) -> Result<Table> {
        if self.schema != *other.schema() {
            return Err(TabularError::InvalidArgument(
                "concat requires identical schemas".to_string(),
            ));
        }
        let mut out = self.clone();
        for (idx, field) in self.schema.fields().iter().enumerate() {
            let other_col = other.column(&field.name)?;
            match (&mut out.columns[idx], other_col) {
                (Column::Cat(dst), Column::Cat(src)) => dst.extend_absorbing_dict(src),
                _ => {
                    for i in 0..other.num_rows() {
                        out.columns[idx].push(other_col.get(i))?;
                    }
                }
            }
        }
        out.num_rows += other.num_rows();
        Ok(out)
    }

    /// A human-readable preview of the first `n` rows (used by examples and debugging).
    pub fn preview(&self, n: usize) -> String {
        let mut s = String::new();
        s.push_str(&self.column_names().join(","));
        s.push('\n');
        for row in 0..n.min(self.num_rows) {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.get(row).to_string())
                .collect();
            s.push_str(&cells.join(","));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t");
        t.add_column("id", Column::from_i64s(&[1, 2, 3, 4]))
            .unwrap();
        t.add_column("grp", Column::from_strs(&["a", "a", "b", "b"]))
            .unwrap();
        t.add_column("x", Column::from_f64s(&[1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        t
    }

    #[test]
    fn add_column_enforces_lengths_and_uniqueness() {
        let mut t = sample();
        assert!(matches!(
            t.add_column("id", Column::from_i64s(&[9, 9, 9, 9])),
            Err(TabularError::DuplicateColumn(_))
        ));
        assert!(matches!(
            t.add_column("bad", Column::from_i64s(&[1, 2])),
            Err(TabularError::LengthMismatch { .. })
        ));
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
    }

    #[test]
    fn column_lookup_and_values() {
        let t = sample();
        assert_eq!(t.value(2, "grp").unwrap(), Value::Str("b".into()));
        assert_eq!(t.dtype("x").unwrap(), DataType::Float);
        assert!(t.column("nope").is_err());
        assert_eq!(t.column_names(), vec!["id", "grp", "x"]);
    }

    #[test]
    fn take_and_head() {
        let t = sample();
        let sub = t.take(&[3, 1]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(0, "id").unwrap(), Value::Int(4));
        assert_eq!(sub.value(1, "id").unwrap(), Value::Int(2));

        let h = t.head(2);
        assert_eq!(h.num_rows(), 2);
        let h_big = t.head(100);
        assert_eq!(h_big.num_rows(), 4);
    }

    #[test]
    fn select_projects_columns() {
        let t = sample();
        let s = t.select(&["x", "id"]).unwrap();
        assert_eq!(s.column_names(), vec!["x", "id"]);
        assert!(t.select(&["missing"]).is_err());
    }

    #[test]
    fn set_and_drop_column() {
        let mut t = sample();
        t.set_column("x", Column::from_f64s(&[9.0, 9.0, 9.0, 9.0]))
            .unwrap();
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(9.0));
        t.set_column("new", Column::from_i64s(&[7, 7, 7, 7]))
            .unwrap();
        assert_eq!(t.num_columns(), 4);
        let dropped = t.drop_column("new").unwrap();
        assert_eq!(dropped.len(), 4);
        assert!(t.drop_column("new").is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let t = sample();
        let f = t.filter(&Predicate::eq("grp", "a")).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "id").unwrap(), Value::Int(1));
    }

    #[test]
    fn concat_stacks_rows() {
        let t = sample();
        let c = t.concat(&t).unwrap();
        assert_eq!(c.num_rows(), 8);
        assert_eq!(c.value(4, "id").unwrap(), Value::Int(1));

        let other = Table::new("other")
            .with_column("id", Column::from_i64s(&[1]))
            .unwrap();
        assert!(t.concat(&other).is_err());
    }

    #[test]
    fn take_with_dict_keeps_global_categorical_codes() {
        let t = sample();
        let part = t.take_with_dict(&[2, 3]); // only "b" rows survive
        assert_eq!(part.num_rows(), 2);
        match part.column("grp").unwrap() {
            Column::Cat(c) => {
                assert_eq!(c.dictionary(), &["a".to_string(), "b".to_string()]);
                assert_eq!(c.codes(), &[Some(1), Some(1)]);
            }
            other => panic!("expected categorical, got {other:?}"),
        }
        // Non-categorical columns match plain take.
        assert_eq!(
            part.column("id").unwrap(),
            t.take(&[2, 3]).column("id").unwrap()
        );
    }

    #[test]
    fn concat_absorbing_matches_concat_and_absorbs_rowless_dict_entries() {
        let t = sample();
        // Push-built other: bit-identical to plain concat.
        let absorbed = t.concat_absorbing(&t).unwrap();
        assert_eq!(absorbed, t.concat(&t).unwrap());

        // A sub-batch cut with take_with_dict carries the full batch dictionary; absorbing
        // interns the row-less novel value too.
        let mut batch = Table::new("t");
        batch.add_column("id", Column::from_i64s(&[9, 10])).unwrap();
        batch
            .add_column("grp", Column::from_strs(&["z", "q"]))
            .unwrap();
        batch
            .add_column("x", Column::from_f64s(&[9.0, 10.0]))
            .unwrap();
        let sub = batch.take_with_dict(&[1]); // only the "q" row, dict still [z, q]
        let merged = t.concat_absorbing(&sub).unwrap();
        match merged.column("grp").unwrap() {
            Column::Cat(c) => {
                assert_eq!(
                    c.dictionary(),
                    &["a", "b", "z", "q"].map(String::from),
                    "row-less 'z' interned before 'q', matching the unpartitioned order"
                );
                assert_eq!(c.codes().last().copied().flatten(), Some(3));
            }
            other => panic!("expected categorical, got {other:?}"),
        }
        assert!(t.concat_absorbing(&Table::new("empty")).is_err());
    }

    #[test]
    fn preview_contains_header_and_rows() {
        let t = sample();
        let p = t.preview(2);
        assert!(p.starts_with("id,grp,x\n"));
        assert_eq!(p.lines().count(), 3);
    }
}
