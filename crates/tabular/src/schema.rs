//! Schemas: named, typed column descriptors.

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Dictionary-encoded string / categorical.
    Categorical,
    /// Seconds since the Unix epoch.
    DateTime,
}

impl DataType {
    /// True for types on which range predicates are meaningful (numeric and datetime).
    pub fn is_numeric_like(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::DateTime | DataType::Bool
        )
    }

    /// True for types on which equality predicates are used by FeatAug (categoricals and bools).
    pub fn is_categorical_like(&self) -> bool {
        matches!(self, DataType::Categorical | DataType::Bool)
    }

    /// Short lowercase name, used in CSV headers and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Categorical => "cat",
            DataType::DateTime => "datetime",
        }
    }
}

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a new field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of [`Field`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Build a schema from fields.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// All fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Append a field (used internally by [`crate::Table::add_column`]).
    pub(crate) fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// Remove a field by name, returning it if present.
    pub(crate) fn remove(&mut self, name: &str) -> Option<Field> {
        let idx = self.index_of(name)?;
        Some(self.fields.remove(idx))
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_and_field_lookup() {
        let s = Schema::from_fields(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Categorical),
        ]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.field("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.names(), vec!["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn datatype_classification() {
        assert!(DataType::Int.is_numeric_like());
        assert!(DataType::DateTime.is_numeric_like());
        assert!(!DataType::Categorical.is_numeric_like());
        assert!(DataType::Categorical.is_categorical_like());
        assert!(DataType::Bool.is_categorical_like());
        assert!(!DataType::Float.is_categorical_like());
    }

    #[test]
    fn datatype_names_are_stable() {
        assert_eq!(DataType::Int.name(), "int");
        assert_eq!(DataType::Categorical.name(), "cat");
        assert_eq!(DataType::DateTime.name(), "datetime");
    }

    #[test]
    fn remove_field() {
        let mut s = Schema::from_fields(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
        ]);
        let removed = s.remove("a").unwrap();
        assert_eq!(removed.name, "a");
        assert_eq!(s.len(), 1);
        assert!(s.remove("zzz").is_none());
    }
}
