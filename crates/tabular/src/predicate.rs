//! Predicates: the `WHERE` clauses of predicate-aware SQL queries.
//!
//! The FeatAug paper uses two predicate shapes (Definition 2):
//!
//! * **equality predicates** `p = d` on categorical columns, and
//! * **range predicates** `d_low <= p <= d_high` on numerical / datetime columns, where either
//!   bound may be absent (one-sided ranges).
//!
//! A query's `WHERE` clause is a conjunction of such predicates; [`Predicate::And`] models it.
//! SQL `WHERE` semantics are used for NULLs: a row whose operand is NULL does not satisfy the
//! predicate.

use std::fmt;

use crate::column::Column;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A boolean row filter over a [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Keep every row (the empty `WHERE` clause).
    True,
    /// `column = value` (equality, typically on a categorical column).
    Eq { column: String, value: Value },
    /// `low <= column <= high`, either bound optional (range, on numeric / datetime columns).
    Range {
        column: String,
        low: Option<Value>,
        high: Option<Value>,
    },
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Equality predicate `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Eq {
            column: column.into(),
            value: value.into(),
        }
    }

    /// Two-sided range predicate `low <= column <= high`.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Predicate {
        Predicate::Range {
            column: column.into(),
            low: Some(low.into()),
            high: Some(high.into()),
        }
    }

    /// One-sided range predicate `column >= low`.
    pub fn ge(column: impl Into<String>, low: impl Into<Value>) -> Predicate {
        Predicate::Range {
            column: column.into(),
            low: Some(low.into()),
            high: None,
        }
    }

    /// One-sided range predicate `column <= high`.
    pub fn le(column: impl Into<String>, high: impl Into<Value>) -> Predicate {
        Predicate::Range {
            column: column.into(),
            low: None,
            high: Some(high.into()),
        }
    }

    /// General range constructor with optional bounds. `None` on both sides keeps all non-null
    /// rows of the column.
    pub fn range(column: impl Into<String>, low: Option<Value>, high: Option<Value>) -> Predicate {
        Predicate::Range {
            column: column.into(),
            low,
            high,
        }
    }

    /// Conjunction of predicates. Flattens nested `And`s and drops `True`s.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Predicate::And(flat),
        }
    }

    /// Names of the columns this predicate touches (with duplicates removed, order preserved).
    pub fn columns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Eq { column, .. } | Predicate::Range { column, .. } => {
                if !out.contains(&column.as_str()) {
                    out.push(column);
                }
            }
            Predicate::And(preds) => {
                for p in preds {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// True when the predicate places no restriction on any row.
    pub fn is_trivial(&self) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Range {
                low: None,
                high: None,
                ..
            } => false, // still drops NULLs
            Predicate::And(ps) => ps.iter().all(|p| p.is_trivial()),
            _ => false,
        }
    }

    /// Evaluate the predicate against every row of `table`, producing a keep-mask.
    pub fn evaluate(&self, table: &Table) -> Result<Vec<bool>> {
        match self {
            Predicate::True => Ok(vec![true; table.num_rows()]),
            Predicate::Eq { column, value } => {
                let col = table.column(column)?;
                Ok(eval_eq(col, value))
            }
            Predicate::Range { column, low, high } => {
                let col = table.column(column)?;
                Ok(eval_range(col, low.as_ref(), high.as_ref()))
            }
            Predicate::And(preds) => {
                let mut mask = vec![true; table.num_rows()];
                for p in preds {
                    let m = p.evaluate(table)?;
                    for (dst, src) in mask.iter_mut().zip(m) {
                        *dst = *dst && src;
                    }
                }
                Ok(mask)
            }
        }
    }

    /// Count the rows of `table` satisfying the predicate without materialising them.
    pub fn selectivity(&self, table: &Table) -> Result<f64> {
        if table.num_rows() == 0 {
            return Ok(0.0);
        }
        let mask = self.evaluate(table)?;
        let kept = mask.iter().filter(|&&b| b).count();
        Ok(kept as f64 / table.num_rows() as f64)
    }
}

fn eval_eq(col: &Column, value: &Value) -> Vec<bool> {
    match (col, value) {
        // Fast path: equality against a dictionary-encoded categorical — compare codes.
        (Column::Cat(c), Value::Str(s)) => {
            let code = c.code_of(s);
            c.codes()
                .iter()
                .map(|row| match (row, code) {
                    (Some(rc), Some(target)) => *rc == target,
                    _ => false,
                })
                .collect()
        }
        _ => {
            let n = col.len();
            (0..n)
                .map(|i| {
                    let v = col.get(i);
                    if v.is_null() || value.is_null() {
                        false
                    } else {
                        v.total_cmp(value) == std::cmp::Ordering::Equal
                    }
                })
                .collect()
        }
    }
}

fn eval_range(col: &Column, low: Option<&Value>, high: Option<&Value>) -> Vec<bool> {
    let lo = low.and_then(|v| v.as_f64());
    let hi = high.and_then(|v| v.as_f64());
    col.to_f64_vec()
        .into_iter()
        .map(|v| match v {
            None => false,
            Some(x) => {
                let ge = lo.map(|l| x >= l).unwrap_or(true);
                let le = hi.map(|h| x <= h).unwrap_or(true);
                ge && le
            }
        })
        .collect()
}

/// Write `value` as a SQL constant, injectively across both content and
/// type. Strings are quoted with standard SQL escaping — every quote inside
/// the literal is doubled. Unescaped literals made two structurally
/// different predicates render identical SQL (a constant embedding
/// `' AND x = '` read as a two-leaf conjunction), which collided feature
/// names downstream. Backslashes and control characters have no meaning
/// inside a standard SQL literal and pass through verbatim. Non-string
/// values render bare (quoting them would collide `Int(7)` with `Str("7")`),
/// and a NULL constant renders as the keyword.
fn write_sql_literal(f: &mut fmt::Formatter<'_>, value: &Value) -> fmt::Result {
    match value {
        Value::Str(s) => {
            write!(f, "'")?;
            let mut rest = s.as_str();
            while let Some(i) = rest.find('\'') {
                write!(f, "{}''", &rest[..i])?;
                rest = &rest[i + 1..];
            }
            write!(f, "{rest}'")
        }
        // An equality against NULL never matches any row; render the SQL
        // keyword rather than an empty (ambiguous) literal.
        Value::Null => write!(f, "NULL"),
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for Predicate {
    /// Render as a SQL-like `WHERE` fragment; used when describing generated queries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Eq { column, value } => {
                write!(f, "{column} = ")?;
                write_sql_literal(f, value)
            }
            Predicate::Range { column, low, high } => match (low, high) {
                (Some(l), Some(h)) => write!(f, "{column} BETWEEN {l} AND {h}"),
                (Some(l), None) => write!(f, "{column} >= {l}"),
                (None, Some(h)) => write!(f, "{column} <= {h}"),
                (None, None) => write!(f, "{column} IS NOT NULL"),
            },
            Predicate::And(preds) => {
                let parts: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", parts.join(" AND "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn logs() -> Table {
        let mut t = Table::new("logs");
        t.add_column(
            "dept",
            Column::from_opt_strs(&[Some("E"), Some("H"), Some("E"), None]),
        )
        .unwrap();
        t.add_column(
            "price",
            Column::from_opt_f64s(&[Some(10.0), Some(20.0), None, Some(5.0)]),
        )
        .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400]))
            .unwrap();
        t
    }

    #[test]
    fn eq_on_categorical_skips_nulls() {
        let t = logs();
        let mask = Predicate::eq("dept", "E").evaluate(&t).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn eq_on_unknown_value_matches_nothing() {
        let t = logs();
        let mask = Predicate::eq("dept", "Z").evaluate(&t).unwrap();
        assert_eq!(mask, vec![false; 4]);
    }

    #[test]
    fn range_two_sided_and_one_sided() {
        let t = logs();
        let mask = Predicate::between("price", 6.0, 25.0).evaluate(&t).unwrap();
        assert_eq!(mask, vec![true, true, false, false]);

        let mask = Predicate::ge("ts", 250).evaluate(&t).unwrap();
        assert_eq!(mask, vec![false, false, true, true]);

        let mask = Predicate::le("ts", 150).evaluate(&t).unwrap();
        assert_eq!(mask, vec![true, false, false, false]);
    }

    #[test]
    fn unbounded_range_drops_only_nulls() {
        let t = logs();
        let mask = Predicate::range("price", None, None).evaluate(&t).unwrap();
        assert_eq!(mask, vec![true, true, false, true]);
    }

    #[test]
    fn and_combines_masks() {
        let t = logs();
        let p = Predicate::and(vec![Predicate::eq("dept", "E"), Predicate::le("ts", 150)]);
        let mask = p.evaluate(&t).unwrap();
        assert_eq!(mask, vec![true, false, false, false]);
    }

    #[test]
    fn and_flattens_and_simplifies() {
        let p = Predicate::and(vec![Predicate::True, Predicate::eq("a", 1i64)]);
        assert!(matches!(p, Predicate::Eq { .. }));
        let p = Predicate::and(vec![]);
        assert!(matches!(p, Predicate::True));
        let nested = Predicate::and(vec![
            Predicate::And(vec![Predicate::eq("a", 1i64), Predicate::eq("b", 2i64)]),
            Predicate::eq("c", 3i64),
        ]);
        match nested {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn columns_are_deduplicated() {
        let p = Predicate::and(vec![
            Predicate::eq("dept", "E"),
            Predicate::ge("ts", 1i64),
            Predicate::le("ts", 9i64),
        ]);
        assert_eq!(p.columns(), vec!["dept", "ts"]);
    }

    #[test]
    fn selectivity_fraction() {
        let t = logs();
        let s = Predicate::eq("dept", "E").selectivity(&t).unwrap();
        assert!((s - 0.5).abs() < 1e-9);
        assert_eq!(
            Predicate::True.selectivity(&Table::new("empty")).unwrap(),
            0.0
        );
    }

    #[test]
    fn display_formats_sql_like() {
        let p = Predicate::and(vec![
            Predicate::eq("dept", "E"),
            Predicate::between("ts", 1i64, 2i64),
        ]);
        assert_eq!(p.to_string(), "dept = 'E' AND ts BETWEEN 1 AND 2");
        assert_eq!(Predicate::ge("x", 3i64).to_string(), "x >= 3");
        assert_eq!(Predicate::True.to_string(), "TRUE");
    }

    #[test]
    fn missing_column_errors() {
        let t = logs();
        assert!(Predicate::eq("nope", "E").evaluate(&t).is_err());
    }

    /// Quotes inside string constants are doubled, SQL-style. A literal
    /// embedding `' AND x = '` must NOT render like a two-leaf conjunction
    /// (unescaped literals collided exactly that way).
    #[test]
    fn display_escapes_quotes_in_string_literals() {
        assert_eq!(
            Predicate::eq("dept", "E'ats").to_string(),
            "dept = 'E''ats'"
        );
        assert_eq!(Predicate::eq("dept", "''").to_string(), "dept = ''''''");
        let tricky = Predicate::eq("dept", "E' AND mid = 'm1");
        let conjunction =
            Predicate::and(vec![Predicate::eq("dept", "E"), Predicate::eq("mid", "m1")]);
        assert_eq!(tricky.to_string(), "dept = 'E'' AND mid = ''m1'");
        assert_ne!(
            tricky.to_string(),
            conjunction.to_string(),
            "escaping must make structurally different predicates render differently"
        );
    }

    /// Backslashes and control characters have no meaning inside a standard
    /// SQL string literal: they pass through verbatim (only quotes are
    /// doubled), so no two distinct constants can render the same literal.
    #[test]
    fn display_passes_backslashes_and_newlines_through() {
        assert_eq!(
            Predicate::eq("dept", r"a\'b").to_string(),
            r"dept = 'a\''b'"
        );
        assert_eq!(
            Predicate::eq("dept", "line1\nline2").to_string(),
            "dept = 'line1\nline2'"
        );
        assert_eq!(Predicate::eq("dept", r"a\nb").to_string(), r"dept = 'a\nb'");
        // A backslash before the closing quote must not "escape" it: the
        // doubled-quote convention keeps the literal unambiguous.
        assert_ne!(
            Predicate::eq("dept", r"a\").to_string(),
            Predicate::eq("dept", "a").to_string()
        );
        // Distinct constants that differ only in quotes/backslashes render
        // distinct SQL.
        let variants = [r"a'b", r"a\'b", r"a''b", "a\\b", "a\nb", "ab"];
        for (i, a) in variants.iter().enumerate() {
            for b in variants.iter().skip(i + 1) {
                assert_ne!(
                    Predicate::eq("c", *a).to_string(),
                    Predicate::eq("c", *b).to_string(),
                    "{a:?} and {b:?} must not collide"
                );
            }
        }
    }

    /// Non-string equality constants render bare: quoting them would make
    /// `Int(7)` and `Str("7")` (or `Bool(true)` and `Str("true")`) — which
    /// match different rows — render identical SQL and collide downstream
    /// feature names.
    #[test]
    fn display_is_injective_across_constant_types() {
        assert_eq!(Predicate::eq("n", 7i64).to_string(), "n = 7");
        assert_eq!(
            Predicate::eq("b", Value::Bool(true)).to_string(),
            "b = true"
        );
        assert_eq!(
            Predicate::eq("n", Value::Null).to_string(),
            "n = NULL",
            "a NULL constant must not render as an empty string literal"
        );
        assert_ne!(
            Predicate::eq("n", 7i64).to_string(),
            Predicate::eq("n", "7").to_string()
        );
        assert_ne!(
            Predicate::eq("b", Value::Bool(true)).to_string(),
            Predicate::eq("b", "true").to_string()
        );
        assert_ne!(
            Predicate::eq("n", Value::Null).to_string(),
            Predicate::eq("n", "NULL").to_string()
        );
    }
}
