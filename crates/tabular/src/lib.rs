//! # feataug-tabular
//!
//! An in-memory columnar table engine providing exactly the relational operators that
//! predicate-aware feature augmentation needs:
//!
//! * typed, nullable columns ([`Column`]) with dictionary-encoded categoricals,
//! * schemas and tables ([`Schema`], [`Table`]),
//! * predicate evaluation ([`Predicate`]) — equality predicates on categorical columns and
//!   (one- or two-sided) range predicates on numeric / datetime columns,
//! * group-by aggregation ([`groupby::group_by_aggregate`]) with the fifteen aggregation
//!   functions used by the FeatAug paper ([`AggFunc`]), plus compiled streaming / sorted-run /
//!   frequency kernels for them ([`kernels`]) that query engines drive incrementally,
//! * left joins ([`join::left_join`]) to attach generated features to a training table,
//! * a small CSV reader/writer for interoperability.
//!
//! The engine deliberately trades generality for clarity: every operator is implemented directly
//! over column vectors so that the feature-search algorithms in the `feataug` crate exercise a
//! realistic materialise-and-evaluate code path without requiring an external database.
//!
//! ## Quick example
//!
//! ```
//! use feataug_tabular::{Table, Column, AggFunc, Predicate, groupby::group_by_aggregate};
//!
//! let mut logs = Table::new("user_logs");
//! logs.add_column("cname", Column::from_strs(&["a", "a", "b", "b", "b"])).unwrap();
//! logs.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 5.0, 15.0, 40.0])).unwrap();
//! logs.add_column("department", Column::from_strs(&["E", "H", "E", "E", "H"])).unwrap();
//!
//! // SELECT cname, AVG(pprice) FROM logs WHERE department = 'E' GROUP BY cname
//! let filtered = logs.filter(&Predicate::eq("department", "E")).unwrap();
//! let feats = group_by_aggregate(&filtered, &["cname"], AggFunc::Avg, "pprice", "feature").unwrap();
//! assert_eq!(feats.num_rows(), 2);
//! ```

pub mod aggregate;
pub mod cancel;
pub mod column;
pub mod csv;
pub mod error;
pub mod groupby;
pub mod join;
pub mod kernels;
pub mod predicate;
pub mod schema;
pub mod selection;
pub mod table;
pub mod value;

pub use aggregate::AggFunc;
pub use cancel::{CancelToken, Cancelled};
pub use column::Column;
pub use error::TabularError;
pub use predicate::Predicate;
pub use schema::{DataType, Field, Schema};
pub use selection::SelectionMask;
pub use table::Table;
pub use value::Value;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TabularError>;
