//! The fifteen aggregation functions used by FeatAug's query templates (paper Table II):
//! `SUM, MIN, MAX, COUNT, AVG, COUNT DISTINCT, VAR, VAR_SAMPLE, STD, STD_SAMPLE, ENTROPY,
//! KURTOSIS, MODE, MAD, MEDIAN`.
//!
//! Each function consumes the non-null numeric values of the aggregated column within one group
//! (categorical columns contribute their dictionary codes, which is sufficient for the
//! frequency-based functions `COUNT`, `COUNT DISTINCT`, `MODE` and `ENTROPY`).

use std::collections::HashMap;

/// An aggregation function applied to the values of one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of non-null values.
    Count,
    /// Arithmetic mean.
    Avg,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Population variance.
    Var,
    /// Sample variance (n − 1 denominator).
    VarSample,
    /// Population standard deviation.
    Std,
    /// Sample standard deviation.
    StdSample,
    /// Shannon entropy (nats) of the empirical value distribution.
    Entropy,
    /// Excess kurtosis of the value distribution.
    Kurtosis,
    /// Most frequent value (ties broken by smallest value).
    Mode,
    /// Median absolute deviation from the median.
    Mad,
    /// Median value.
    Median,
}

impl AggFunc {
    /// Every aggregation function, in the order the paper lists them (Table II).
    pub fn all() -> &'static [AggFunc] {
        use AggFunc::*;
        &[
            Sum,
            Min,
            Max,
            Count,
            Avg,
            CountDistinct,
            Var,
            VarSample,
            Std,
            StdSample,
            Entropy,
            Kurtosis,
            Mode,
            Mad,
            Median,
        ]
    }

    /// A smaller set of cheap functions, handy for quick examples and unit tests.
    pub fn basic() -> &'static [AggFunc] {
        use AggFunc::*;
        &[Sum, Min, Max, Count, Avg]
    }

    /// SQL-style name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::CountDistinct => "COUNT_DISTINCT",
            AggFunc::Var => "VAR",
            AggFunc::VarSample => "VAR_SAMPLE",
            AggFunc::Std => "STD",
            AggFunc::StdSample => "STD_SAMPLE",
            AggFunc::Entropy => "ENTROPY",
            AggFunc::Kurtosis => "KURTOSIS",
            AggFunc::Mode => "MODE",
            AggFunc::Mad => "MAD",
            AggFunc::Median => "MEDIAN",
        }
    }

    /// Parse an [`AggFunc`] from its SQL-style name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        let upper = name.to_ascii_uppercase();
        AggFunc::all().iter().copied().find(|f| f.name() == upper)
    }

    /// Apply the function to the non-null values of one group.
    ///
    /// Returns `None` (SQL NULL) when the group is empty, except for `COUNT` and
    /// `COUNT DISTINCT`, which return 0.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        let n = values.len();
        match self {
            AggFunc::Count => return Some(n as f64),
            AggFunc::CountDistinct => return Some(count_distinct(values)),
            _ => {}
        }
        if n == 0 {
            return None;
        }
        match self {
            AggFunc::Sum => Some(values.iter().sum()),
            AggFunc::Min => Some(values.iter().copied().fold(f64::INFINITY, f64::min)),
            AggFunc::Max => Some(values.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            AggFunc::Avg => Some(values.iter().sum::<f64>() / n as f64),
            AggFunc::Var => Some(variance(values, 0)),
            AggFunc::VarSample => {
                if n < 2 {
                    Some(0.0)
                } else {
                    Some(variance(values, 1))
                }
            }
            AggFunc::Std => Some(variance(values, 0).sqrt()),
            AggFunc::StdSample => {
                if n < 2 {
                    Some(0.0)
                } else {
                    Some(variance(values, 1).sqrt())
                }
            }
            AggFunc::Entropy => Some(entropy(values)),
            AggFunc::Kurtosis => Some(kurtosis(values)),
            AggFunc::Mode => Some(mode(values)),
            AggFunc::Mad => Some(mad(values)),
            AggFunc::Median => Some(median(values)),
            AggFunc::Count | AggFunc::CountDistinct => unreachable!("handled above"),
        }
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn count_distinct(values: &[f64]) -> f64 {
    let mut bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    bits.sort_unstable();
    bits.dedup();
    bits.len() as f64
}

fn variance(values: &[f64], ddof: usize) -> f64 {
    let n = values.len();
    if n <= ddof {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    ss / (n - ddof) as f64
}

/// Shannon entropy (natural log) of the empirical distribution of exact values.
fn entropy(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.to_bits()).or_insert(0) += 1;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Excess kurtosis (population definition, Fisher): E[(x-μ)^4]/σ^4 − 3. Zero for degenerate
/// distributions (σ = 0).
fn kurtosis(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var <= 1e-300 {
        return 0.0;
    }
    let m4 = values.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / n;
    m4 / (var * var) - 3.0
}

/// Most frequent value; ties are broken towards the smallest value to keep the result
/// deterministic.
fn mode(values: &[f64]) -> f64 {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.to_bits()).or_insert(0) += 1;
    }
    let mut best_val = f64::INFINITY;
    let mut best_count = 0usize;
    for (&bits, &count) in &counts {
        let v = f64::from_bits(bits);
        if count > best_count || (count == best_count && v < best_val) {
            best_count = count;
            best_val = v;
        }
    }
    best_val
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median.
fn mad(values: &[f64]) -> f64 {
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn sum_min_max_avg_count() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((AggFunc::Sum.apply(&v).unwrap() - 10.0).abs() < EPS);
        assert!((AggFunc::Min.apply(&v).unwrap() - 1.0).abs() < EPS);
        assert!((AggFunc::Max.apply(&v).unwrap() - 4.0).abs() < EPS);
        assert!((AggFunc::Avg.apply(&v).unwrap() - 2.5).abs() < EPS);
        assert!((AggFunc::Count.apply(&v).unwrap() - 4.0).abs() < EPS);
    }

    #[test]
    fn empty_group_semantics() {
        assert_eq!(AggFunc::Sum.apply(&[]), None);
        assert_eq!(AggFunc::Median.apply(&[]), None);
        assert_eq!(AggFunc::Count.apply(&[]), Some(0.0));
        assert_eq!(AggFunc::CountDistinct.apply(&[]), Some(0.0));
    }

    #[test]
    fn count_distinct_dedups() {
        let v = [1.0, 1.0, 2.0, 2.0, 2.0, 5.0];
        assert!((AggFunc::CountDistinct.apply(&v).unwrap() - 3.0).abs() < EPS);
    }

    #[test]
    fn variance_and_std() {
        // Values 2,4,4,4,5,5,7,9: population variance 4, std 2 (classic example).
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((AggFunc::Var.apply(&v).unwrap() - 4.0).abs() < EPS);
        assert!((AggFunc::Std.apply(&v).unwrap() - 2.0).abs() < EPS);
        // Sample variance = 32/7.
        assert!((AggFunc::VarSample.apply(&v).unwrap() - 32.0 / 7.0).abs() < EPS);
        assert!((AggFunc::StdSample.apply(&v).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < EPS);
        // Single element: sample variance defined as 0 here.
        assert_eq!(AggFunc::VarSample.apply(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn entropy_uniform_and_degenerate() {
        // Uniform over 4 distinct values: ln(4).
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((AggFunc::Entropy.apply(&v).unwrap() - 4.0f64.ln()).abs() < EPS);
        // Degenerate distribution: entropy 0.
        let v = [7.0, 7.0, 7.0];
        assert!(AggFunc::Entropy.apply(&v).unwrap().abs() < EPS);
    }

    #[test]
    fn kurtosis_known_values() {
        // Symmetric two-point distribution {-1, 1}: kurtosis = 1, excess = -2.
        let v = [-1.0, 1.0, -1.0, 1.0];
        assert!((AggFunc::Kurtosis.apply(&v).unwrap() - (-2.0)).abs() < EPS);
        // Constant values: defined as 0.
        assert_eq!(AggFunc::Kurtosis.apply(&[3.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn mode_breaks_ties_deterministically() {
        assert_eq!(AggFunc::Mode.apply(&[5.0, 5.0, 1.0]).unwrap(), 5.0);
        // Tie between 1 and 2 -> smallest wins.
        assert_eq!(AggFunc::Mode.apply(&[2.0, 1.0, 2.0, 1.0]).unwrap(), 1.0);
    }

    #[test]
    fn median_and_mad() {
        assert!((AggFunc::Median.apply(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < EPS);
        assert!((AggFunc::Median.apply(&[4.0, 1.0, 2.0, 3.0]).unwrap() - 2.5).abs() < EPS);
        // MAD of [1, 2, 3, 4, 9]: median 3, deviations [2,1,0,1,6], MAD = 1.
        assert!((AggFunc::Mad.apply(&[1.0, 2.0, 3.0, 4.0, 9.0]).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn parse_and_name_roundtrip() {
        for f in AggFunc::all() {
            assert_eq!(AggFunc::parse(f.name()), Some(*f));
            assert_eq!(AggFunc::parse(&f.name().to_lowercase()), Some(*f));
        }
        assert_eq!(AggFunc::parse("NOPE"), None);
        assert_eq!(AggFunc::all().len(), 15);
        assert_eq!(AggFunc::basic().len(), 5);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AggFunc::CountDistinct.to_string(), "COUNT_DISTINCT");
    }
}
