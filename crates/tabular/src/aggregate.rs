//! The fifteen aggregation functions used by FeatAug's query templates (paper Table II):
//! `SUM, MIN, MAX, COUNT, AVG, COUNT DISTINCT, VAR, VAR_SAMPLE, STD, STD_SAMPLE, ENTROPY,
//! KURTOSIS, MODE, MAD, MEDIAN`.
//!
//! Each function consumes the non-null numeric values of the aggregated column within one group
//! (categorical columns contribute their dictionary codes, which is sufficient for the
//! frequency-based functions `COUNT`, `COUNT DISTINCT`, `MODE` and `ENTROPY`).
//!
//! ## Float semantics (±0.0 and NaN)
//!
//! Aggregation is defined over *values*, not bit patterns, so every function follows one set of
//! rules:
//!
//! * **Frequency-based functions** (`COUNT DISTINCT`, `MODE`, `ENTROPY`) key values by their
//!   [`canonical`] form: `-0.0` and `0.0` are the same value, and every NaN payload is the single
//!   value NaN. Distinct values are visited in ascending [`f64::total_cmp`] order of their
//!   canonical form (NaN sorts last), which makes `ENTROPY`'s floating-point sum and `MODE`'s
//!   smallest-value tie-break deterministic regardless of how the group was assembled.
//! * **`MIN` / `MAX`** ignore NaN values (like `f64::min` / `f64::max` on a mixed group); a group
//!   whose non-null values are *all* NaN yields NULL, exactly like an all-NULL group — never the
//!   `±INFINITY` fold sentinels.
//! * **Order statistics** (`MEDIAN`, `MAD`) sort raw values by [`f64::total_cmp`] (so `-0.0`
//!   orders before `0.0` and NaNs sort by sign and payload) and may return `-0.0` verbatim.
//! * **Any aggregate whose result is NaN returns the canonical NaN** ([`canonical_nan`]). Which
//!   NaN bit pattern arithmetic produces is not specified by IEEE 754 and observably differs
//!   between differently-compiled but mathematically identical accumulation loops, so the sign
//!   and payload of a NaN result carry no information; pinning them makes "bit-identical"
//!   meaningful across the reference and the kernel paths.
//!
//! [`AggFunc::apply`] is the reference implementation — the compiled kernels in
//! [`crate::kernels`] are property-tested bit-identical to it.

/// The canonical form of a value for frequency keying: `-0.0` maps to `0.0` and every NaN
/// payload maps to the one canonical (positive, quiet) NaN. All other values map to themselves.
#[inline]
pub fn canonical(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Replace any NaN with the canonical NaN, leaving every other value (including `-0.0`) alone.
/// Applied to aggregate *outputs*: IEEE 754 leaves the sign/payload of an arithmetic NaN
/// unspecified, so two equivalent accumulation loops can legally disagree on those bits.
#[inline]
pub fn canonical_nan(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else {
        v
    }
}

/// An aggregation function applied to the values of one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of non-null values.
    Count,
    /// Arithmetic mean.
    Avg,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Population variance.
    Var,
    /// Sample variance (n − 1 denominator).
    VarSample,
    /// Population standard deviation.
    Std,
    /// Sample standard deviation.
    StdSample,
    /// Shannon entropy (nats) of the empirical value distribution.
    Entropy,
    /// Excess kurtosis of the value distribution.
    Kurtosis,
    /// Most frequent canonical value (ties broken by smallest value in total order).
    Mode,
    /// Median absolute deviation from the median.
    Mad,
    /// Median value.
    Median,
}

impl AggFunc {
    /// Every aggregation function, in the order the paper lists them (Table II).
    pub fn all() -> &'static [AggFunc] {
        use AggFunc::*;
        &[
            Sum,
            Min,
            Max,
            Count,
            Avg,
            CountDistinct,
            Var,
            VarSample,
            Std,
            StdSample,
            Entropy,
            Kurtosis,
            Mode,
            Mad,
            Median,
        ]
    }

    /// A smaller set of cheap functions, handy for quick examples and unit tests.
    pub fn basic() -> &'static [AggFunc] {
        use AggFunc::*;
        &[Sum, Min, Max, Count, Avg]
    }

    /// SQL-style name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::CountDistinct => "COUNT_DISTINCT",
            AggFunc::Var => "VAR",
            AggFunc::VarSample => "VAR_SAMPLE",
            AggFunc::Std => "STD",
            AggFunc::StdSample => "STD_SAMPLE",
            AggFunc::Entropy => "ENTROPY",
            AggFunc::Kurtosis => "KURTOSIS",
            AggFunc::Mode => "MODE",
            AggFunc::Mad => "MAD",
            AggFunc::Median => "MEDIAN",
        }
    }

    /// Parse an [`AggFunc`] from its SQL-style name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        let upper = name.to_ascii_uppercase();
        AggFunc::all().iter().copied().find(|f| f.name() == upper)
    }

    /// Apply the function to the non-null values of one group.
    ///
    /// Returns `None` (SQL NULL) when the group is empty, except for `COUNT` and
    /// `COUNT DISTINCT`, which return 0.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        let n = values.len();
        match self {
            AggFunc::Count => return Some(n as f64),
            AggFunc::CountDistinct => return Some(count_distinct(values)),
            _ => {}
        }
        if n == 0 {
            return None;
        }
        let value = match self {
            AggFunc::Sum => Some(values.iter().sum()),
            AggFunc::Min => extreme(values, f64::min, f64::INFINITY),
            AggFunc::Max => extreme(values, f64::max, f64::NEG_INFINITY),
            AggFunc::Avg => Some(values.iter().sum::<f64>() / n as f64),
            AggFunc::Var => Some(variance(values, 0)),
            AggFunc::VarSample => {
                if n < 2 {
                    Some(0.0)
                } else {
                    Some(variance(values, 1))
                }
            }
            AggFunc::Std => Some(variance(values, 0).sqrt()),
            AggFunc::StdSample => {
                if n < 2 {
                    Some(0.0)
                } else {
                    Some(variance(values, 1).sqrt())
                }
            }
            AggFunc::Entropy => Some(entropy(values)),
            AggFunc::Kurtosis => Some(kurtosis(values)),
            AggFunc::Mode => Some(mode(values)),
            AggFunc::Mad => Some(mad(values)),
            AggFunc::Median => Some(median(values)),
            AggFunc::Count | AggFunc::CountDistinct => unreachable!("handled above"),
        };
        value.map(canonical_nan)
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// `MIN` / `MAX`: fold `op` over the non-NaN values (in row order, so the accumulation is
/// bit-reproducible); NULL when every value is NaN.
fn extreme(values: &[f64], op: fn(f64, f64) -> f64, init: f64) -> Option<f64> {
    let mut acc = init;
    let mut seen = false;
    for &v in values {
        if !v.is_nan() {
            seen = true;
            acc = op(acc, v);
        }
    }
    seen.then_some(acc)
}

fn count_distinct(values: &[f64]) -> f64 {
    let mut bits: Vec<u64> = values.iter().map(|v| canonical(*v).to_bits()).collect();
    bits.sort_unstable();
    bits.dedup();
    bits.len() as f64
}

/// The canonical forms of `values`, sorted ascending by [`f64::total_cmp`] (canonical NaN sorts
/// last). Runs of bit-equal elements are the distinct-value frequency classes.
fn sorted_canonical(values: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().map(|v| canonical(*v)).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted
}

/// Visit each run of bit-equal elements of an already-sorted slice as `(value, count)`.
fn for_each_run(sorted: &[f64], mut f: impl FnMut(f64, usize)) {
    let mut i = 0;
    while i < sorted.len() {
        let bits = sorted[i].to_bits();
        let start = i;
        while i < sorted.len() && sorted[i].to_bits() == bits {
            i += 1;
        }
        f(sorted[start], i - start);
    }
}

fn variance(values: &[f64], ddof: usize) -> f64 {
    let n = values.len();
    if n <= ddof {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    ss / (n - ddof) as f64
}

/// Shannon entropy (natural log) of the empirical distribution of canonical values, summed in
/// ascending value order (deterministic floating-point accumulation).
fn entropy(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mut total = 0.0;
    for_each_run(&sorted_canonical(values), |_, count| {
        let p = count as f64 / n;
        total += -p * p.ln();
    });
    total
}

/// Excess kurtosis (population definition, Fisher): E[(x-μ)^4]/σ^4 − 3. Zero for degenerate
/// distributions (σ = 0).
fn kurtosis(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var <= 1e-300 {
        return 0.0;
    }
    let m4 = values.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / n;
    m4 / (var * var) - 3.0
}

/// Most frequent canonical value; ties are broken towards the smallest value in
/// [`f64::total_cmp`] order (NaN counts as the largest), keeping the result deterministic.
fn mode(values: &[f64]) -> f64 {
    let mut best_val = f64::NAN;
    let mut best_count = 0usize;
    for_each_run(&sorted_canonical(values), |v, count| {
        // Runs arrive in ascending order, so a strict `>` keeps the smallest max-count value.
        if count > best_count {
            best_count = count;
            best_val = v;
        }
    });
    best_val
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median.
fn mad(values: &[f64]) -> f64 {
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn sum_min_max_avg_count() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((AggFunc::Sum.apply(&v).unwrap() - 10.0).abs() < EPS);
        assert!((AggFunc::Min.apply(&v).unwrap() - 1.0).abs() < EPS);
        assert!((AggFunc::Max.apply(&v).unwrap() - 4.0).abs() < EPS);
        assert!((AggFunc::Avg.apply(&v).unwrap() - 2.5).abs() < EPS);
        assert!((AggFunc::Count.apply(&v).unwrap() - 4.0).abs() < EPS);
    }

    #[test]
    fn empty_group_semantics() {
        assert_eq!(AggFunc::Sum.apply(&[]), None);
        assert_eq!(AggFunc::Median.apply(&[]), None);
        assert_eq!(AggFunc::Count.apply(&[]), Some(0.0));
        assert_eq!(AggFunc::CountDistinct.apply(&[]), Some(0.0));
    }

    #[test]
    fn count_distinct_dedups() {
        let v = [1.0, 1.0, 2.0, 2.0, 2.0, 5.0];
        assert!((AggFunc::CountDistinct.apply(&v).unwrap() - 3.0).abs() < EPS);
    }

    #[test]
    fn variance_and_std() {
        // Values 2,4,4,4,5,5,7,9: population variance 4, std 2 (classic example).
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((AggFunc::Var.apply(&v).unwrap() - 4.0).abs() < EPS);
        assert!((AggFunc::Std.apply(&v).unwrap() - 2.0).abs() < EPS);
        // Sample variance = 32/7.
        assert!((AggFunc::VarSample.apply(&v).unwrap() - 32.0 / 7.0).abs() < EPS);
        assert!((AggFunc::StdSample.apply(&v).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < EPS);
        // Single element: sample variance defined as 0 here.
        assert_eq!(AggFunc::VarSample.apply(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn entropy_uniform_and_degenerate() {
        // Uniform over 4 distinct values: ln(4).
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((AggFunc::Entropy.apply(&v).unwrap() - 4.0f64.ln()).abs() < EPS);
        // Degenerate distribution: entropy 0.
        let v = [7.0, 7.0, 7.0];
        assert!(AggFunc::Entropy.apply(&v).unwrap().abs() < EPS);
    }

    #[test]
    fn kurtosis_known_values() {
        // Symmetric two-point distribution {-1, 1}: kurtosis = 1, excess = -2.
        let v = [-1.0, 1.0, -1.0, 1.0];
        assert!((AggFunc::Kurtosis.apply(&v).unwrap() - (-2.0)).abs() < EPS);
        // Constant values: defined as 0.
        assert_eq!(AggFunc::Kurtosis.apply(&[3.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn mode_breaks_ties_deterministically() {
        assert_eq!(AggFunc::Mode.apply(&[5.0, 5.0, 1.0]).unwrap(), 5.0);
        // Tie between 1 and 2 -> smallest wins.
        assert_eq!(AggFunc::Mode.apply(&[2.0, 1.0, 2.0, 1.0]).unwrap(), 1.0);
    }

    #[test]
    fn median_and_mad() {
        assert!((AggFunc::Median.apply(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < EPS);
        assert!((AggFunc::Median.apply(&[4.0, 1.0, 2.0, 3.0]).unwrap() - 2.5).abs() < EPS);
        // MAD of [1, 2, 3, 4, 9]: median 3, deviations [2,1,0,1,6], MAD = 1.
        assert!((AggFunc::Mad.apply(&[1.0, 2.0, 3.0, 4.0, 9.0]).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn parse_and_name_roundtrip() {
        for f in AggFunc::all() {
            assert_eq!(AggFunc::parse(f.name()), Some(*f));
            assert_eq!(AggFunc::parse(&f.name().to_lowercase()), Some(*f));
        }
        assert_eq!(AggFunc::parse("NOPE"), None);
        assert_eq!(AggFunc::all().len(), 15);
        assert_eq!(AggFunc::basic().len(), 5);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AggFunc::CountDistinct.to_string(), "COUNT_DISTINCT");
    }

    /// Regression: `0.0` and `-0.0` are one value, and every NaN payload is one value — raw
    /// bit-keying used to count them apart and split MODE/ENTROPY frequency mass.
    #[test]
    fn frequency_functions_canonicalize_signed_zero_and_nan() {
        let zeros = [0.0, -0.0, -0.0];
        assert_eq!(AggFunc::CountDistinct.apply(&zeros), Some(1.0));
        assert_eq!(AggFunc::Entropy.apply(&zeros), Some(0.0));
        // MODE reports the canonical (positive) zero.
        assert_eq!(
            AggFunc::Mode.apply(&zeros).unwrap().to_bits(),
            0.0f64.to_bits()
        );

        let other_nan = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other_nan.is_nan());
        let nans = [f64::NAN, other_nan, -f64::NAN];
        assert_eq!(AggFunc::CountDistinct.apply(&nans), Some(1.0));
        assert_eq!(AggFunc::Entropy.apply(&nans), Some(0.0));
        assert!(AggFunc::Mode.apply(&nans).unwrap().is_nan());

        let mixed = [0.0, -0.0, 5.0, f64::NAN, other_nan];
        assert_eq!(AggFunc::CountDistinct.apply(&mixed), Some(3.0));
    }

    /// In a frequency tie, NaN counts as the *largest* value, so any real value wins.
    #[test]
    fn mode_tie_with_nan_is_deterministic() {
        assert_eq!(AggFunc::Mode.apply(&[f64::NAN, 1.0]), Some(1.0));
        assert_eq!(AggFunc::Mode.apply(&[1.0, f64::NAN]), Some(1.0));
        assert!(AggFunc::Mode
            .apply(&[f64::NAN, f64::NAN, 1.0])
            .unwrap()
            .is_nan());
        // Negative-payload NaNs belong to the same (largest) class.
        assert_eq!(AggFunc::Mode.apply(&[-f64::NAN, 2.0]), Some(2.0));
    }

    /// Regression: MIN/MAX of an all-NaN group used to leak the `±INFINITY` fold sentinels.
    #[test]
    fn min_max_ignore_nan_and_all_nan_group_is_null() {
        assert_eq!(AggFunc::Min.apply(&[f64::NAN, f64::NAN]), None);
        assert_eq!(AggFunc::Max.apply(&[f64::NAN]), None);
        // NaNs are skipped when real values exist.
        assert_eq!(AggFunc::Min.apply(&[f64::NAN, 3.0, 1.0]), Some(1.0));
        assert_eq!(AggFunc::Max.apply(&[2.0, f64::NAN, 7.0]), Some(7.0));
        // Genuine infinities still flow through.
        assert_eq!(AggFunc::Min.apply(&[f64::INFINITY]), Some(f64::INFINITY));
        assert_eq!(
            AggFunc::Max.apply(&[f64::NEG_INFINITY]),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn canonical_maps_zero_signs_and_nan_payloads() {
        assert_eq!(canonical(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canonical(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canonical(-f64::NAN).to_bits(), f64::NAN.to_bits());
        assert_eq!(canonical(1.5), 1.5);
        assert_eq!(canonical(-1.5), -1.5);
    }
}
