//! Reusable row-selection bitmasks.
//!
//! Candidate-query evaluation filters the same relevant table thousands of
//! times per search. Materialising a filtered [`Table`] per candidate (clone +
//! `take`) dominates the cost; a [`SelectionMask`] instead records the
//! predicate outcome as one bit per row, can be reused across evaluations
//! without reallocating, and is cheap to intersect for conjunctions.
//!
//! The leaf fillers ([`fill_eq`], [`fill_range`], [`fill_range_view`]) mirror
//! [`Predicate::evaluate`]'s semantics exactly — same NULL handling, same
//! categorical fast path, same [`crate::value::Value::total_cmp`] fallback —
//! so a mask-driven evaluator produces bit-identical results to the
//! materialise-then-aggregate reference path.

use crate::column::Column;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A bitmask over the rows of a table (one bit per row, packed into words).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionMask {
    bits: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// An empty mask (zero rows).
    pub fn new() -> SelectionMask {
        SelectionMask::default()
    }

    /// A mask of `len` rows, all set to `value`.
    pub fn with_len(len: usize, value: bool) -> SelectionMask {
        let mut m = SelectionMask::new();
        m.reset(len, value);
        m
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `len` rows and set every bit to `value`, reusing the
    /// allocation.
    pub fn reset(&mut self, len: usize, value: bool) {
        self.len = len;
        let words = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        self.bits.clear();
        self.bits.resize(words, fill);
        self.trim_tail();
    }

    /// Zero any bits beyond `len` in the last word (keeps `count_ones` exact).
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The bit for `row`.
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        self.bits[row / 64] >> (row % 64) & 1 == 1
    }

    /// Set the bit for `row`.
    #[inline]
    pub fn set(&mut self, row: usize, value: bool) {
        debug_assert!(row < self.len);
        let word = &mut self.bits[row / 64];
        let bit = 1u64 << (row % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Rebuild the mask as `len` rows where row `i` is set iff `f(i)`.
    /// Builds whole words at a time, avoiding per-bit read-modify-write.
    pub fn fill_from(&mut self, len: usize, mut f: impl FnMut(usize) -> bool) {
        self.len = len;
        self.bits.clear();
        self.bits.reserve(len.div_ceil(64));
        let mut row = 0;
        while row < len {
            let span = (len - row).min(64);
            let mut word = 0u64;
            for b in 0..span {
                if f(row + b) {
                    word |= 1u64 << b;
                }
            }
            self.bits.push(word);
            row += span;
        }
    }

    /// Intersect with another mask of the same length.
    pub fn and_assign(&mut self, other: &SelectionMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst &= *src;
        }
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Visit every selected row index in ascending order, one 64-bit word at
    /// a time: saturated words (the common case for dense selections and
    /// trivial predicates) take a branch-free counted loop instead of paying
    /// per-bit `trailing_zeros` dispatch; sparse words still skip straight to
    /// each set bit.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.bits.iter().enumerate() {
            let base = wi * 64;
            if word == u64::MAX {
                for b in 0..64 {
                    f(base + b);
                }
                continue;
            }
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(base + b);
                w &= w - 1;
            }
        }
    }

    /// The selected row indices, materialised (ascending). Mostly for tests.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        self.for_each_set(|i| out.push(i));
        out
    }
}

/// Fill `mask` with `column = value` semantics (NULL never matches). Identical
/// to the equality leaf of [`Predicate::evaluate`]: dictionary-code comparison
/// for categorical columns, [`Value::total_cmp`] otherwise.
pub fn fill_eq(col: &Column, value: &Value, mask: &mut SelectionMask) {
    match (col, value) {
        (Column::Cat(c), Value::Str(s)) => {
            let target = c.code_of(s);
            let codes = c.codes();
            mask.fill_from(codes.len(), |i| match (codes[i], target) {
                (Some(rc), Some(t)) => rc == t,
                _ => false,
            });
        }
        _ => {
            let n = col.len();
            if value.is_null() {
                mask.reset(n, false);
                return;
            }
            mask.fill_from(n, |i| {
                let v = col.get(i);
                !v.is_null() && v.total_cmp(value) == std::cmp::Ordering::Equal
            });
        }
    }
}

/// Fill `mask` with `low <= view <= high` semantics over a pre-extracted
/// numeric view (NULL rows never match; an absent bound is unbounded).
pub fn fill_range_view(
    view: &[Option<f64>],
    low: Option<f64>,
    high: Option<f64>,
    mask: &mut SelectionMask,
) {
    mask.fill_from(view.len(), |i| match view[i] {
        None => false,
        Some(x) => low.map(|l| x >= l).unwrap_or(true) && high.map(|h| x <= h).unwrap_or(true),
    });
}

/// Fill `mask` with range-predicate semantics against a column. Identical to
/// the range leaf of [`Predicate::evaluate`].
pub fn fill_range(
    col: &Column,
    low: Option<&Value>,
    high: Option<&Value>,
    mask: &mut SelectionMask,
) {
    let lo = low.and_then(|v| v.as_f64());
    let hi = high.and_then(|v| v.as_f64());
    fill_range_view(&col.to_f64_vec(), lo, hi, mask);
}

/// Evaluate `predicate` over every row of `table` into `mask` (resizing it to
/// the table's row count). Equivalent to `predicate.evaluate(table)` without
/// allocating a fresh `Vec<bool>` per call.
pub fn select_into(table: &Table, predicate: &Predicate, mask: &mut SelectionMask) -> Result<()> {
    match predicate {
        Predicate::True => {
            mask.reset(table.num_rows(), true);
            Ok(())
        }
        Predicate::Eq { column, value } => {
            fill_eq(table.column(column)?, value, mask);
            Ok(())
        }
        Predicate::Range { column, low, high } => {
            fill_range(table.column(column)?, low.as_ref(), high.as_ref(), mask);
            Ok(())
        }
        Predicate::And(preds) => {
            mask.reset(table.num_rows(), true);
            let mut scratch = SelectionMask::new();
            for p in preds {
                select_into(table, p, &mut scratch)?;
                mask.and_assign(&scratch);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Masks are the per-worker scratch of the parallel query engine: they
    /// must stay plain data, movable into and shareable across worker
    /// threads. Compile-time check — an interior `Rc`/`RefCell` regression
    /// would fail here before it fails in the engine.
    #[test]
    fn selection_mask_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SelectionMask>();
    }

    fn logs() -> Table {
        let mut t = Table::new("logs");
        t.add_column(
            "dept",
            Column::from_opt_strs(&[Some("E"), Some("H"), Some("E"), None]),
        )
        .unwrap();
        t.add_column(
            "price",
            Column::from_opt_f64s(&[Some(10.0), Some(20.0), None, Some(5.0)]),
        )
        .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400]))
            .unwrap();
        t
    }

    #[test]
    fn mask_bit_operations_and_counts() {
        let mut m = SelectionMask::with_len(130, false);
        assert_eq!(m.len(), 130);
        assert_eq!(m.count_ones(), 0);
        m.set(0, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1));
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.to_indices(), vec![0, 64, 129]);
        m.set(64, false);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn reset_trims_tail_bits() {
        let mut m = SelectionMask::new();
        m.reset(70, true);
        assert_eq!(m.count_ones(), 70);
        m.reset(3, true);
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn fill_from_builds_words() {
        let mut m = SelectionMask::new();
        m.fill_from(200, |i| i % 3 == 0);
        assert_eq!(m.count_ones(), 67);
        assert!(m.get(0) && m.get(3) && m.get(198));
        assert!(!m.get(1));
    }

    /// The saturated-word fast path in `for_each_set` must visit exactly the
    /// same indices, in the same order, as the sparse bit-skipping path —
    /// across full words, partial tails, and mixed densities.
    #[test]
    fn for_each_set_full_word_fast_path_matches_sparse_path() {
        let shapes: Vec<(usize, Box<dyn Fn(usize) -> bool>)> = vec![
            (64, Box::new(|_| true)),                      // exactly one saturated word
            (130, Box::new(|_| true)),                     // saturated words + ragged tail
            (200, Box::new(|i| i < 64 || i % 7 == 0)),     // saturated then sparse
            (320, Box::new(|i| !(128..192).contains(&i))), // hole mid-mask
            (63, Box::new(|_| true)),                      // all-true but below one word
        ];
        for (len, pred) in shapes {
            let mut m = SelectionMask::new();
            m.fill_from(len, &pred);
            let mut visited = Vec::new();
            m.for_each_set(|i| visited.push(i));
            let expected: Vec<usize> = (0..len).filter(|&i| pred(i)).collect();
            assert_eq!(visited, expected, "len {len}");
        }
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = SelectionMask::new();
        a.fill_from(100, |i| i % 2 == 0);
        let mut b = SelectionMask::new();
        b.fill_from(100, |i| i % 3 == 0);
        a.and_assign(&b);
        assert_eq!(
            a.to_indices(),
            (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>()
        );
    }

    /// Every predicate shape must agree with the Vec<bool> reference
    /// evaluator on the same table.
    #[test]
    fn select_into_matches_predicate_evaluate() {
        let t = logs();
        let predicates = vec![
            Predicate::True,
            Predicate::eq("dept", "E"),
            Predicate::eq("dept", "Z"),
            Predicate::between("price", 6.0, 25.0),
            Predicate::ge("ts", 250),
            Predicate::range("price", None, None),
            Predicate::and(vec![Predicate::eq("dept", "E"), Predicate::le("ts", 150)]),
        ];
        let mut mask = SelectionMask::new();
        for p in predicates {
            let reference = p.evaluate(&t).unwrap();
            select_into(&t, &p, &mut mask).unwrap();
            let got: Vec<bool> = (0..t.num_rows()).map(|i| mask.get(i)).collect();
            assert_eq!(got, reference, "predicate {p}");
        }
    }

    #[test]
    fn fill_eq_null_value_matches_nothing() {
        let t = logs();
        let mut mask = SelectionMask::new();
        fill_eq(t.column("price").unwrap(), &Value::Null, &mut mask);
        assert_eq!(mask.count_ones(), 0);
        assert_eq!(mask.len(), 4);
    }

    #[test]
    fn missing_column_errors() {
        let t = logs();
        let mut mask = SelectionMask::new();
        assert!(select_into(&t, &Predicate::eq("nope", "E"), &mut mask).is_err());
    }
}
