//! A small CSV reader / writer.
//!
//! The format is deliberately simple (no quoting of embedded commas or newlines): it exists so
//! that generated datasets and experiment outputs can be inspected and re-loaded, not as a
//! general-purpose CSV implementation. Headers carry the column type as `name:type`, so a table
//! round-trips without separate schema metadata.

use std::fs;
use std::path::Path;

use crate::column::Column;
use crate::error::TabularError;
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Serialise a table to CSV text with `name:type` headers.
pub fn to_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let headers: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.dtype.name()))
        .collect();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        let cells: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .map(|f| {
                table
                    .value(row, &f.name)
                    .expect("schema-consistent")
                    .to_string()
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV text produced by [`to_csv_string`] back into a table.
pub fn from_csv_string(name: &str, text: &str) -> Result<Table> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| TabularError::Csv("empty input".into()))?;

    let mut fields: Vec<(String, DataType)> = Vec::new();
    for part in header.split(',') {
        let (col_name, ty) = part
            .rsplit_once(':')
            .ok_or_else(|| TabularError::Csv(format!("header `{part}` lacks a :type suffix")))?;
        let dtype = match ty {
            "int" => DataType::Int,
            "float" => DataType::Float,
            "bool" => DataType::Bool,
            "cat" => DataType::Categorical,
            "datetime" => DataType::DateTime,
            other => return Err(TabularError::Csv(format!("unknown column type `{other}`"))),
        };
        fields.push((col_name.to_string(), dtype));
    }

    let mut columns: Vec<Column> = fields.iter().map(|(_, d)| Column::empty(*d)).collect();

    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != fields.len() {
            return Err(TabularError::Csv(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                cells.len(),
                fields.len()
            )));
        }
        for ((cell, (col_name, dtype)), column) in cells.iter().zip(&fields).zip(columns.iter_mut())
        {
            let value = parse_cell(cell, *dtype)
                .map_err(|e| TabularError::Csv(format!("column {col_name}: {e}")))?;
            column
                .push(value)
                .map_err(|e| TabularError::Csv(e.to_string()))?;
        }
    }

    let mut table = Table::new(name);
    for ((col_name, _), column) in fields.into_iter().zip(columns) {
        table.add_column(col_name, column)?;
    }
    Ok(table)
}

fn parse_cell(cell: &str, dtype: DataType) -> std::result::Result<Value, String> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("cannot parse `{cell}` as int")),
        DataType::DateTime => cell
            .parse::<i64>()
            .map(Value::DateTime)
            .map_err(|_| format!("cannot parse `{cell}` as datetime")),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("cannot parse `{cell}` as float")),
        DataType::Bool => match cell {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!("cannot parse `{cell}` as bool")),
        },
        DataType::Categorical => Ok(Value::Str(cell.to_string())),
    }
}

/// Write a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, to_csv_string(table)).map_err(|e| TabularError::Csv(e.to_string()))
}

/// Read a table from a CSV file written by [`write_csv`].
pub fn read_csv(name: &str, path: impl AsRef<Path>) -> Result<Table> {
    let text = fs::read_to_string(path).map_err(|e| TabularError::Csv(e.to_string()))?;
    from_csv_string(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t");
        t.add_column("id", Column::from_i64s(&[1, 2, 3])).unwrap();
        t.add_column("grp", Column::from_opt_strs(&[Some("a"), None, Some("b")]))
            .unwrap();
        t.add_column("x", Column::from_opt_f64s(&[Some(1.5), Some(-2.0), None]))
            .unwrap();
        t.add_column("flag", Column::from_bools(&[true, false, true]))
            .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300]))
            .unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_schema_and_values() {
        let t = sample();
        let text = to_csv_string(&t);
        let back = from_csv_string("t", &text).unwrap();
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            for name in t.column_names() {
                assert_eq!(back.value(row, name).unwrap(), t.value(row, name).unwrap());
            }
        }
    }

    #[test]
    fn header_carries_types() {
        let text = to_csv_string(&sample());
        assert!(text.starts_with("id:int,grp:cat,x:float,flag:bool,ts:datetime\n"));
    }

    #[test]
    fn empty_cells_become_null() {
        let text = "a:int,b:cat\n1,\n,x\n";
        let t = from_csv_string("t", text).unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_csv_string("t", "").is_err());
        assert!(from_csv_string("t", "a\n1\n").is_err()); // missing type
        assert!(from_csv_string("t", "a:wat\n1\n").is_err()); // unknown type
        assert!(from_csv_string("t", "a:int\n1,2\n").is_err()); // wrong cell count
        assert!(from_csv_string("t", "a:int\nxyz\n").is_err()); // bad int
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("feataug_tabular_csv_test.csv");
        let t = sample();
        write_csv(&t, &path).unwrap();
        let back = read_csv("t", &path).unwrap();
        assert_eq!(back.num_rows(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
