//! Cooperative cancellation for long-running kernel and gather loops.
//!
//! A [`CancelToken`] couples an explicit cancel flag with an optional deadline instant. Engines
//! thread `Option<&CancelToken>` through their aggregation and gather paths and poll
//! [`CancelToken::is_cancelled`] at cheap checkpoints (every K groups / rows), so a serving tier
//! can preempt work *mid-kernel* instead of waiting for the next batch boundary. Polling is a
//! relaxed atomic load plus (when a deadline is set) one `Instant::now()` — callers pick a
//! checkpoint stride that amortises that cost to noise.
//!
//! The token is deliberately tiny and shareable: a tier hands `&CancelToken` down a call chain
//! synchronously, or wraps it in an `Arc` to cancel from another thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Work was preempted by a [`CancelToken`] before it completed.
///
/// Carried upward as a dedicated error variant so callers can distinguish "the deadline fired"
/// from a genuine evaluation failure and degrade gracefully (e.g. an all-NULL feature row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work cancelled by deadline or explicit cancellation")
    }
}

impl std::error::Error for Cancelled {}

/// An atomic cancel flag plus an optional deadline instant.
///
/// `is_cancelled` reports true once either trips; the flag latches (there is no un-cancel), so
/// checkpoints after the first positive poll stay positive.
#[derive(Debug)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; it cancels only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
        }
    }

    /// A token that trips once `Instant::now()` passes `deadline` (or [`CancelToken::cancel`]
    /// is called, whichever comes first).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// A token from an optional deadline — `None` behaves like [`CancelToken::new`].
    pub fn with_deadline_opt(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline,
        }
    }

    /// Trip the explicit cancel flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// The deadline instant, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the flag is set or the deadline has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch so later polls skip the clock read.
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// `Err(Cancelled)` once cancelled — checkpoint form for `?`-style propagation.
    #[inline]
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.check(), Ok(()));
    }

    #[test]
    fn explicit_cancel_latches() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(Cancelled));
    }

    #[test]
    fn past_deadline_cancels_future_deadline_does_not() {
        let past = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(past.is_cancelled());

        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        // An explicit cancel still trips a token whose deadline is far away.
        future.cancel();
        assert!(future.is_cancelled());
    }

    #[test]
    fn deadline_opt_none_matches_plain_token() {
        let token = CancelToken::with_deadline_opt(None);
        assert_eq!(token.deadline(), None);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn token_is_shareable_across_threads() {
        let token = std::sync::Arc::new(CancelToken::new());
        let clone = token.clone();
        std::thread::spawn(move || clone.cancel()).join().unwrap();
        assert!(token.is_cancelled());
    }
}
