//! Error type shared by every operator in the crate.

use std::fmt;

/// Errors produced by table construction and relational operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A referenced column does not exist in the table.
    ColumnNotFound(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Column lengths within one table disagree.
    LengthMismatch {
        expected: usize,
        actual: usize,
        column: String,
    },
    /// An operation was applied to a column of an unsupported type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        actual: &'static str,
    },
    /// CSV parsing failed.
    Csv(String),
    /// Any other invalid argument.
    InvalidArgument(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            TabularError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TabularError::LengthMismatch {
                expected,
                actual,
                column,
            } => write!(
                f,
                "length mismatch for column {column}: expected {expected} rows, got {actual}"
            ),
            TabularError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "type mismatch for column {column}: expected {expected}, got {actual}"
                )
            }
            TabularError::Csv(msg) => write!(f, "csv error: {msg}"),
            TabularError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = TabularError::ColumnNotFound("age".into());
        assert_eq!(e.to_string(), "column not found: age");
    }

    #[test]
    fn display_length_mismatch() {
        let e = TabularError::LengthMismatch {
            expected: 3,
            actual: 5,
            column: "x".into(),
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TabularError::Csv("bad".into()));
    }
}
