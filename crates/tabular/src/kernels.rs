//! Compiled aggregation kernels: streaming moment accumulators, sorted-run order-statistic
//! kernels and dictionary-code frequency kernels.
//!
//! [`AggFunc::apply`] is the *reference* implementation of the fifteen aggregation functions: it
//! receives one group's values as a freshly materialised slice and recomputes everything from
//! scratch — including a full copy + sort for the order statistics. That is exactly the per-
//! candidate cost a compiled query engine wants to avoid, so this module splits the functions
//! into three kernel families (see [`KernelFamily`]) that an engine can drive incrementally:
//!
//! * **`Stream`** — one pass, O(1) state per group (`SUM`, `MIN`, `MAX`, `COUNT`, `AVG`).
//! * **`Moment`** — two streaming passes per group (`VAR`, `VAR_SAMPLE`, `STD`, `STD_SAMPLE`,
//!   `KURTOSIS`): pass 1 accumulates the sum, pass 2 accumulates the centred power sums `m2`
//!   (and `m4` for kurtosis) with [`accumulate_m2`] / [`accumulate_m4`], and
//!   [`moment_finalize`] turns them into the aggregate. No per-group value buffer is needed.
//! * **`OrderStat`** — kernels over a group's non-null values *pre-sorted by
//!   [`f64::total_cmp`]* (`MEDIAN`, `MAD`, `MODE`, `ENTROPY`, `COUNT_DISTINCT`): an engine that
//!   keeps per-group sorted runs (or merges a selection out of them) calls the `*_sorted`
//!   functions and skips the per-candidate copy + sort entirely. [`CodeFreqKernel`] is the
//!   companion for dictionary-coded categorical values, counting frequencies in a dense array
//!   instead of sorting.
//!
//! Every kernel is **bit-identical** to [`AggFunc::apply`] (post ±0.0/NaN canonicalization — see
//! the [`crate::aggregate`] module docs): accumulations use the same operations in the same
//! ascending-value or ascending-row order as the reference, which the property tests in
//! `tests/proptests.rs` (this crate and the workspace root) enforce over adversarial inputs.
//! [`apply_kernel`] packages the three families behind the same slice-in/value-out signature as
//! `apply`, as the equivalence target and for callers without incremental state.

use crate::aggregate::{canonical, canonical_nan, AggFunc};
use crate::cancel::{CancelToken, Cancelled};

/// The kernel family that evaluates an [`AggFunc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// One-pass streaming accumulator (`SUM`, `MIN`, `MAX`, `COUNT`, `AVG`).
    Stream,
    /// Two-pass streaming moments (`VAR`, `VAR_SAMPLE`, `STD`, `STD_SAMPLE`, `KURTOSIS`).
    Moment,
    /// Order statistics / frequencies over sorted values (`MEDIAN`, `MAD`, `MODE`, `ENTROPY`,
    /// `COUNT_DISTINCT`).
    OrderStat,
}

impl KernelFamily {
    /// Which family evaluates `agg`.
    pub fn of(agg: AggFunc) -> KernelFamily {
        match agg {
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Count | AggFunc::Avg => {
                KernelFamily::Stream
            }
            AggFunc::Var
            | AggFunc::VarSample
            | AggFunc::Std
            | AggFunc::StdSample
            | AggFunc::Kurtosis => KernelFamily::Moment,
            AggFunc::CountDistinct
            | AggFunc::Entropy
            | AggFunc::Mode
            | AggFunc::Mad
            | AggFunc::Median => KernelFamily::OrderStat,
        }
    }
}

// ---------------------------------------------------------------------------
// Moment kernels
// ---------------------------------------------------------------------------

/// Pass-2 accumulation step for the centred second moment. Must use exactly
/// `(v - mean) * (v - mean)` — the reference's operation — for bit identity.
#[inline]
pub fn accumulate_m2(m2: &mut f64, v: f64, mean: f64) {
    *m2 += (v - mean) * (v - mean);
}

/// Pass-2 accumulation step for the centred fourth moment (kurtosis only). Must use exactly
/// `(v - mean).powi(4)` — the reference's operation — for bit identity.
#[inline]
pub fn accumulate_m4(m4: &mut f64, v: f64, mean: f64) {
    *m4 += (v - mean).powi(4);
}

/// Finalize a moment aggregate from the non-null count `n`, the centred second power sum `m2`
/// and (for kurtosis) the centred fourth power sum `m4`. The caller streams: pass 1 sums the
/// values in row order and derives `mean = sum / n`; pass 2 accumulates `m2`/`m4` in the same
/// row order. Matches [`AggFunc::apply`] bit for bit, including the `n < 2 → 0.0` sample-
/// statistic convention and kurtosis' degenerate-variance cutoff.
///
/// Returns `None` for `n == 0` (NULL, like every non-count aggregate of an empty group).
pub fn moment_finalize(agg: AggFunc, n: usize, m2: f64, m4: f64) -> Option<f64> {
    if n == 0 {
        return None;
    }
    let value = match agg {
        AggFunc::Var => m2 / n as f64,
        AggFunc::Std => (m2 / n as f64).sqrt(),
        AggFunc::VarSample => {
            if n < 2 {
                0.0
            } else {
                m2 / (n - 1) as f64
            }
        }
        AggFunc::StdSample => {
            if n < 2 {
                0.0
            } else {
                (m2 / (n - 1) as f64).sqrt()
            }
        }
        AggFunc::Kurtosis => {
            let var = m2 / n as f64;
            if var <= 1e-300 {
                0.0
            } else {
                (m4 / n as f64) / (var * var) - 3.0
            }
        }
        other => unreachable!("{other:?} is not a moment aggregate"),
    };
    Some(canonical_nan(value))
}

// ---------------------------------------------------------------------------
// Sorted-run order-statistic kernels
// ---------------------------------------------------------------------------
//
// Input contract for every `*_sorted` kernel: the group's non-null values sorted ascending by
// `f64::total_cmp` — the exact order the reference's `sort_by(total_cmp)` produces. In that
// order the canonical frequency classes are contiguous except NaN, which `total_cmp` splits
// into a negative-payload prefix and a positive-payload suffix; `for_each_canonical_run`
// re-unifies them as one class emitted last (canonical NaN is positive, so "last" is also its
// canonical sort position).

/// Visit the canonical frequency classes of a `total_cmp`-sorted slice as `(value, count)`, in
/// ascending canonical order with the NaN class (if any) last.
fn for_each_canonical_run(sorted: &[f64], mut f: impl FnMut(f64, usize)) {
    let nan_count = sorted.iter().filter(|v| v.is_nan()).count();
    let mut i = 0;
    while i < sorted.len() {
        if sorted[i].is_nan() {
            i += 1;
            continue;
        }
        let bits = canonical(sorted[i]).to_bits();
        let start = i;
        while i < sorted.len() && !sorted[i].is_nan() && canonical(sorted[i]).to_bits() == bits {
            i += 1;
        }
        f(f64::from_bits(bits), i - start);
    }
    if nan_count > 0 {
        f(f64::NAN, nan_count);
    }
}

/// `MEDIAN` over a `total_cmp`-sorted non-empty slice.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    let med = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    canonical_nan(med)
}

/// `MAD` over a `total_cmp`-sorted non-empty slice; `dev_buf` is reusable scratch for the
/// deviations (sorting a multiset by `total_cmp` is order-independent, so taking deviations in
/// sorted-value order instead of row order yields the reference's bits).
pub fn mad_sorted(sorted: &[f64], dev_buf: &mut Vec<f64>) -> f64 {
    let med = median_sorted(sorted);
    dev_buf.clear();
    dev_buf.extend(sorted.iter().map(|v| (v - med).abs()));
    dev_buf.sort_by(|a, b| a.total_cmp(b));
    median_sorted(dev_buf)
}

/// `MODE` over a `total_cmp`-sorted non-empty slice: the most frequent canonical value, ties
/// broken towards the smallest (NaN counting as the largest).
pub fn mode_sorted(sorted: &[f64]) -> f64 {
    let mut best_val = f64::NAN;
    let mut best_count = 0usize;
    for_each_canonical_run(sorted, |v, count| {
        if count > best_count {
            best_count = count;
            best_val = v;
        }
    });
    best_val
}

/// `ENTROPY` over a `total_cmp`-sorted non-empty slice, summed in ascending canonical-value
/// order (deterministic floating-point accumulation).
pub fn entropy_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len() as f64;
    let mut total = 0.0;
    for_each_canonical_run(sorted, |_, count| {
        let p = count as f64 / n;
        total += -p * p.ln();
    });
    total
}

/// `COUNT_DISTINCT` over a `total_cmp`-sorted slice (0 for an empty slice).
pub fn count_distinct_sorted(sorted: &[f64]) -> f64 {
    let mut distinct = 0usize;
    for_each_canonical_run(sorted, |_, _| distinct += 1);
    distinct as f64
}

// ---------------------------------------------------------------------------
// Dictionary-code frequency kernel
// ---------------------------------------------------------------------------

/// Frequency kernel over dictionary codes: counts occurrences in a dense array indexed by code
/// instead of sorting values. Codes are small non-negative integers, so ascending code order
/// *is* ascending canonical value order — `MODE`/`ENTROPY`/`COUNT_DISTINCT` computed here are
/// bit-identical to the sorted-run kernels (and to [`AggFunc::apply`]) over the same codes.
///
/// The kernel is reusable: [`CodeFreqKernel::reset`] clears only the touched slots, so feeding
/// one group after another costs O(values + distinct codes) per group regardless of the
/// dictionary's cardinality.
#[derive(Debug, Default)]
pub struct CodeFreqKernel {
    counts: Vec<u32>,
    used: Vec<u32>,
    total: usize,
}

impl CodeFreqKernel {
    /// A fresh kernel (the count table grows on demand).
    pub fn new() -> CodeFreqKernel {
        CodeFreqKernel::default()
    }

    /// Count one dictionary code (a small non-negative integer stored as `f64`).
    pub fn add(&mut self, code: f64) {
        let idx = code as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            self.used.push(idx as u32);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of values counted since the last reset.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no values have been counted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// `MODE`: smallest code with the maximal count (NaN for an empty kernel).
    pub fn mode(&mut self) -> f64 {
        self.used.sort_unstable();
        let mut best_val = f64::NAN;
        let mut best_count = 0u32;
        for &code in &self.used {
            let count = self.counts[code as usize];
            if count > best_count {
                best_count = count;
                best_val = code as f64;
            }
        }
        best_val
    }

    /// `ENTROPY`, summed in ascending code order.
    pub fn entropy(&mut self) -> f64 {
        self.used.sort_unstable();
        let n = self.total as f64;
        let mut total = 0.0;
        for &code in &self.used {
            let p = self.counts[code as usize] as f64 / n;
            total += -p * p.ln();
        }
        total
    }

    /// `COUNT_DISTINCT`.
    pub fn count_distinct(&self) -> f64 {
        self.used.len() as f64
    }

    /// Clear the touched counts, keeping the allocation for the next group.
    pub fn reset(&mut self) {
        for &code in &self.used {
            self.counts[code as usize] = 0;
        }
        self.used.clear();
        self.total = 0;
    }
}

// ---------------------------------------------------------------------------
// Mergeable delta accumulators (incremental ingestion)
// ---------------------------------------------------------------------------

/// Resumable one-pass state for one group of a `Stream`-family aggregate
/// (`SUM`, `MIN`, `MAX`, `COUNT`, `AVG`).
///
/// An incremental engine keeps one `StreamDelta` per group and, when new rows
/// arrive, *continues the fold* by calling [`StreamDelta::observe`] on the
/// appended values in ascending row order. Because the appended rows all come
/// after the rows already folded, the continued fold performs exactly the
/// same operations in exactly the same order as a from-scratch pass over the
/// concatenated rows — so [`StreamDelta::finalize`] is **bit-identical** to a
/// full recompute (the property tests pin it against [`apply_kernel`]).
///
/// Note the deliberate asymmetry with a tree-shaped combine: floating-point
/// addition is not associative, so merging two *finished* partial sums would
/// not reproduce the sequential fold's bits. The mergeable unit is therefore
/// (state, new values in row order), not (state, state).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamDelta {
    /// Rows observed (selected rows, null values included) — the presence
    /// count deciding group-absent (`None`) semantics.
    pub sel: u64,
    /// Values folded into `acc` (non-null; for `MIN`/`MAX` also non-NaN).
    pub nonnull: u64,
    /// The running fold value.
    pub acc: f64,
}

impl StreamDelta {
    /// Fresh state for `agg`: the fold's neutral element (`-0.0` for sums —
    /// `Iterator::sum`'s identity — and the appropriate infinity for
    /// `MIN`/`MAX`).
    pub fn new(agg: AggFunc) -> StreamDelta {
        let acc = match agg {
            AggFunc::Min => f64::INFINITY,
            AggFunc::Max => f64::NEG_INFINITY,
            AggFunc::Sum | AggFunc::Avg | AggFunc::Count => -0.0,
            other => unreachable!("{other:?} is not a streaming aggregate"),
        };
        StreamDelta {
            sel: 0,
            nonnull: 0,
            acc,
        }
    }

    /// Fold one more selected row's value (`None` = SQL NULL). Values must
    /// arrive in ascending row order across every batch for bit identity.
    #[inline]
    pub fn observe(&mut self, agg: AggFunc, value: Option<f64>) {
        self.sel += 1;
        let Some(v) = value else { return };
        match agg {
            AggFunc::Sum | AggFunc::Avg => {
                self.nonnull += 1;
                self.acc += v;
            }
            AggFunc::Count => self.nonnull += 1,
            // MIN/MAX skip NaNs so an all-NaN group finalizes to NULL.
            AggFunc::Min => {
                if !v.is_nan() {
                    self.nonnull += 1;
                    self.acc = self.acc.min(v);
                }
            }
            AggFunc::Max => {
                if !v.is_nan() {
                    self.nonnull += 1;
                    self.acc = self.acc.max(v);
                }
            }
            other => unreachable!("{other:?} is not a streaming aggregate"),
        }
    }

    /// The aggregate value at this point of the stream: `None` when the group
    /// has no selected rows (group absent) or no participating values
    /// (every non-count aggregate of an all-NULL group). Canonical-NaN
    /// pinned, like every kernel output.
    pub fn finalize(&self, agg: AggFunc) -> Option<f64> {
        if self.sel == 0 {
            return None;
        }
        let value = match agg {
            AggFunc::Count => Some(self.nonnull as f64),
            _ if self.nonnull == 0 => None,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => Some(self.acc),
            AggFunc::Avg => Some(self.acc / self.nonnull as f64),
            other => unreachable!("{other:?} is not a streaming aggregate"),
        };
        value.map(canonical_nan)
    }
}

/// Resumable pass-1 state for one group of a `Moment`-family aggregate
/// (`VAR`, `VAR_SAMPLE`, `STD`, `STD_SAMPLE`, `KURTOSIS`): the non-null count
/// and the running sum, folded in ascending row order.
///
/// Appending rows continues the sum fold bit-identically (same argument as
/// [`StreamDelta`]); pass 2 then recomputes the centred power sums over the
/// group's *full* value sequence with the new mean — the mean shifted, so the
/// centred terms of the old rows changed and cannot be reused. An append
/// therefore costs pass 2 only for the touched groups.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MomentDelta {
    /// Rows observed (selected rows, null values included).
    pub sel: u64,
    /// Non-null values folded into `sum`.
    pub nonnull: u64,
    /// The running sum (`-0.0`-seeded, `Iterator::sum`'s identity).
    pub sum: f64,
}

impl Default for MomentDelta {
    fn default() -> MomentDelta {
        MomentDelta::new()
    }
}

impl MomentDelta {
    /// Fresh (empty) pass-1 state.
    pub fn new() -> MomentDelta {
        MomentDelta {
            sel: 0,
            nonnull: 0,
            sum: -0.0,
        }
    }

    /// Fold one more selected row's value (`None` = SQL NULL), in ascending
    /// row order.
    #[inline]
    pub fn observe(&mut self, value: Option<f64>) {
        self.sel += 1;
        if let Some(v) = value {
            self.nonnull += 1;
            self.sum += v;
        }
    }

    /// The group mean pass 2 centres on — exactly `sum / n`, the reference's
    /// operation on the reference's sum bits.
    pub fn mean(&self) -> f64 {
        self.sum / self.nonnull as f64
    }
}

// ---------------------------------------------------------------------------
// Slice-level entry point
// ---------------------------------------------------------------------------

/// Evaluate `agg` over one group's non-null values through the kernel layer. Bit-identical to
/// [`AggFunc::apply`] on every input; the property tests pin the equivalence. Engines with
/// incremental per-group state (streamed sums, pre-sorted runs) call the family kernels
/// directly instead.
pub fn apply_kernel(agg: AggFunc, values: &[f64]) -> Option<f64> {
    let n = values.len();
    let result = match KernelFamily::of(agg) {
        KernelFamily::Stream => match agg {
            AggFunc::Count => Some(n as f64),
            _ if n == 0 => None,
            AggFunc::Sum => Some(values.iter().sum()),
            AggFunc::Avg => Some(values.iter().sum::<f64>() / n as f64),
            AggFunc::Min => {
                let mut acc = f64::INFINITY;
                let mut seen = false;
                for &v in values {
                    if !v.is_nan() {
                        seen = true;
                        acc = acc.min(v);
                    }
                }
                seen.then_some(acc)
            }
            AggFunc::Max => {
                let mut acc = f64::NEG_INFINITY;
                let mut seen = false;
                for &v in values {
                    if !v.is_nan() {
                        seen = true;
                        acc = acc.max(v);
                    }
                }
                seen.then_some(acc)
            }
            other => unreachable!("{other:?} is not a streaming aggregate"),
        },
        KernelFamily::Moment => {
            if n == 0 {
                return None;
            }
            let sum: f64 = values.iter().sum();
            let mean = sum / n as f64;
            let mut m2 = 0.0;
            let mut m4 = 0.0;
            for &v in values {
                accumulate_m2(&mut m2, v, mean);
            }
            if agg == AggFunc::Kurtosis {
                for &v in values {
                    accumulate_m4(&mut m4, v, mean);
                }
            }
            moment_finalize(agg, n, m2, m4)
        }
        KernelFamily::OrderStat => {
            if agg == AggFunc::CountDistinct && n == 0 {
                return Some(0.0);
            }
            if n == 0 {
                return None;
            }
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let value = match agg {
                AggFunc::Median => median_sorted(&sorted),
                AggFunc::Mad => mad_sorted(&sorted, &mut Vec::new()),
                AggFunc::Mode => mode_sorted(&sorted),
                AggFunc::Entropy => entropy_sorted(&sorted),
                AggFunc::CountDistinct => count_distinct_sorted(&sorted),
                other => unreachable!("{other:?} is not an order statistic"),
            };
            Some(value)
        }
    };
    result.map(canonical_nan)
}

/// Values processed between [`CancelToken`] polls inside [`apply_kernel_cancel`]. Small enough
/// that a stalled kernel is preempted within a fraction of a serving deadline, large enough
/// that the relaxed-load poll disappears against the accumulation work.
pub const CANCEL_STRIDE: usize = 1024;

/// [`apply_kernel`] with cooperative preemption: polls `cancel` every [`CANCEL_STRIDE`] values
/// (and once up front) and returns `Err(Cancelled)` the moment the token trips, abandoning the
/// partial accumulation. On the `Ok` path the result is bit-identical to [`apply_kernel`] —
/// the chunked folds perform the same operations in the same ascending-row order, only
/// interleaved with checkpoint polls.
pub fn apply_kernel_cancel(
    agg: AggFunc,
    values: &[f64],
    cancel: &CancelToken,
) -> Result<Option<f64>, Cancelled> {
    cancel.check()?;
    let n = values.len();
    let result = match KernelFamily::of(agg) {
        KernelFamily::Stream => match agg {
            AggFunc::Count => Some(n as f64),
            _ if n == 0 => None,
            AggFunc::Sum | AggFunc::Avg => {
                // `Iterator::sum::<f64>` folds from `-0.0`; mirror it chunk by chunk.
                let mut acc = -0.0f64;
                for chunk in values.chunks(CANCEL_STRIDE) {
                    cancel.check()?;
                    for &v in chunk {
                        acc += v;
                    }
                }
                if agg == AggFunc::Sum {
                    Some(acc)
                } else {
                    Some(acc / n as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let mut acc = if agg == AggFunc::Min {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                let mut seen = false;
                for chunk in values.chunks(CANCEL_STRIDE) {
                    cancel.check()?;
                    for &v in chunk {
                        if !v.is_nan() {
                            seen = true;
                            acc = if agg == AggFunc::Min {
                                acc.min(v)
                            } else {
                                acc.max(v)
                            };
                        }
                    }
                }
                seen.then_some(acc)
            }
            other => unreachable!("{other:?} is not a streaming aggregate"),
        },
        KernelFamily::Moment => {
            if n == 0 {
                return Ok(None);
            }
            let mut sum = -0.0f64;
            for chunk in values.chunks(CANCEL_STRIDE) {
                cancel.check()?;
                for &v in chunk {
                    sum += v;
                }
            }
            let mean = sum / n as f64;
            let mut m2 = 0.0;
            let mut m4 = 0.0;
            for chunk in values.chunks(CANCEL_STRIDE) {
                cancel.check()?;
                for &v in chunk {
                    accumulate_m2(&mut m2, v, mean);
                }
            }
            if agg == AggFunc::Kurtosis {
                for chunk in values.chunks(CANCEL_STRIDE) {
                    cancel.check()?;
                    for &v in chunk {
                        accumulate_m4(&mut m4, v, mean);
                    }
                }
            }
            moment_finalize(agg, n, m2, m4)
        }
        KernelFamily::OrderStat => {
            if agg == AggFunc::CountDistinct && n == 0 {
                return Ok(Some(0.0));
            }
            if n == 0 {
                return Ok(None);
            }
            let mut sorted = values.to_vec();
            cancel.check()?;
            sorted.sort_by(|a, b| a.total_cmp(b));
            cancel.check()?;
            let value = match agg {
                AggFunc::Median => median_sorted(&sorted),
                AggFunc::Mad => mad_sorted(&sorted, &mut Vec::new()),
                AggFunc::Mode => mode_sorted(&sorted),
                AggFunc::Entropy => entropy_sorted(&sorted),
                AggFunc::CountDistinct => count_distinct_sorted(&sorted),
                other => unreachable!("{other:?} is not an order statistic"),
            };
            Some(value)
        }
    };
    Ok(result.map(canonical_nan))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A value palette that stresses every float-semantics edge: signed zeros, NaN payloads of
    /// both signs, infinities, and ordinary values.
    fn adversarial_values() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(f64::NAN.to_bits() ^ 1),
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e300,
            -1e-300,
            3.5,
            3.5,
        ]
    }

    #[test]
    fn every_agg_func_has_exactly_one_family() {
        let mut stream = 0;
        let mut moment = 0;
        let mut order = 0;
        for &agg in AggFunc::all() {
            match KernelFamily::of(agg) {
                KernelFamily::Stream => stream += 1,
                KernelFamily::Moment => moment += 1,
                KernelFamily::OrderStat => order += 1,
            }
        }
        assert_eq!((stream, moment, order), (5, 5, 5));
    }

    #[test]
    fn apply_kernel_matches_apply_on_adversarial_slices() {
        let palette = adversarial_values();
        // Whole palette, prefixes, single elements and all-equal runs.
        let mut cases: Vec<Vec<f64>> = vec![vec![], palette.clone()];
        for len in 1..palette.len() {
            cases.push(palette[..len].to_vec());
        }
        for &v in &palette {
            cases.push(vec![v]);
            cases.push(vec![v; 4]);
        }
        for values in &cases {
            for &agg in AggFunc::all() {
                let reference = agg.apply(values);
                let kernel = apply_kernel(agg, values);
                assert_eq!(
                    reference.map(f64::to_bits),
                    kernel.map(f64::to_bits),
                    "{agg} over {values:?}: reference {reference:?} vs kernel {kernel:?}"
                );
            }
        }
    }

    #[test]
    fn sorted_kernels_match_apply_when_input_is_presorted() {
        let mut sorted = adversarial_values();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let check = |agg: AggFunc, got: f64| {
            let want = agg.apply(&sorted).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{agg}: {got} vs {want}");
        };
        check(AggFunc::Median, median_sorted(&sorted));
        check(AggFunc::Mad, mad_sorted(&sorted, &mut Vec::new()));
        check(AggFunc::Mode, mode_sorted(&sorted));
        check(AggFunc::Entropy, entropy_sorted(&sorted));
        check(AggFunc::CountDistinct, count_distinct_sorted(&sorted));
    }

    #[test]
    fn code_freq_kernel_matches_apply_over_codes_and_resets_cleanly() {
        let groups: Vec<Vec<f64>> = vec![
            vec![2.0, 0.0, 2.0, 5.0, 0.0, 2.0],
            vec![1.0, 1.0],
            vec![7.0],
            vec![0.0, 1.0],
        ];
        let mut kernel = CodeFreqKernel::new();
        for codes in &groups {
            for &c in codes {
                kernel.add(c);
            }
            assert_eq!(kernel.len(), codes.len());
            let mode = kernel.mode();
            let entropy = kernel.entropy();
            let distinct = kernel.count_distinct();
            assert_eq!(
                mode.to_bits(),
                AggFunc::Mode.apply(codes).unwrap().to_bits()
            );
            assert_eq!(
                entropy.to_bits(),
                AggFunc::Entropy.apply(codes).unwrap().to_bits()
            );
            assert_eq!(distinct, AggFunc::CountDistinct.apply(codes).unwrap());
            kernel.reset();
            assert!(kernel.is_empty());
        }
        // An empty kernel mirrors the empty-group conventions.
        assert!(kernel.mode().is_nan());
        assert_eq!(kernel.count_distinct(), 0.0);
    }

    #[test]
    fn apply_kernel_cancel_matches_apply_kernel_when_not_cancelled() {
        let token = CancelToken::new();
        let palette = adversarial_values();
        // Include a slice longer than the stride so the chunked folds cross a poll boundary.
        let mut long: Vec<f64> = Vec::new();
        while long.len() <= CANCEL_STRIDE {
            long.extend_from_slice(&palette);
        }
        let cases: Vec<Vec<f64>> = vec![vec![], palette.clone(), long];
        for values in &cases {
            for &agg in AggFunc::all() {
                let reference = apply_kernel(agg, values);
                let cancelable = apply_kernel_cancel(agg, values, &token)
                    .expect("untripped token must not cancel");
                assert_eq!(
                    reference.map(f64::to_bits),
                    cancelable.map(f64::to_bits),
                    "{agg} over {} values",
                    values.len()
                );
            }
        }
    }

    #[test]
    fn apply_kernel_cancel_preempts_on_tripped_token() {
        let token = CancelToken::new();
        token.cancel();
        let values = vec![1.0, 2.0, 3.0];
        for &agg in AggFunc::all() {
            assert_eq!(
                apply_kernel_cancel(agg, &values, &token),
                Err(Cancelled),
                "{agg} must preempt"
            );
        }
    }

    #[test]
    fn moment_finalize_handles_degenerate_counts() {
        assert_eq!(moment_finalize(AggFunc::Var, 0, 0.0, 0.0), None);
        assert_eq!(moment_finalize(AggFunc::VarSample, 1, 0.0, 0.0), Some(0.0));
        assert_eq!(moment_finalize(AggFunc::StdSample, 1, 0.0, 0.0), Some(0.0));
        assert_eq!(moment_finalize(AggFunc::Kurtosis, 2, 0.0, 0.0), Some(0.0));
    }

    /// A value stream with NULLs interleaved among the adversarial floats.
    fn adversarial_stream() -> Vec<Option<f64>> {
        let mut stream = Vec::new();
        for (i, v) in adversarial_values().into_iter().enumerate() {
            stream.push(Some(v));
            if i % 3 == 0 {
                stream.push(None);
            }
        }
        stream
    }

    /// Feeding a `StreamDelta` in one pass or resumed across every possible
    /// split point must finalize to the same bits as `apply_kernel` over the
    /// non-null values — the continuation property `append_relevant` rests on.
    #[test]
    fn stream_delta_continuation_is_bit_identical_to_one_pass() {
        let stream = adversarial_stream();
        for &agg in &[
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let nonnull: Vec<f64> = stream.iter().filter_map(|v| *v).collect();
            let reference = apply_kernel(agg, &nonnull);
            for split in 0..=stream.len() {
                let mut delta = StreamDelta::new(agg);
                for v in &stream[..split] {
                    delta.observe(agg, *v);
                }
                // Resume from a copied state, as an epoch clone would.
                let mut resumed = delta;
                for v in &stream[split..] {
                    resumed.observe(agg, *v);
                }
                assert_eq!(resumed.sel as usize, stream.len());
                assert_eq!(
                    resumed.finalize(agg).map(f64::to_bits),
                    reference.map(f64::to_bits),
                    "{agg} split at {split}"
                );
            }
        }
    }

    /// No selected rows means the group is absent (`None`); an all-NULL group
    /// is NULL for everything but COUNT, which reports zero.
    #[test]
    fn stream_delta_empty_and_all_null_conventions() {
        for &agg in &[
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            assert_eq!(StreamDelta::new(agg).finalize(agg), None, "{agg} empty");
            let mut delta = StreamDelta::new(agg);
            delta.observe(agg, None);
            delta.observe(agg, None);
            let want = if agg == AggFunc::Count {
                Some(0.0)
            } else {
                None
            };
            assert_eq!(delta.finalize(agg), want, "{agg} all-null");
        }
        // MIN/MAX treat NaN like NULL: an all-NaN group stays absent-valued.
        for &agg in &[AggFunc::Min, AggFunc::Max] {
            let mut delta = StreamDelta::new(agg);
            delta.observe(agg, Some(f64::NAN));
            assert_eq!(delta.finalize(agg), None, "{agg} all-NaN");
        }
    }

    /// The pass-1 sum fold continues bit-identically across splits, and the
    /// mean it yields drives `accumulate_m2`/`moment_finalize` to the same
    /// bits as the one-shot kernel.
    #[test]
    fn moment_delta_pass1_continuation_is_bit_identical() {
        let stream: Vec<Option<f64>> = adversarial_stream()
            .into_iter()
            .filter(|v| !matches!(v, Some(x) if x.is_nan() || x.is_infinite()))
            .collect();
        let nonnull: Vec<f64> = stream.iter().filter_map(|v| *v).collect();
        for &agg in &[
            AggFunc::Var,
            AggFunc::VarSample,
            AggFunc::Std,
            AggFunc::StdSample,
            AggFunc::Kurtosis,
        ] {
            let reference = apply_kernel(agg, &nonnull);
            for split in 0..=stream.len() {
                let mut delta = MomentDelta::new();
                for v in &stream[..split] {
                    delta.observe(*v);
                }
                let mut resumed = delta;
                for v in &stream[split..] {
                    resumed.observe(*v);
                }
                // Pass 2 over the full value sequence with the continued mean.
                let mean = resumed.mean();
                let (mut m2, mut m4) = (0.0, 0.0);
                for &v in &nonnull {
                    accumulate_m2(&mut m2, v, mean);
                    if agg == AggFunc::Kurtosis {
                        accumulate_m4(&mut m4, v, mean);
                    }
                }
                let got = moment_finalize(agg, resumed.nonnull as usize, m2, m4);
                assert_eq!(
                    got.map(f64::to_bits),
                    reference.map(f64::to_bits),
                    "{agg} split at {split}"
                );
            }
        }
    }
}
