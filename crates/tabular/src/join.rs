//! Left joins: attaching generated features to the training table.
//!
//! FeatAug's augmented training table (paper Definition 3) is
//! `SELECT D.*, q(R).feature FROM D LEFT JOIN q(R) ON D.k = q(R).k`.
//! [`left_join`] implements exactly that: every left row is preserved, unmatched rows receive
//! NULLs in the right-hand columns, and right-hand key columns are not duplicated in the output.
//!
//! Join keys are typed [`KeyAtom`] vectors (shared with the group-by machinery) rather than
//! per-row rendered strings: integers, datetimes, bools and float bit patterns compare directly,
//! and categorical values are translated between the two tables' dictionaries once per distinct
//! value ([`KeyMapper`]) instead of re-hashing strings per row. NULL keys never match (SQL
//! semantics), and keys of differing column types never match (the old string encoding tagged
//! values with their type for the same reason).

use std::collections::HashMap;

use crate::column::Column;
use crate::error::TabularError;
use crate::groupby::{key_atom, KeyAtom};
use crate::table::Table;
use crate::Result;

/// Translates rows of a *probe* table into the key space of a *reference* table, so typed key
/// atoms from both sides can be compared directly. Categorical dictionary codes are table-local;
/// the mapper pre-resolves each probe dictionary entry against the reference dictionary (one
/// string hash per distinct value, not per row). Columns whose types differ between the two
/// tables are treated as never matching.
pub struct KeyMapper<'a> {
    probe_cols: Vec<&'a Column>,
    /// Per key column: `Some(map)` holds probe-code → reference-code for categorical columns.
    cat_maps: Vec<Option<Vec<Option<u32>>>>,
    compatible: bool,
}

impl<'a> KeyMapper<'a> {
    /// Build a mapper for `probe_keys[i]` of `probe` against `ref_keys[i]` of `reference`.
    pub fn new(
        reference: &Table,
        probe: &'a Table,
        ref_keys: &[&str],
        probe_keys: &[&str],
    ) -> Result<KeyMapper<'a>> {
        if ref_keys.len() != probe_keys.len() || ref_keys.is_empty() {
            return Err(TabularError::InvalidArgument(
                "key mapping requires equal, non-empty key lists".into(),
            ));
        }
        let mut probe_cols = Vec::with_capacity(probe_keys.len());
        let mut cat_maps = Vec::with_capacity(probe_keys.len());
        let mut compatible = true;
        for (&rk, &pk) in ref_keys.iter().zip(probe_keys) {
            let ref_col = reference.column(rk)?;
            let probe_col = probe.column(pk)?;
            if ref_col.dtype() != probe_col.dtype() {
                compatible = false;
            }
            let map = match (probe_col, ref_col) {
                (Column::Cat(p), Column::Cat(r)) => {
                    Some(p.dictionary().iter().map(|v| r.code_of(v)).collect())
                }
                _ => None,
            };
            probe_cols.push(probe_col);
            cat_maps.push(map);
        }
        Ok(KeyMapper {
            probe_cols,
            cat_maps,
            compatible,
        })
    }

    /// The probe row's key in reference space. `None` when the key can never match a reference
    /// row: a NULL component, a categorical value absent from the reference dictionary, or a
    /// column-type mismatch.
    pub fn key(&self, row: usize) -> Option<Vec<KeyAtom>> {
        if !self.compatible {
            return None;
        }
        let mut key = Vec::with_capacity(self.probe_cols.len());
        for (col, map) in self.probe_cols.iter().zip(&self.cat_maps) {
            let atom = match (key_atom(col, row), map) {
                (KeyAtom::Null, _) => return None,
                (KeyAtom::Code(c), Some(m)) => KeyAtom::Code(m[c as usize]?),
                (atom, _) => atom,
            };
            key.push(atom);
        }
        Some(key)
    }
}

/// The reference-side key of `cols` at `row` (`None` when any component is NULL).
fn own_key(cols: &[&Column], row: usize) -> Option<Vec<KeyAtom>> {
    let mut key = Vec::with_capacity(cols.len());
    for col in cols {
        match key_atom(col, row) {
            KeyAtom::Null => return None,
            atom => key.push(atom),
        }
    }
    Some(key)
}

fn key_columns<'t>(table: &'t Table, keys: &[&str]) -> Result<Vec<&'t Column>> {
    keys.iter().map(|k| table.column(k)).collect()
}

/// Left join `left` with `right` on equally-named key pairs
/// (`left_keys[i]` = `right_keys[i]`).
///
/// * Every row of `left` appears exactly once in the output when the right side has at most one
///   row per key (the situation after a group-by); if the right side has duplicate keys the
///   first matching row wins — the caller is expected to aggregate first.
/// * Columns of `right` other than its key columns are appended to the output schema. A column
///   name clash is resolved by suffixing the right column with `_r`.
pub fn left_join(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(TabularError::InvalidArgument(
            "left_join requires equal, non-empty key lists".into(),
        ));
    }

    // Index right rows by typed key (first occurrence wins).
    let right_cols = key_columns(right, right_keys)?;
    let mut index: HashMap<Vec<KeyAtom>, usize> = HashMap::with_capacity(right.num_rows());
    for row in 0..right.num_rows() {
        if let Some(key) = own_key(&right_cols, row) {
            index.entry(key).or_insert(row);
        }
    }

    // Row mapping: for each left row, the matched right row (if any).
    let mapper = KeyMapper::new(right, left, right_keys, left_keys)?;
    let mut matches: Vec<Option<usize>> = Vec::with_capacity(left.num_rows());
    for row in 0..left.num_rows() {
        let m = mapper.key(row).and_then(|key| index.get(&key).copied());
        matches.push(m);
    }

    let mut out = left.clone().with_name(format!("{}_joined", left.name()));

    for field in right.schema().fields() {
        if right_keys.contains(&field.name.as_str()) {
            continue;
        }
        let src = right.column(&field.name)?;
        let mut dst = Column::empty(field.dtype);
        for m in &matches {
            match m {
                Some(r) => dst.push(src.get(*r))?,
                None => dst.push(crate::value::Value::Null)?,
            }
        }
        let mut name = field.name.clone();
        if out.schema().index_of(&name).is_some() {
            name = format!("{name}_r");
        }
        out.add_column(name, dst)?;
    }
    Ok(out)
}

/// The row-level gather map of an *expanding* left join: one `(left_row, Some(right_row))` pair
/// per match, in left-row order with matches in right-row order, and one `(left_row, None)` pair
/// for each unmatched left row. A left row with `k > 1` matches contributes `k` pairs — this is
/// the one-to-many shape [`left_join`] deliberately collapses, and the primitive multi-hop join
/// paths compose hop by hop without materialising intermediate tables.
pub fn join_gather(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Vec<(usize, Option<usize>)>> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(TabularError::InvalidArgument(
            "join_gather requires equal, non-empty key lists".into(),
        ));
    }

    // Index right rows by typed key, keeping every occurrence in row order.
    let right_cols = key_columns(right, right_keys)?;
    let mut index: HashMap<Vec<KeyAtom>, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for row in 0..right.num_rows() {
        if let Some(key) = own_key(&right_cols, row) {
            index.entry(key).or_default().push(row);
        }
    }

    let mapper = KeyMapper::new(right, left, right_keys, left_keys)?;
    let mut out = Vec::with_capacity(left.num_rows());
    for row in 0..left.num_rows() {
        match mapper.key(row).and_then(|key| index.get(&key)) {
            Some(rows) => out.extend(rows.iter().map(|&r| (row, Some(r)))),
            None => out.push((row, None)),
        }
    }
    Ok(out)
}

/// Standard SQL `LEFT JOIN`: every match is preserved, so a left row with several matching right
/// rows is repeated once per match (unlike [`left_join`], which keeps the first match only).
/// Unmatched left rows appear once with NULLs in the right-hand columns. Right key columns are
/// not duplicated; a non-key name clash is resolved by suffixing the right column with `_r`.
pub fn left_join_expand(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Table> {
    let gather = join_gather(left, right, left_keys, right_keys)?;
    let left_rows: Vec<usize> = gather.iter().map(|&(l, _)| l).collect();
    let right_rows: Vec<Option<usize>> = gather.iter().map(|&(_, r)| r).collect();

    let mut out = left
        .take(&left_rows)
        .with_name(format!("{}_joined", left.name()));
    for field in right.schema().fields() {
        if right_keys.contains(&field.name.as_str()) {
            continue;
        }
        let src = right.column(&field.name)?;
        let mut name = field.name.clone();
        if out.schema().index_of(&name).is_some() {
            name = format!("{name}_r");
        }
        out.add_column(name, src.take_opt(&right_rows))?;
    }
    Ok(out)
}

/// Convenience wrapper for the common FeatAug case: join an aggregated feature table onto the
/// training table using the same key names on both sides, returning the augmented table.
pub fn attach_features(training: &Table, features: &Table, keys: &[&str]) -> Result<Table> {
    left_join(training, features, keys, keys)
}

/// The fraction of left rows that found a match — useful for sanity-checking the one-to-many
/// relationship of generated datasets.
pub fn match_rate(left: &Table, right: &Table, keys: &[&str]) -> Result<f64> {
    if left.num_rows() == 0 {
        return Ok(0.0);
    }
    let joined = left_join(left, right, keys, keys)?;
    // A row matched when at least one appended column is non-null; detect via the first
    // appended column if there is one, otherwise report 1.0 (nothing to attach).
    let appended: Vec<&str> = joined
        .column_names()
        .into_iter()
        .filter(|n| left.schema().index_of(n).is_none())
        .collect();
    let Some(first) = appended.first() else {
        return Ok(1.0);
    };
    let col = joined.column(first)?;
    let non_null = col.len() - col.null_count();
    Ok(non_null as f64 / left.num_rows() as f64)
}

/// Verify that `right[key]` has at most one row per key value — i.e. the output of a group-by.
pub fn is_unique_key(table: &Table, keys: &[&str]) -> Result<bool> {
    let cols = key_columns(table, keys)?;
    let mut seen: HashMap<Vec<KeyAtom>, ()> = HashMap::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        if let Some(k) = own_key(&cols, row) {
            if seen.insert(k, ()).is_some() {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Infer the foreign-key multiplicity between `one` and `many`: returns the average number of
/// `many` rows per distinct key of `one` (0.0 when `one` is empty).
pub fn fanout(one: &Table, many: &Table, keys: &[&str]) -> Result<f64> {
    let one_cols = key_columns(one, keys)?;
    let mut distinct: HashMap<Vec<KeyAtom>, ()> = HashMap::new();
    for row in 0..one.num_rows() {
        if let Some(k) = own_key(&one_cols, row) {
            distinct.insert(k, ());
        }
    }
    if distinct.is_empty() {
        return Ok(0.0);
    }
    let mapper = KeyMapper::new(one, many, keys, keys)?;
    let mut matched = 0usize;
    for row in 0..many.num_rows() {
        if let Some(k) = mapper.key(row) {
            if distinct.contains_key(&k) {
                matched += 1;
            }
        }
    }
    Ok(matched as f64 / distinct.len() as f64)
}

#[allow(unused_imports)]
use crate::schema::Schema; // referenced by doc comments

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn training() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        t.add_column("age", Column::from_i64s(&[30, 40, 50]))
            .unwrap();
        t
    }

    fn features() -> Table {
        let mut t = Table::new("feats");
        t.add_column("cname", Column::from_strs(&["b", "a"]))
            .unwrap();
        t.add_column("feature", Column::from_f64s(&[2.0, 1.0]))
            .unwrap();
        t
    }

    #[test]
    fn left_join_preserves_all_left_rows() {
        let joined = left_join(&training(), &features(), &["cname"], &["cname"]).unwrap();
        assert_eq!(joined.num_rows(), 3);
        assert_eq!(joined.value(0, "feature").unwrap(), Value::Float(1.0));
        assert_eq!(joined.value(1, "feature").unwrap(), Value::Float(2.0));
        // "c" has no match -> NULL.
        assert_eq!(joined.value(2, "feature").unwrap(), Value::Null);
        // Right key column is not duplicated.
        assert_eq!(joined.num_columns(), 3);
    }

    #[test]
    fn name_clash_gets_suffixed() {
        let mut right = features();
        right
            .add_column("age", Column::from_f64s(&[99.0, 98.0]))
            .unwrap();
        let joined = left_join(&training(), &right, &["cname"], &["cname"]).unwrap();
        assert!(joined.column("age_r").is_ok());
        assert_eq!(joined.value(0, "age_r").unwrap(), Value::Float(98.0));
    }

    #[test]
    fn null_keys_do_not_match() {
        let mut left = Table::new("l");
        left.add_column("k", Column::from_opt_strs(&[Some("a"), None]))
            .unwrap();
        let mut right = Table::new("r");
        right
            .add_column("k", Column::from_opt_strs(&[Some("a"), None]))
            .unwrap();
        right
            .add_column("v", Column::from_f64s(&[1.0, 2.0]))
            .unwrap();
        let joined = left_join(&left, &right, &["k"], &["k"]).unwrap();
        assert_eq!(joined.value(0, "v").unwrap(), Value::Float(1.0));
        assert_eq!(joined.value(1, "v").unwrap(), Value::Null);
    }

    #[test]
    fn key_list_validation() {
        let t = training();
        assert!(left_join(&t, &features(), &[], &[]).is_err());
        assert!(left_join(&t, &features(), &["cname"], &[]).is_err());
    }

    #[test]
    fn expand_join_repeats_left_rows_per_match() {
        let mut orders = Table::new("orders");
        orders
            .add_column("order_id", Column::from_i64s(&[1, 2, 3]))
            .unwrap();
        let mut items = Table::new("items");
        items
            .add_column("order_id", Column::from_i64s(&[2, 1, 2]))
            .unwrap();
        items
            .add_column("product", Column::from_strs(&["p", "q", "r"]))
            .unwrap();

        let gather = join_gather(&orders, &items, &["order_id"], &["order_id"]).unwrap();
        assert_eq!(
            gather,
            vec![(0, Some(1)), (1, Some(0)), (1, Some(2)), (2, None)]
        );

        let joined = left_join_expand(&orders, &items, &["order_id"], &["order_id"]).unwrap();
        assert_eq!(joined.num_rows(), 4);
        // Order 1 -> q; order 2 -> p then r (right-row order); order 3 unmatched -> NULL.
        assert_eq!(joined.value(0, "product").unwrap(), Value::Str("q".into()));
        assert_eq!(joined.value(1, "product").unwrap(), Value::Str("p".into()));
        assert_eq!(joined.value(2, "product").unwrap(), Value::Str("r".into()));
        assert_eq!(joined.value(3, "order_id").unwrap(), Value::Int(3));
        assert_eq!(joined.value(3, "product").unwrap(), Value::Null);
        // Right key column is not duplicated.
        assert_eq!(joined.num_columns(), 2);
    }

    #[test]
    fn expand_join_matches_first_match_join_on_unique_keys() {
        // On a unique-keyed right side the two joins must agree bit for bit.
        let collapsed = left_join(&training(), &features(), &["cname"], &["cname"]).unwrap();
        let expanded = left_join_expand(&training(), &features(), &["cname"], &["cname"]).unwrap();
        assert_eq!(collapsed, expanded);
    }

    #[test]
    fn attach_features_and_match_rate() {
        let aug = attach_features(&training(), &features(), &["cname"]).unwrap();
        assert_eq!(aug.num_columns(), 3);
        let rate = match_rate(&training(), &features(), &["cname"]).unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unique_key_detection() {
        assert!(is_unique_key(&features(), &["cname"]).unwrap());
        let mut dup = features();
        let more = features();
        dup = dup.concat(&more).unwrap();
        assert!(!is_unique_key(&dup, &["cname"]).unwrap());
    }

    #[test]
    fn fanout_counts_rows_per_key() {
        let mut many = Table::new("logs");
        many.add_column("cname", Column::from_strs(&["a", "a", "b", "z"]))
            .unwrap();
        let f = fanout(&training(), &many, &["cname"]).unwrap();
        assert!((f - 1.0).abs() < 1e-9); // 3 matched rows over 3 distinct keys
    }

    #[test]
    fn type_tag_prevents_cross_type_matches() {
        let mut left = Table::new("l");
        left.add_column("k", Column::from_i64s(&[1])).unwrap();
        let mut right = Table::new("r");
        right.add_column("k", Column::from_strs(&["1"])).unwrap();
        right.add_column("v", Column::from_f64s(&[5.0])).unwrap();
        let joined = left_join(&left, &right, &["k"], &["k"]).unwrap();
        assert_eq!(joined.value(0, "v").unwrap(), Value::Null);
    }

    #[test]
    fn int_and_datetime_keys_do_not_match() {
        // The string encoding tagged keys with their type; typed atoms must preserve that.
        let mut left = Table::new("l");
        left.add_column("k", Column::from_i64s(&[100])).unwrap();
        let mut right = Table::new("r");
        right
            .add_column("k", Column::from_datetimes(&[100]))
            .unwrap();
        right.add_column("v", Column::from_f64s(&[5.0])).unwrap();
        let joined = left_join(&left, &right, &["k"], &["k"]).unwrap();
        assert_eq!(joined.value(0, "v").unwrap(), Value::Null);
    }

    #[test]
    fn categorical_codes_translate_across_dictionaries() {
        // Same values interned in different orders on each side must still match.
        let mut left = Table::new("l");
        left.add_column("k", Column::from_strs(&["x", "y", "z"]))
            .unwrap();
        let mut right = Table::new("r");
        right
            .add_column("k", Column::from_strs(&["z", "x"]))
            .unwrap();
        right
            .add_column("v", Column::from_f64s(&[26.0, 24.0]))
            .unwrap();
        let joined = left_join(&left, &right, &["k"], &["k"]).unwrap();
        assert_eq!(joined.value(0, "v").unwrap(), Value::Float(24.0));
        assert_eq!(joined.value(1, "v").unwrap(), Value::Null);
        assert_eq!(joined.value(2, "v").unwrap(), Value::Float(26.0));
    }

    #[test]
    fn multi_column_keys_join_componentwise() {
        let mut left = Table::new("l");
        left.add_column("a", Column::from_strs(&["u", "u", "v"]))
            .unwrap();
        left.add_column("b", Column::from_i64s(&[1, 2, 1])).unwrap();
        let mut right = Table::new("r");
        right
            .add_column("a", Column::from_strs(&["u", "v"]))
            .unwrap();
        right.add_column("b", Column::from_i64s(&[2, 1])).unwrap();
        right
            .add_column("v", Column::from_f64s(&[1.0, 2.0]))
            .unwrap();
        let joined = left_join(&left, &right, &["a", "b"], &["a", "b"]).unwrap();
        assert_eq!(joined.value(0, "v").unwrap(), Value::Null);
        assert_eq!(joined.value(1, "v").unwrap(), Value::Float(1.0));
        assert_eq!(joined.value(2, "v").unwrap(), Value::Float(2.0));
    }
}
