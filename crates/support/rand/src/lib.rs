//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses, backed by a
//! deterministic xoshiro256++ generator seeded with splitmix64. See
//! `crates/support/README.md` for scope and caveats.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over a bounded interval (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference to behave the same way).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics when the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let extra = if inclusive { 1 } else { 0 };
                let span = (hi as i128 - lo as i128 + extra) as u128;
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let f = <f64 as Standard>::sample(rng) as $t;
                let v = lo + f * (hi - lo);
                // Guard the (measure-zero) case of rounding up to an excluded bound.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range. Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
    /// Deterministic given the seed, with good statistical quality for the
    /// simulation / search workloads in this repository (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` for an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_int_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        for _ in 0..500 {
            let v = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
