//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `bench_function` / `iter` / `criterion_group!` /
//! `criterion_main!` surface with a simple warm-up + timed-batch harness that
//! prints the mean wall-clock time per iteration. Good enough to compare the
//! relative cost of two code paths; not a statistical benchmarking framework.
//! See `crates/support/README.md` for scope and caveats.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    /// Mean time per iteration measured by the last `iter` call.
    pub(crate) mean: Duration,
    target: Duration,
}

impl Bencher {
    /// Measure `f`: a short warm-up, then as many timed iterations as fit the
    /// time budget (at least 10).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~10% of the budget is spent, at least once.
        let warmup_budget = self.target / 10;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let timed_iters = if per_iter.is_zero() {
            1000
        } else {
            ((self.target.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(10, 1_000_000)
        };

        let start = Instant::now();
        for _ in 0..timed_iters {
            black_box(f());
        }
        self.mean = start.elapsed() / timed_iters as u32;
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Register and immediately run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            target: self.target,
        };
        f(&mut b);
        println!("bench {name:<50} {:>12.3?}/iter", b.mean);
        self
    }

    /// Override the per-benchmark time budget.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.target = target;
        self
    }

    /// Accepted for API compatibility; this harness sizes iteration counts
    /// from the time budget, not a fixed sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Group benchmark functions, mirroring `criterion_group!` (both the simple
/// form and the `name/config/targets` form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            target: Duration::from_millis(20),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
