//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! [`test_runner::ProptestConfig`], and strategies for numeric ranges,
//! booleans, vectors and options. Inputs are generated from a deterministic
//! RNG derived from the test's name and the case index, so every run explores
//! the same cases and failures are reproducible. See
//! `crates/support/README.md` for scope and caveats.

use rand::rngs::StdRng;

/// Random-input generation strategies.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Uniform choice among a fixed array of alternatives.
    impl<T: Clone, const N: usize> Strategy for [T; N] {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self[rng.gen_range(0..N)].clone()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element`-generated values whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` with probability 1/4, otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property test runs, and how they are seeded.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Base seed mixed with the test name and case index.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                seed: 0x5eed,
            }
        }
    }
}

/// Derive the deterministic RNG for one test case.
#[doc(hidden)]
pub fn case_rng(test_name: &str, base_seed: u64, case: u32) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the base seed and the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ base_seed.rotate_left(17) ^ ((case as u64) << 32 | case as u64))
}

/// Assert inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Define property-based tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a standard test that runs the body for `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::case_rng(stringify!($name), config.seed, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut __proptest_rng,
                    );
                )*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_and_option_strategies(
            v in crate::collection::vec(0u8..5, 1..20),
            o in crate::option::of(0i64..4),
            b in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(i) = o {
                prop_assert!((0..4).contains(&i));
            }
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 1, 2).gen();
        let b: u64 = crate::case_rng("t", 1, 2).gen();
        let c: u64 = crate::case_rng("t", 1, 3).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
