//! Query templates (paper Definition 1).
//!
//! A query template `T = (F, A, P, K)` fixes the aggregation-function set, the aggregatable
//! attributes, the attribute combination forming the `WHERE` clause, and the foreign-key
//! attributes. Each template spans a *query pool* — the set of concrete predicate-aware SQL
//! queries obtainable by instantiating the template (Definition 2); the pool is what the SQL
//! Query Generation component searches.

use feataug_tabular::AggFunc;

/// A query template `T = (F, A, P, K)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// Aggregation function set `F`.
    pub agg_funcs: Vec<AggFunc>,
    /// Aggregatable attributes `A`.
    pub agg_columns: Vec<String>,
    /// The fixed attribute combination `P` forming the `WHERE` clause.
    pub predicate_attrs: Vec<String>,
    /// Foreign-key attributes `K` (group-by keys).
    pub key_columns: Vec<String>,
}

impl QueryTemplate {
    /// Build a template.
    pub fn new(
        agg_funcs: Vec<AggFunc>,
        agg_columns: Vec<String>,
        predicate_attrs: Vec<String>,
        key_columns: Vec<String>,
    ) -> Self {
        QueryTemplate {
            agg_funcs,
            agg_columns,
            predicate_attrs,
            key_columns,
        }
    }

    /// A template with an empty `WHERE`-clause attribute set — the degenerate, Featuretools-like
    /// template whose pool contains only predicate-free queries.
    pub fn without_predicates(
        agg_funcs: Vec<AggFunc>,
        agg_columns: Vec<String>,
        key_columns: Vec<String>,
    ) -> Self {
        QueryTemplate {
            agg_funcs,
            agg_columns,
            predicate_attrs: Vec::new(),
            key_columns,
        }
    }

    /// One-hot encode the template's predicate-attribute combination against a universe of
    /// candidate attributes (paper Section VI-C "Encoding Query Templates"). Attributes of the
    /// template that are missing from the universe are ignored.
    pub fn encode_against(&self, universe: &[String]) -> Vec<f64> {
        universe
            .iter()
            .map(|attr| {
                if self.predicate_attrs.iter().any(|p| p == attr) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Number of predicate attributes (the template's depth in the QTI search tree).
    pub fn depth(&self) -> usize {
        self.predicate_attrs.len()
    }

    /// A short human-readable label, e.g. `{department, timestamp}`.
    pub fn label(&self) -> String {
        format!("{{{}}}", self.predicate_attrs.join(", "))
    }
}

impl std::fmt::Display for QueryTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T(F=[{}], A=[{}], P=[{}], K=[{}])",
            self.agg_funcs
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(","),
            self.agg_columns.join(","),
            self.predicate_attrs.join(","),
            self.key_columns.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> QueryTemplate {
        QueryTemplate::new(
            vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Max],
            vec!["pprice".into()],
            vec!["department".into(), "timestamp".into()],
            vec!["cname".into()],
        )
    }

    #[test]
    fn encode_against_universe() {
        let t = template();
        let universe = vec![
            "department".to_string(),
            "brand".to_string(),
            "timestamp".to_string(),
            "action".to_string(),
        ];
        assert_eq!(t.encode_against(&universe), vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn without_predicates_has_empty_p() {
        let t = QueryTemplate::without_predicates(
            vec![AggFunc::Sum],
            vec!["x".into()],
            vec!["k".into()],
        );
        assert!(t.predicate_attrs.is_empty());
        assert_eq!(t.encode_against(&["a".to_string()]), vec![0.0]);
    }

    #[test]
    fn display_and_label() {
        let t = template();
        assert_eq!(t.label(), "{department, timestamp}");
        let s = t.to_string();
        assert!(s.contains("SUM"));
        assert!(s.contains("P=[department,timestamp]"));
    }
}
