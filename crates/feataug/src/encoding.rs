//! Converting tables into ML datasets.
//!
//! The downstream models consume dense `f64` matrices, so an (augmented) training table has to
//! be encoded: numeric columns pass through, booleans become 0/1, datetimes their epoch seconds,
//! categorical columns are ordinal-encoded by dictionary code (or one-hot when the cardinality
//! is small), and NULLs become NaN for the model's imputation to handle.

use feataug_ml::{Dataset, Matrix, Task};
use feataug_tabular::{Column, DataType, Table};

/// Maximum cardinality for which categorical columns are one-hot encoded; larger dictionaries
/// fall back to ordinal codes.
pub const ONE_HOT_MAX: usize = 8;

/// Encode a training table into a [`Dataset`].
///
/// * `label_column` becomes `y` (NaN labels are mapped to 0).
/// * `exclude` columns (typically the key columns) are dropped.
/// * Everything else becomes one or more feature columns.
pub fn table_to_dataset(
    table: &Table,
    label_column: &str,
    exclude: &[String],
    task: Task,
) -> Dataset {
    let labels: Vec<f64> = table
        .column(label_column)
        .expect("label column exists")
        .to_f64_vec()
        .into_iter()
        .map(|v| v.unwrap_or(0.0))
        .collect();

    let mut feature_names: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<f64>> = Vec::new();

    for field in table.schema().fields() {
        if field.name == label_column || exclude.contains(&field.name) {
            continue;
        }
        let col = table.column(&field.name).expect("schema-consistent");
        match (&field.dtype, col) {
            (DataType::Categorical, Column::Cat(cat)) if cat.cardinality() <= ONE_HOT_MAX => {
                // One-hot encode small categoricals.
                for (code, value) in cat.dictionary().iter().enumerate() {
                    feature_names.push(format!("{}={}", field.name, value));
                    columns.push(
                        cat.codes()
                            .iter()
                            .map(|c| match c {
                                Some(x) if *x as usize == code => 1.0,
                                Some(_) => 0.0,
                                None => f64::NAN,
                            })
                            .collect(),
                    );
                }
            }
            _ => {
                feature_names.push(field.name.clone());
                columns.push(
                    col.to_f64_vec()
                        .into_iter()
                        .map(|v| v.unwrap_or(f64::NAN))
                        .collect(),
                );
            }
        }
    }

    let rows = table.num_rows();
    let cols = columns.len();
    let mut data = vec![0.0; rows * cols];
    for (j, column) in columns.iter().enumerate() {
        for (i, v) in column.iter().enumerate() {
            data[i * cols + j] = *v;
        }
    }
    Dataset::new(Matrix::new(data, rows, cols), labels, feature_names, task)
}

/// Extract a single feature column of an augmented table as an `f64` vector aligned with the
/// table's rows (NULL → NaN). This is what the search loop hands to the low-cost proxies.
pub fn feature_vector(table: &Table, feature_column: &str) -> Vec<f64> {
    table
        .column(feature_column)
        .expect("feature column exists")
        .to_f64_vec()
        .into_iter()
        .map(|v| v.unwrap_or(f64::NAN))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::Column;

    fn table() -> Table {
        let mut t = Table::new("t");
        t.add_column("user", Column::from_strs(&["u1", "u2", "u3"]))
            .unwrap();
        t.add_column("age", Column::from_i64s(&[30, 40, 50]))
            .unwrap();
        t.add_column("gender", Column::from_strs(&["F", "M", "F"]))
            .unwrap();
        t.add_column("feat", Column::from_opt_f64s(&[Some(1.5), None, Some(3.0)]))
            .unwrap();
        t.add_column("label", Column::from_i64s(&[1, 0, 1]))
            .unwrap();
        t
    }

    #[test]
    fn encodes_numeric_onehot_and_labels() {
        let ds = table_to_dataset(
            &table(),
            "label",
            &["user".to_string()],
            Task::BinaryClassification,
        );
        assert_eq!(ds.len(), 3);
        // age + gender one-hot (2) + feat = 4 features.
        assert_eq!(ds.n_features(), 4);
        assert_eq!(ds.y, vec![1.0, 0.0, 1.0]);
        assert!(ds.feature_names.contains(&"gender=F".to_string()));
        assert!(ds.feature_names.contains(&"gender=M".to_string()));
        // NULL feature value becomes NaN.
        let feat_idx = ds.feature_names.iter().position(|n| n == "feat").unwrap();
        assert!(ds.x.get(1, feat_idx).is_nan());
        assert_eq!(ds.x.get(0, feat_idx), 1.5);
    }

    #[test]
    fn high_cardinality_categorical_is_ordinal() {
        let mut t = Table::new("t");
        let values: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        t.add_column("big", Column::from_strings(&values)).unwrap();
        t.add_column(
            "label",
            Column::from_i64s(&(0..20).map(|i| i % 2).collect::<Vec<_>>()),
        )
        .unwrap();
        let ds = table_to_dataset(&t, "label", &[], Task::BinaryClassification);
        assert_eq!(ds.n_features(), 1);
        assert_eq!(ds.x.get(5, 0), 5.0); // ordinal code
    }

    #[test]
    fn feature_vector_maps_null_to_nan() {
        let v = feature_vector(&table(), "feat");
        assert_eq!(v.len(), 3);
        assert!(v[1].is_nan());
        assert_eq!(v[2], 3.0);
    }
}
