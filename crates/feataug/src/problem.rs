//! The feature-augmentation problem instance (paper Section III), and the
//! validation errors a malformed instance surfaces ([`AugTaskError`]).

use std::fmt;
use std::sync::Arc;

use feataug_ml::Task;
use feataug_tabular::{DataType, Table};

/// Why an [`AugTask`] cannot be fitted. Produced by [`AugTask::validate`],
/// which [`crate::pipeline::FeatAug::fit`] runs before any search work — a
/// misnamed column fails fast with a description instead of panicking deep
/// inside the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AugTaskError {
    /// The label column is absent from the training table.
    MissingLabelColumn {
        /// The configured label column name.
        column: String,
    },
    /// The task has an empty foreign key (`key_columns` is empty).
    NoKeyColumns,
    /// A foreign-key column is absent from one of the tables.
    MissingKeyColumn {
        /// Which table lacks it: `"train"` or `"relevant"`.
        table: &'static str,
        /// The missing column.
        column: String,
    },
    /// A foreign-key column exists in both tables but with incompatible
    /// types — its keys would never match (`int` keys never join `datetime`
    /// keys, mirroring [`feataug_tabular::join::KeyMapper`]).
    KeyTypeMismatch {
        /// The key column.
        column: String,
        /// Its type in the training table.
        train: DataType,
        /// Its type in the relevant table.
        relevant: DataType,
    },
    /// A configured aggregation attribute is absent from the relevant table.
    MissingAggColumn {
        /// The missing column.
        column: String,
    },
    /// A configured predicate attribute is absent from the relevant table.
    MissingPredicateAttr {
        /// The missing column.
        column: String,
    },
}

impl fmt::Display for AugTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugTaskError::MissingLabelColumn { column } => {
                write!(f, "label column `{column}` not found in the training table")
            }
            AugTaskError::NoKeyColumns => {
                write!(f, "the task needs at least one foreign-key column")
            }
            AugTaskError::MissingKeyColumn { table, column } => {
                write!(f, "key column `{column}` not found in the {table} table")
            }
            AugTaskError::KeyTypeMismatch {
                column,
                train,
                relevant,
            } => write!(
                f,
                "key column `{column}` is {} in the training table but {} in the relevant \
                 table; its keys would never match",
                train.name(),
                relevant.name()
            ),
            AugTaskError::MissingAggColumn { column } => {
                write!(
                    f,
                    "aggregation column `{column}` not found in the relevant table"
                )
            }
            AugTaskError::MissingPredicateAttr { column } => {
                write!(
                    f,
                    "predicate attribute `{column}` not found in the relevant table"
                )
            }
        }
    }
}

impl std::error::Error for AugTaskError {}

/// A feature-augmentation task: the training table `D`, the relevant table `R`, the foreign-key
/// columns linking them, the label, the downstream learning task, and the attribute sets
/// FeatAug may use for aggregation (`A`) and predicates (`attr`).
///
/// The tables are held under `Arc` so a fitted model (and every sub-task of a
/// multi-source chain) can share them without further clones — cloning a task
/// is a refcount bump. `&task.train` still derefs to `&Table` everywhere;
/// mutate a table in place with [`Arc::make_mut`] (tests do).
///
/// An `AugTask` names its one relevant table explicitly. When the relevant
/// data lives several joins away — or which table is even worth joining is
/// itself the question — [`crate::schema::SchemaTask`] takes a registered
/// [`crate::schema::SchemaGraph`] instead and discovers the per-path
/// `AugTask`s by budgeted join-path search.
#[derive(Debug, Clone)]
pub struct AugTask {
    /// Training table `D` (contains the key columns and the label column).
    pub train: Arc<Table>,
    /// Relevant table `R` (contains the key columns and the candidate feature attributes).
    pub relevant: Arc<Table>,
    /// Foreign-key / group-by columns shared by `D` and `R` (paper's `K`).
    pub key_columns: Vec<String>,
    /// Name of the label column in `train`.
    pub label_column: String,
    /// Downstream learning task.
    pub task: Task,
    /// Attributes of `R` that may be aggregated (paper's `A`). Defaults to every numeric
    /// non-key column of `R` when left empty.
    pub agg_columns: Vec<String>,
    /// Attributes of `R` offered as candidate predicate attributes (paper's `attr`). Defaults to
    /// every non-key column of `R` when left empty.
    pub predicate_attrs: Vec<String>,
}

impl AugTask {
    /// Build a task; `agg_columns` / `predicate_attrs` start empty and are resolved to their
    /// defaults by [`AugTask::resolved_agg_columns`] / [`AugTask::resolved_predicate_attrs`].
    pub fn new(
        train: impl Into<Arc<Table>>,
        relevant: impl Into<Arc<Table>>,
        key_columns: Vec<String>,
        label_column: impl Into<String>,
        task: Task,
    ) -> Self {
        AugTask {
            train: train.into(),
            relevant: relevant.into(),
            key_columns,
            label_column: label_column.into(),
            task,
            agg_columns: Vec::new(),
            predicate_attrs: Vec::new(),
        }
    }

    /// Builder-style setter for the aggregation attribute set `A`.
    pub fn with_agg_columns(mut self, cols: Vec<String>) -> Self {
        self.agg_columns = cols;
        self
    }

    /// Builder-style setter for the candidate predicate attribute set `attr`.
    pub fn with_predicate_attrs(mut self, attrs: Vec<String>) -> Self {
        self.predicate_attrs = attrs;
        self
    }

    /// Key columns as `&str` slices (convenience for the tabular API).
    pub fn keys(&self) -> Vec<&str> {
        self.key_columns.iter().map(|s| s.as_str()).collect()
    }

    /// The aggregation attributes to use: the configured set, or every numeric-like non-key
    /// column of `R`.
    pub fn resolved_agg_columns(&self) -> Vec<String> {
        if !self.agg_columns.is_empty() {
            return self.agg_columns.clone();
        }
        self.relevant
            .schema()
            .fields()
            .iter()
            .filter(|f| f.dtype.is_numeric_like() && !self.key_columns.contains(&f.name))
            .map(|f| f.name.clone())
            .collect()
    }

    /// The candidate predicate attributes to use: the configured set, or every non-key column of
    /// `R`.
    pub fn resolved_predicate_attrs(&self) -> Vec<String> {
        if !self.predicate_attrs.is_empty() {
            return self.predicate_attrs.clone();
        }
        self.relevant
            .schema()
            .fields()
            .iter()
            .filter(|f| !self.key_columns.contains(&f.name))
            .map(|f| f.name.clone())
            .collect()
    }

    /// Check the task is well-formed: the label column exists, the foreign
    /// key is non-empty and present in both tables with compatible types, and
    /// every configured aggregation / predicate attribute exists in the
    /// relevant table. [`crate::pipeline::FeatAug::fit`] calls this before
    /// any search work, so a malformed task fails fast with a description
    /// instead of panicking mid-pipeline.
    pub fn validate(&self) -> Result<(), AugTaskError> {
        if self.train.column(&self.label_column).is_err() {
            return Err(AugTaskError::MissingLabelColumn {
                column: self.label_column.clone(),
            });
        }
        if self.key_columns.is_empty() {
            return Err(AugTaskError::NoKeyColumns);
        }
        for key in &self.key_columns {
            let train = self
                .train
                .dtype(key)
                .map_err(|_| AugTaskError::MissingKeyColumn {
                    table: "train",
                    column: key.clone(),
                })?;
            let relevant =
                self.relevant
                    .dtype(key)
                    .map_err(|_| AugTaskError::MissingKeyColumn {
                        table: "relevant",
                        column: key.clone(),
                    })?;
            if train != relevant {
                return Err(AugTaskError::KeyTypeMismatch {
                    column: key.clone(),
                    train,
                    relevant,
                });
            }
        }
        for column in &self.agg_columns {
            if self.relevant.column(column).is_err() {
                return Err(AugTaskError::MissingAggColumn {
                    column: column.clone(),
                });
            }
        }
        for column in &self.predicate_attrs {
            if self.relevant.column(column).is_err() {
                return Err(AugTaskError::MissingPredicateAttr {
                    column: column.clone(),
                });
            }
        }
        Ok(())
    }

    /// The label vector of the training table, as `f64` (NULL labels become
    /// NaN). Errors when the label column is absent — run
    /// [`AugTask::validate`] up front to surface that (and every other
    /// malformation) before any work happens.
    pub fn labels(&self) -> Result<Vec<f64>, AugTaskError> {
        let column = self.train.column(&self.label_column).map_err(|_| {
            AugTaskError::MissingLabelColumn {
                column: self.label_column.clone(),
            }
        })?;
        Ok(column
            .to_f64_vec()
            .into_iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::Column;

    fn toy_task() -> AugTask {
        let mut train = Table::new("d");
        train
            .add_column("k", Column::from_strs(&["a", "b"]))
            .unwrap();
        train
            .add_column("age", Column::from_i64s(&[30, 40]))
            .unwrap();
        train
            .add_column("label", Column::from_i64s(&[1, 0]))
            .unwrap();
        let mut relevant = Table::new("r");
        relevant
            .add_column("k", Column::from_strs(&["a", "a", "b"]))
            .unwrap();
        relevant
            .add_column("x", Column::from_f64s(&[1.0, 2.0, 3.0]))
            .unwrap();
        relevant
            .add_column("dept", Column::from_strs(&["e", "h", "e"]))
            .unwrap();
        AugTask::new(
            train,
            relevant,
            vec!["k".into()],
            "label",
            Task::BinaryClassification,
        )
    }

    #[test]
    fn resolved_defaults_exclude_keys() {
        let task = toy_task();
        assert_eq!(task.resolved_agg_columns(), vec!["x".to_string()]);
        assert_eq!(
            task.resolved_predicate_attrs(),
            vec!["x".to_string(), "dept".to_string()]
        );
    }

    #[test]
    fn builders_override_defaults() {
        let task = toy_task()
            .with_agg_columns(vec!["x".into()])
            .with_predicate_attrs(vec!["dept".into()]);
        assert_eq!(task.resolved_predicate_attrs(), vec!["dept".to_string()]);
        assert_eq!(task.keys(), vec!["k"]);
    }

    #[test]
    fn labels_extracted_as_f64() {
        let task = toy_task();
        assert_eq!(task.labels().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn validate_accepts_well_formed_tasks() {
        assert_eq!(toy_task().validate(), Ok(()));
        // Configured attribute sets that exist are fine too.
        let task = toy_task()
            .with_agg_columns(vec!["x".into()])
            .with_predicate_attrs(vec!["dept".into(), "x".into()]);
        assert_eq!(task.validate(), Ok(()));
    }

    #[test]
    fn validate_reports_missing_label_instead_of_panicking() {
        let mut task = toy_task();
        task.label_column = "nope".into();
        assert_eq!(
            task.validate(),
            Err(AugTaskError::MissingLabelColumn {
                column: "nope".into()
            })
        );
        assert!(task.labels().is_err(), "labels must error, not panic");
        assert!(task.validate().unwrap_err().to_string().contains("nope"));
    }

    #[test]
    fn validate_checks_key_presence_and_types() {
        let mut task = toy_task();
        task.key_columns = vec![];
        assert_eq!(task.validate(), Err(AugTaskError::NoKeyColumns));

        let mut task = toy_task();
        task.key_columns = vec!["missing".into()];
        assert_eq!(
            task.validate(),
            Err(AugTaskError::MissingKeyColumn {
                table: "train",
                column: "missing".into()
            })
        );

        // Key present in train only.
        let mut task = toy_task();
        task.key_columns = vec!["age".into()];
        assert_eq!(
            task.validate(),
            Err(AugTaskError::MissingKeyColumn {
                table: "relevant",
                column: "age".into()
            })
        );

        // Key present on both sides with clashing types: int vs categorical.
        let mut task = toy_task();
        Arc::make_mut(&mut task.train)
            .add_column("kk", Column::from_i64s(&[1, 2]))
            .unwrap();
        Arc::make_mut(&mut task.relevant)
            .add_column("kk", Column::from_strs(&["1", "2", "3"]))
            .unwrap();
        task.key_columns = vec!["kk".into()];
        match task.validate() {
            Err(AugTaskError::KeyTypeMismatch { column, .. }) => assert_eq!(column, "kk"),
            other => panic!("expected KeyTypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn validate_checks_configured_attribute_sets() {
        let task = toy_task().with_agg_columns(vec!["ghost".into()]);
        assert_eq!(
            task.validate(),
            Err(AugTaskError::MissingAggColumn {
                column: "ghost".into()
            })
        );
        let task = toy_task().with_predicate_attrs(vec!["phantom".into()]);
        assert_eq!(
            task.validate(),
            Err(AugTaskError::MissingPredicateAttr {
                column: "phantom".into()
            })
        );
    }
}
