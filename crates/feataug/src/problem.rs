//! The feature-augmentation problem instance (paper Section III).

use feataug_ml::Task;
use feataug_tabular::Table;

/// A feature-augmentation task: the training table `D`, the relevant table `R`, the foreign-key
/// columns linking them, the label, the downstream learning task, and the attribute sets
/// FeatAug may use for aggregation (`A`) and predicates (`attr`).
#[derive(Debug, Clone)]
pub struct AugTask {
    /// Training table `D` (contains the key columns and the label column).
    pub train: Table,
    /// Relevant table `R` (contains the key columns and the candidate feature attributes).
    pub relevant: Table,
    /// Foreign-key / group-by columns shared by `D` and `R` (paper's `K`).
    pub key_columns: Vec<String>,
    /// Name of the label column in `train`.
    pub label_column: String,
    /// Downstream learning task.
    pub task: Task,
    /// Attributes of `R` that may be aggregated (paper's `A`). Defaults to every numeric
    /// non-key column of `R` when left empty.
    pub agg_columns: Vec<String>,
    /// Attributes of `R` offered as candidate predicate attributes (paper's `attr`). Defaults to
    /// every non-key column of `R` when left empty.
    pub predicate_attrs: Vec<String>,
}

impl AugTask {
    /// Build a task; `agg_columns` / `predicate_attrs` start empty and are resolved to their
    /// defaults by [`AugTask::resolved_agg_columns`] / [`AugTask::resolved_predicate_attrs`].
    pub fn new(
        train: Table,
        relevant: Table,
        key_columns: Vec<String>,
        label_column: impl Into<String>,
        task: Task,
    ) -> Self {
        AugTask {
            train,
            relevant,
            key_columns,
            label_column: label_column.into(),
            task,
            agg_columns: Vec::new(),
            predicate_attrs: Vec::new(),
        }
    }

    /// Builder-style setter for the aggregation attribute set `A`.
    pub fn with_agg_columns(mut self, cols: Vec<String>) -> Self {
        self.agg_columns = cols;
        self
    }

    /// Builder-style setter for the candidate predicate attribute set `attr`.
    pub fn with_predicate_attrs(mut self, attrs: Vec<String>) -> Self {
        self.predicate_attrs = attrs;
        self
    }

    /// Key columns as `&str` slices (convenience for the tabular API).
    pub fn keys(&self) -> Vec<&str> {
        self.key_columns.iter().map(|s| s.as_str()).collect()
    }

    /// The aggregation attributes to use: the configured set, or every numeric-like non-key
    /// column of `R`.
    pub fn resolved_agg_columns(&self) -> Vec<String> {
        if !self.agg_columns.is_empty() {
            return self.agg_columns.clone();
        }
        self.relevant
            .schema()
            .fields()
            .iter()
            .filter(|f| f.dtype.is_numeric_like() && !self.key_columns.contains(&f.name))
            .map(|f| f.name.clone())
            .collect()
    }

    /// The candidate predicate attributes to use: the configured set, or every non-key column of
    /// `R`.
    pub fn resolved_predicate_attrs(&self) -> Vec<String> {
        if !self.predicate_attrs.is_empty() {
            return self.predicate_attrs.clone();
        }
        self.relevant
            .schema()
            .fields()
            .iter()
            .filter(|f| !self.key_columns.contains(&f.name))
            .map(|f| f.name.clone())
            .collect()
    }

    /// The label vector of the training table, as `f64`.
    pub fn labels(&self) -> Vec<f64> {
        self.train
            .column(&self.label_column)
            .expect("label column exists")
            .to_f64_vec()
            .into_iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::Column;

    fn toy_task() -> AugTask {
        let mut train = Table::new("d");
        train
            .add_column("k", Column::from_strs(&["a", "b"]))
            .unwrap();
        train
            .add_column("age", Column::from_i64s(&[30, 40]))
            .unwrap();
        train
            .add_column("label", Column::from_i64s(&[1, 0]))
            .unwrap();
        let mut relevant = Table::new("r");
        relevant
            .add_column("k", Column::from_strs(&["a", "a", "b"]))
            .unwrap();
        relevant
            .add_column("x", Column::from_f64s(&[1.0, 2.0, 3.0]))
            .unwrap();
        relevant
            .add_column("dept", Column::from_strs(&["e", "h", "e"]))
            .unwrap();
        AugTask::new(
            train,
            relevant,
            vec!["k".into()],
            "label",
            Task::BinaryClassification,
        )
    }

    #[test]
    fn resolved_defaults_exclude_keys() {
        let task = toy_task();
        assert_eq!(task.resolved_agg_columns(), vec!["x".to_string()]);
        assert_eq!(
            task.resolved_predicate_attrs(),
            vec!["x".to_string(), "dept".to_string()]
        );
    }

    #[test]
    fn builders_override_defaults() {
        let task = toy_task()
            .with_agg_columns(vec!["x".into()])
            .with_predicate_attrs(vec!["dept".into()]);
        assert_eq!(task.resolved_predicate_attrs(), vec!["dept".to_string()]);
        assert_eq!(task.keys(), vec!["k"]);
    }

    #[test]
    fn labels_extracted_as_f64() {
        let task = toy_task();
        assert_eq!(task.labels(), vec![1.0, 0.0]);
    }
}
