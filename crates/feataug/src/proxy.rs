//! Low-cost proxies for feature effectiveness.
//!
//! Training the downstream model for every candidate query is expensive; the warm-up phase of
//! SQL Query Generation and the Query Template Identification component instead score candidate
//! features with a cheap statistic (paper Section V-C, Section VI-C Optimization 1, and the
//! proxy comparison in Table VIII: Spearman correlation, mutual information, or a logistic /
//! linear model).

use feataug_fsel::{mutual_information, spearman};
use feataug_ml::linear::{LinearConfig, LinearRegression, LogisticRegression};
use feataug_ml::model::Model;
use feataug_ml::{Dataset, Matrix, Metric, Task};

/// The low-cost proxy used to pre-score candidate features / query templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowCostProxy {
    /// Mutual information between the feature and the label (paper default, "MI").
    MutualInformation,
    /// Absolute Spearman rank correlation ("SC").
    Spearman,
    /// Validation performance of a single-feature linear / logistic model ("LR").
    LinearModel,
}

impl LowCostProxy {
    /// Every proxy, in the order of the paper's Table VIII columns.
    pub fn all() -> &'static [LowCostProxy] {
        &[
            LowCostProxy::Spearman,
            LowCostProxy::MutualInformation,
            LowCostProxy::LinearModel,
        ]
    }

    /// Paper-style short name.
    pub fn name(&self) -> &'static str {
        match self {
            LowCostProxy::MutualInformation => "MI",
            LowCostProxy::Spearman => "SC",
            LowCostProxy::LinearModel => "LR",
        }
    }

    /// Score a candidate feature vector against the labels; **higher is better**.
    ///
    /// `feature` may contain NaN for rows whose key had no matching relevant rows; the proxies
    /// handle that (MI treats missingness as its own bin, SC ranks missing values neutrally, the
    /// linear proxy imputes).
    pub fn score(&self, feature: &[f64], labels: &[f64], task: Task) -> f64 {
        let classification = task.is_classification();
        match self {
            LowCostProxy::MutualInformation => mutual_information(feature, labels, classification),
            LowCostProxy::Spearman => spearman(feature, labels).abs(),
            LowCostProxy::LinearModel => {
                let rows: Vec<Vec<f64>> = feature.iter().map(|&v| vec![v]).collect();
                let data = Dataset::new(
                    Matrix::from_rows(&rows),
                    labels.to_vec(),
                    vec!["candidate".to_string()],
                    task,
                );
                let (train, valid) = data.split2(0.7, 13);
                if train.is_empty() || valid.is_empty() {
                    return 0.0;
                }
                let metric = Metric::for_task(task);
                let preds = match task {
                    Task::Regression => {
                        let mut m = LinearRegression::new(LinearConfig::default());
                        m.fit(&train);
                        m.predict(&valid.x)
                    }
                    _ => {
                        let mut m = LogisticRegression::new(LinearConfig::default());
                        m.fit(&train);
                        m.predict(&valid.x)
                    }
                };
                let value = metric.compute(&valid.y, &preds);
                // Convert to "higher is better".
                if metric.higher_is_better() {
                    value
                } else {
                    -value
                }
            }
        }
    }

    /// The proxy value as a loss (lower is better) so it can drive the minimising optimizer.
    pub fn loss(&self, feature: &[f64], labels: &[f64], task: Task) -> f64 {
        -self.score(feature, labels, task)
    }
}

impl std::fmt::Display for LowCostProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_labels(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 2) as f64).collect()
    }

    #[test]
    fn proxies_prefer_informative_features() {
        let labels = binary_labels(200);
        let informative: Vec<f64> = labels.iter().map(|&y| y * 3.0 + 0.1).collect();
        let noise: Vec<f64> = (0..200).map(|i| ((i * 37) % 23) as f64).collect();
        for proxy in LowCostProxy::all() {
            let s_info = proxy.score(&informative, &labels, Task::BinaryClassification);
            let s_noise = proxy.score(&noise, &labels, Task::BinaryClassification);
            assert!(
                s_info > s_noise,
                "{proxy} scored informative {s_info} <= noise {s_noise}"
            );
        }
    }

    #[test]
    fn proxies_work_for_regression() {
        let y: Vec<f64> = (0..150).map(|i| i as f64 * 0.5).collect();
        let informative: Vec<f64> = y.iter().map(|v| v * 2.0 + 1.0).collect();
        let noise: Vec<f64> = (0..150).map(|i| ((i * 31) % 17) as f64).collect();
        for proxy in LowCostProxy::all() {
            let s_info = proxy.score(&informative, &y, Task::Regression);
            let s_noise = proxy.score(&noise, &y, Task::Regression);
            assert!(s_info > s_noise, "{proxy}: {s_info} vs {s_noise}");
        }
    }

    #[test]
    fn proxy_handles_nan_features() {
        let labels = binary_labels(100);
        let feature: Vec<f64> = labels
            .iter()
            .map(|&y| if y > 0.5 { 1.0 } else { f64::NAN })
            .collect();
        for proxy in LowCostProxy::all() {
            let s = proxy.score(&feature, &labels, Task::BinaryClassification);
            assert!(s.is_finite(), "{proxy} produced a non-finite score");
        }
    }

    #[test]
    fn loss_is_negated_score() {
        let labels = binary_labels(60);
        let feature: Vec<f64> = labels.iter().map(|&y| y + 0.5).collect();
        let p = LowCostProxy::MutualInformation;
        assert_eq!(
            p.loss(&feature, &labels, Task::BinaryClassification),
            -p.score(&feature, &labels, Task::BinaryClassification)
        );
    }

    #[test]
    fn names_match_table_viii() {
        assert_eq!(LowCostProxy::MutualInformation.name(), "MI");
        assert_eq!(LowCostProxy::Spearman.name(), "SC");
        assert_eq!(LowCostProxy::LinearModel.name(), "LR");
        assert_eq!(LowCostProxy::all().len(), 3);
    }
}
