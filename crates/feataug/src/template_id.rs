//! The Query Template Identification component (paper Section VI).
//!
//! When the user cannot supply the predicate-attribute combination `P`, FeatAug searches the
//! space of attribute combinations itself. The space of subsets of `attr` is explored as a tree
//! (layer `d` holds the combinations of `d` attributes) with **beam search**: only the top-β
//! nodes of each layer are expanded. Two optimisations make this practical:
//!
//! * **Optimization 1 — low-cost proxy**: a node's effectiveness is estimated by the best proxy
//!   score (mutual information by default) over a small sample of its query pool instead of by
//!   training the downstream model.
//! * **Optimization 2 — promising-template prediction**: a regression model over one-hot
//!   template encodings, trained on the nodes evaluated so far, predicts which children are
//!   worth evaluating; only the predicted top-β children are scored per layer.
//!
//! The component returns the `n` templates with the highest observed effectiveness; the SQL
//! Query Generation component then searches each of their pools.
//!
//! Every pool sample is executed through a shared [`QueryEngine`], so beam-search scoring pays
//! the table-compilation cost (group indexes, gather maps, column views) once per search rather
//! than once per sampled query. Each node's pool samples are materialised through the engine's
//! batch API ([`QueryEngine::feature_batch`]), fanning them across the worker pool, and
//! [`TemplateIdentifier::with_engine`] accepts a shared engine handle so the SQL Query
//! Generation component that runs next reuses everything this component compiled.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use feataug_ml::linear::{LinearConfig, LinearRegression};
use feataug_ml::model::Model;
use feataug_ml::{Dataset, Matrix, Task};
use feataug_tabular::AggFunc;

use crate::evaluation::FeatureEvaluator;
use crate::exec::QueryEngine;
use crate::problem::AugTask;
use crate::proxy::LowCostProxy;
use crate::query::{PredicateQuery, QueryCodec};
use crate::template::QueryTemplate;

/// Configuration of the Query Template Identification component.
#[derive(Debug, Clone)]
pub struct TemplateIdConfig {
    /// Beam width β: number of nodes expanded per layer.
    pub beam_width: usize,
    /// Maximum number of attributes in a template's `WHERE` combination (tree depth).
    pub max_depth: usize,
    /// Number of promising templates to return.
    pub n_templates: usize,
    /// Number of random queries sampled from a node's pool to estimate its effectiveness.
    pub pool_samples: usize,
    /// The low-cost proxy used when [`TemplateIdConfig::use_proxy`] is true.
    pub proxy: LowCostProxy,
    /// Optimization 1: score nodes with the proxy instead of the real model.
    pub use_proxy: bool,
    /// Optimization 2: prune children with the learned performance predictor.
    pub use_predictor: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemplateIdConfig {
    fn default() -> Self {
        TemplateIdConfig {
            beam_width: 2,
            max_depth: 4,
            n_templates: 8,
            pool_samples: 24,
            proxy: LowCostProxy::MutualInformation,
            use_proxy: true,
            use_predictor: true,
            seed: 42,
        }
    }
}

impl TemplateIdConfig {
    /// A smaller configuration for tests and quick examples.
    pub fn fast() -> Self {
        TemplateIdConfig {
            beam_width: 2,
            max_depth: 3,
            n_templates: 4,
            pool_samples: 10,
            ..TemplateIdConfig::default()
        }
    }
}

/// A template together with its estimated effectiveness (higher is better).
#[derive(Debug, Clone)]
pub struct ScoredTemplate {
    /// The query template (its `P` is the node's attribute combination).
    pub template: QueryTemplate,
    /// Estimated effectiveness: proxy score, or negated real validation loss.
    pub effectiveness: f64,
}

/// The Query Template Identification component.
pub struct TemplateIdentifier<'a, 'e> {
    task: &'a AugTask,
    evaluator: &'a FeatureEvaluator,
    agg_funcs: Vec<AggFunc>,
    cfg: TemplateIdConfig,
    engine: QueryEngine<'e>,
}

impl<'a, 'e> TemplateIdentifier<'a, 'e> {
    /// Build an identifier. `agg_funcs` is the aggregation-function set `F` shared by every
    /// candidate template. Pool samples of every node are executed through one shared
    /// [`QueryEngine`], so the group indexes and column views built for the first node are
    /// reused by every later beam-search layer.
    pub fn new(
        task: &'a AugTask,
        evaluator: &'a FeatureEvaluator,
        agg_funcs: Vec<AggFunc>,
        cfg: TemplateIdConfig,
    ) -> TemplateIdentifier<'a, 'a> {
        TemplateIdentifier::with_engine(
            task,
            evaluator,
            agg_funcs,
            cfg,
            QueryEngine::new(&task.train, &task.relevant),
        )
    }

    /// Build an identifier that scores pool samples through `engine` — a (clone of a) shared
    /// [`QueryEngine`] compiled over the *same* `(train, relevant)` pair as `task`, so later
    /// components reuse the group indexes and column views beam search compiles here. The
    /// engine's lifetime is independent of the task borrow (epoch-versioned engines are
    /// invariant in their table lifetime, so a `'static` engine must not be forced down to
    /// the task's).
    pub fn with_engine(
        task: &'a AugTask,
        evaluator: &'a FeatureEvaluator,
        agg_funcs: Vec<AggFunc>,
        cfg: TemplateIdConfig,
        engine: QueryEngine<'e>,
    ) -> Self {
        TemplateIdentifier {
            task,
            evaluator,
            agg_funcs,
            cfg,
            engine,
        }
    }

    /// The execution engine this identifier scores pool samples through.
    pub fn engine(&self) -> &QueryEngine<'e> {
        &self.engine
    }

    /// Build the template whose `WHERE` combination is `attrs`.
    pub fn make_template(&self, attrs: &[String]) -> QueryTemplate {
        QueryTemplate::new(
            self.agg_funcs.clone(),
            self.task.resolved_agg_columns(),
            attrs.to_vec(),
            self.task.key_columns.clone(),
        )
    }

    /// Estimate the effectiveness of one attribute combination by sampling its query pool.
    /// Higher is better.
    ///
    /// All pool samples are drawn first (so the RNG stream is identical to the serial
    /// formulation), then materialised in one [`QueryEngine::feature_batch`] fan-out; scoring
    /// (proxy, or real model when Optimization 1 is off) stays serial and order-stable.
    pub fn node_effectiveness(&self, attrs: &[String], rng: &mut StdRng) -> f64 {
        let template = self.make_template(attrs);
        let Ok(codec) = QueryCodec::build(&template, &self.task.relevant) else {
            return f64::NEG_INFINITY;
        };
        let Ok(labels) = self.task.labels() else {
            return f64::NEG_INFINITY;
        };
        let queries: Vec<PredicateQuery> = (0..self.cfg.pool_samples.max(1))
            .map(|_| codec.decode(&codec.space().sample(rng)))
            .collect();
        let mut best = f64::NEG_INFINITY;
        for materialised in self.engine.feature_batch(&queries) {
            let Ok((name, feature)) = materialised else {
                continue;
            };
            if feature.iter().all(|v| !v.is_finite()) {
                continue;
            }
            let score = if self.cfg.use_proxy {
                self.cfg
                    .proxy
                    .score(&feature, &labels, self.evaluator.task())
            } else {
                -self.evaluator.loss_with_feature(&name, &feature)
            };
            if score > best {
                best = score;
            }
        }
        best
    }

    /// Run the identification and return the top templates (sorted by descending effectiveness)
    /// plus the wall-clock time spent, and the number of nodes actually evaluated.
    pub fn identify(&self) -> (Vec<ScoredTemplate>, Duration, usize) {
        let start = Instant::now();
        let attrs = self.task.resolved_predicate_attrs();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // All evaluated nodes: (attribute combination, effectiveness).
        let mut evaluated: Vec<(Vec<String>, f64)> = Vec::new();
        let mut evaluated_count = 0usize;

        // ---- Layer 1: single-attribute nodes are always fully evaluated (they also form the
        // initial training set of the predictor). -----------------------------------------
        let mut layer: Vec<(Vec<String>, f64)> = Vec::new();
        for attr in &attrs {
            let combo = vec![attr.clone()];
            let score = self.node_effectiveness(&combo, &mut rng);
            evaluated_count += 1;
            layer.push((combo.clone(), score));
            evaluated.push((combo, score));
        }
        layer.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut beam: Vec<(Vec<String>, f64)> =
            layer.iter().take(self.cfg.beam_width).cloned().collect();

        // ---- Deeper layers ---------------------------------------------------------------
        for _depth in 2..=self.cfg.max_depth.max(1) {
            if beam.is_empty() {
                break;
            }
            // Candidate children: each beam node extended by one unused attribute, deduplicated
            // by their attribute set.
            let mut children: Vec<Vec<String>> = Vec::new();
            for (combo, _) in &beam {
                for attr in &attrs {
                    if combo.contains(attr) {
                        continue;
                    }
                    let mut child = combo.clone();
                    child.push(attr.clone());
                    let mut sorted = child.clone();
                    sorted.sort();
                    if !children.iter().any(|c| {
                        let mut cs = c.clone();
                        cs.sort();
                        cs == sorted
                    }) {
                        children.push(child);
                    }
                }
            }
            if children.is_empty() {
                break;
            }

            // Optimization 2: keep only the predicted top-β children for real evaluation.
            let to_evaluate: Vec<Vec<String>> = if self.cfg.use_predictor && evaluated.len() >= 2 {
                let predictor = self.train_predictor(&attrs, &evaluated);
                let mut scored: Vec<(Vec<String>, f64)> = children
                    .into_iter()
                    .map(|c| {
                        let enc = self.make_template(&c).encode_against(&attrs);
                        let pred = predictor
                            .as_ref()
                            .map(|p| p.predict(&Matrix::from_rows(&[enc]))[0])
                            .unwrap_or(0.0);
                        (c, pred)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                scored
                    .into_iter()
                    .take(self.cfg.beam_width)
                    .map(|(c, _)| c)
                    .collect()
            } else {
                children
            };

            // Evaluate the surviving children and form the next beam.
            let mut next_layer: Vec<(Vec<String>, f64)> = Vec::new();
            for combo in to_evaluate {
                let score = self.node_effectiveness(&combo, &mut rng);
                evaluated_count += 1;
                next_layer.push((combo.clone(), score));
                evaluated.push((combo, score));
            }
            next_layer.sort_by(|a, b| b.1.total_cmp(&a.1));
            beam = next_layer.into_iter().take(self.cfg.beam_width).collect();
        }

        // ---- Pick the best templates over everything evaluated ----------------------------
        evaluated.sort_by(|a, b| b.1.total_cmp(&a.1));
        let templates: Vec<ScoredTemplate> = evaluated
            .into_iter()
            .take(self.cfg.n_templates)
            .map(|(combo, effectiveness)| ScoredTemplate {
                template: self.make_template(&combo),
                effectiveness,
            })
            .collect();
        (templates, start.elapsed(), evaluated_count)
    }

    /// Exhaustively evaluate every non-empty subset of `attr` (the brute-force baseline of the
    /// paper's cost analysis). Only feasible for small attribute sets; used by the Figure 5
    /// ablation and by tests.
    pub fn brute_force(&self) -> (Vec<ScoredTemplate>, Duration, usize) {
        let start = Instant::now();
        let attrs = self.task.resolved_predicate_attrs();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let n = attrs.len().min(16);
        let mut evaluated: Vec<(Vec<String>, f64)> = Vec::new();
        for mask in 1u32..(1u32 << n) {
            if (mask.count_ones() as usize) > self.cfg.max_depth {
                continue;
            }
            let combo: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| attrs[i].clone())
                .collect();
            let score = self.node_effectiveness(&combo, &mut rng);
            evaluated.push((combo, score));
        }
        let count = evaluated.len();
        evaluated.sort_by(|a, b| b.1.total_cmp(&a.1));
        let templates = evaluated
            .into_iter()
            .take(self.cfg.n_templates)
            .map(|(combo, effectiveness)| ScoredTemplate {
                template: self.make_template(&combo),
                effectiveness,
            })
            .collect();
        (templates, start.elapsed(), count)
    }

    /// Train the template-performance predictor on the nodes evaluated so far
    /// (one-hot template encoding → effectiveness).
    fn train_predictor(
        &self,
        universe: &[String],
        evaluated: &[(Vec<String>, f64)],
    ) -> Option<LinearRegression> {
        let usable: Vec<&(Vec<String>, f64)> =
            evaluated.iter().filter(|(_, s)| s.is_finite()).collect();
        if usable.len() < 2 {
            return None;
        }
        let rows: Vec<Vec<f64>> = usable
            .iter()
            .map(|(combo, _)| self.make_template(combo).encode_against(universe))
            .collect();
        let targets: Vec<f64> = usable.iter().map(|(_, s)| *s).collect();
        let names: Vec<String> = universe.to_vec();
        let data = Dataset::new(Matrix::from_rows(&rows), targets, names, Task::Regression);
        let mut model = LinearRegression::new(LinearConfig {
            epochs: 150,
            learning_rate: 0.1,
            l2: 1e-3,
            standardize: false,
        });
        model.fit(&data);
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_datagen::{tmall, GenConfig};
    use feataug_ml::ModelKind;

    fn tmall_task() -> AugTask {
        let ds = tmall::generate(&GenConfig {
            n_entities: 200,
            fanout: 8,
            n_noise_cols: 1,
            seed: 5,
        });
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::BinaryClassification,
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn identifier<'a>(
        task: &'a AugTask,
        evaluator: &'a FeatureEvaluator,
        cfg: TemplateIdConfig,
    ) -> TemplateIdentifier<'a, 'a> {
        TemplateIdentifier::new(
            task,
            evaluator,
            vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
            cfg,
        )
    }

    #[test]
    fn identify_returns_ranked_templates_within_attr_universe() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let ident = identifier(&task, &evaluator, TemplateIdConfig::fast());
        let (templates, elapsed, evaluated) = ident.identify();
        assert!(!templates.is_empty());
        assert!(templates.len() <= TemplateIdConfig::fast().n_templates);
        assert!(evaluated > 0);
        assert!(elapsed > Duration::from_nanos(0));
        // Sorted by descending effectiveness, and every P is a subset of attr.
        let attrs = task.resolved_predicate_attrs();
        for w in templates.windows(2) {
            assert!(w[0].effectiveness >= w[1].effectiveness);
        }
        for t in &templates {
            for p in &t.template.predicate_attrs {
                assert!(attrs.contains(p), "unknown attribute {p}");
            }
            assert!(t.template.depth() <= TemplateIdConfig::fast().max_depth);
        }
    }

    #[test]
    fn predictor_pruning_evaluates_fewer_nodes() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);

        let with_pred = identifier(&task, &evaluator, TemplateIdConfig::fast());
        let (_, _, n_with) = with_pred.identify();

        let cfg = TemplateIdConfig {
            use_predictor: false,
            ..TemplateIdConfig::fast()
        };
        let without_pred = identifier(&task, &evaluator, cfg);
        let (_, _, n_without) = without_pred.identify();

        assert!(
            n_with <= n_without,
            "predictor pruning should not evaluate more nodes ({n_with} vs {n_without})"
        );
    }

    #[test]
    fn top_template_contains_a_signal_attribute() {
        // The planted Tmall signal lives behind department + timestamp predicates; the top
        // templates should pick at least one of those attributes ahead of pure noise columns.
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let ident = identifier(
            &task,
            &evaluator,
            TemplateIdConfig {
                pool_samples: 40,
                ..TemplateIdConfig::fast()
            },
        );
        let (templates, _, _) = ident.identify();
        let best = &templates[0].template;
        assert!(
            best.predicate_attrs
                .iter()
                .any(|a| a == "department" || a == "timestamp"),
            "best template {best} should involve a signal attribute"
        );
    }

    #[test]
    fn brute_force_covers_all_bounded_subsets() {
        let task = tmall_task().with_predicate_attrs(vec![
            "department".into(),
            "timestamp".into(),
            "action".into(),
        ]);
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let cfg = TemplateIdConfig {
            max_depth: 3,
            pool_samples: 5,
            ..TemplateIdConfig::fast()
        };
        let ident = identifier(&task, &evaluator, cfg);
        let (_, _, count) = ident.brute_force();
        assert_eq!(count, 7); // 2^3 - 1 subsets
    }
}
