//! Compiling a [`JoinPath`] into a single virtual relevant view.
//!
//! The materializer never eagerly chains table-sized intermediate joins.
//! Each hop runs [`join_gather`] against a **probe table holding only the
//! hop's key columns**, and the resulting expansion is composed into one
//! gather map per source table (`Vec<Option<usize>>`, `None` = the hop
//! found no match and the row reads NULL). Every payload column is then
//! gathered **once**, straight from its original [`Table`], with the final
//! composed map.
//!
//! The output is bit-identical to eagerly chaining
//! [`feataug_tabular::join::left_join_expand`] hop by hop — same row order
//! (left order, matches in right-row order), same `_r` clash-rename rule,
//! same appearance-order categorical dictionary rebuilds — which the test
//! suite asserts structurally. The existing [`crate::exec::QueryEngine`]
//! then consumes the view unchanged: path features reuse the memoized
//! kernels and group indexes exactly as single-table features do.

use std::sync::Arc;

use feataug_tabular::join::join_gather;
use feataug_tabular::Table;

use crate::pipeline::{AugModel, OwnedAugModel};
use crate::query::AugPlan;

use super::graph::{SchemaError, SchemaGraph};
use super::path::JoinPath;

/// Materialize the path's virtual relevant view. Depth-1 paths return the
/// registered base table itself (zero copy); deeper paths compose per-hop
/// gather maps and assemble the view in one pass.
pub fn materialize_path(graph: &SchemaGraph, path: &JoinPath) -> Result<Arc<Table>, SchemaError> {
    let base = graph.table(&path.base)?;
    if path.hops.is_empty() {
        return Ok(base.clone());
    }

    let mut tables: Vec<Arc<Table>> = vec![base.clone()];
    let mut maps: Vec<Vec<Option<usize>>> = vec![(0..base.num_rows()).map(Some).collect()];
    // (output column name, source table index, source column name)
    let mut view_cols: Vec<(String, usize, String)> = base
        .schema()
        .fields()
        .iter()
        .map(|f| (f.name.clone(), 0usize, f.name.clone()))
        .collect();

    for hop in &path.hops {
        let right = graph.table(&hop.table)?;
        // Materialize only the probe key columns of the view built so far.
        let mut probe = Table::new("probe");
        for key in &hop.left_keys {
            let Some((_, t, src)) = view_cols.iter().find(|(name, _, _)| name == key) else {
                return Err(SchemaError::UnknownColumn {
                    table: path.view_name(),
                    column: key.clone(),
                });
            };
            probe.add_column(key.clone(), tables[*t].column(src)?.take_opt(&maps[*t]))?;
        }
        let left_keys: Vec<&str> = hop.left_keys.iter().map(|s| s.as_str()).collect();
        let right_keys: Vec<&str> = hop.right_keys.iter().map(|s| s.as_str()).collect();
        let gather = join_gather(&probe, right, &left_keys, &right_keys)?;
        // Re-gather every accumulated map through the hop's expansion, then
        // append the new table's own map.
        maps = maps
            .iter()
            .map(|m| gather.iter().map(|&(l, _)| m[l]).collect())
            .collect();
        maps.push(gather.iter().map(|&(_, r)| r).collect());
        tables.push(right.clone());
        let t_idx = tables.len() - 1;
        for field in right.schema().fields() {
            if hop.right_keys.contains(&field.name) {
                continue;
            }
            let mut name = field.name.clone();
            if view_cols.iter().any(|(n, _, _)| *n == name) {
                name = format!("{name}_r");
            }
            view_cols.push((name, t_idx, field.name.clone()));
        }
    }

    let mut out = Table::new(path.view_name());
    for (name, t, src) in &view_cols {
        out.add_column(name.clone(), tables[*t].column(src)?.take_opt(&maps[*t]))?;
    }
    Ok(Arc::new(out))
}

/// Recompile a (possibly multi-hop) [`AugPlan`] into a serving model against
/// a registered schema: rebuild the plan's [`JoinPath`], materialize its
/// view, and hand both tables to [`AugModel::compile_shared`]. The depth-1
/// case degenerates to compiling directly against the registered base table.
pub fn compile_plan(
    graph: &SchemaGraph,
    train: &str,
    plan: AugPlan,
) -> Result<OwnedAugModel, SchemaError> {
    let train_table = graph.table(train)?.clone();
    let path = JoinPath {
        base: plan.relevant_name.clone(),
        base_keys: plan.key_columns.clone(),
        hops: plan.hops.clone(),
    };
    let view = materialize_path(graph, &path)?;
    Ok(AugModel::compile_shared(plan, train_table, view)?)
}

impl SchemaGraph {
    /// Method form of [`compile_plan`]: recompile a round-tripped plan into
    /// a serving model against this graph's registered tables.
    pub fn compile(&self, train: &str, plan: AugPlan) -> Result<OwnedAugModel, SchemaError> {
        compile_plan(self, train, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PlanHop, PlannedQuery, PredicateQuery};
    use feataug_tabular::join::left_join_expand;
    use feataug_tabular::{AggFunc, Column, Predicate, Table, Value};

    fn cat(values: &[&str]) -> Column {
        Column::from_strs(values)
    }

    fn ints(values: &[i64]) -> Column {
        Column::Int(values.iter().map(|v| Some(*v)).collect())
    }

    fn table(name: &str, cols: Vec<(&str, Column)>) -> Table {
        let mut t = Table::new(name);
        for (cname, col) in cols {
            t.add_column(cname, col).unwrap();
        }
        t
    }

    /// users —uid→ orders —oid→ items, with a payload-name clash (`note`)
    /// between orders and items to exercise the `_r` rule, an unmatched
    /// order (oid 13) to exercise NULL expansion, and a one-to-many items
    /// fan-out to exercise row multiplication.
    fn graph() -> SchemaGraph {
        let users = table(
            "users",
            vec![("uid", cat(&["a", "b"])), ("label", ints(&[0, 1]))],
        );
        let orders = table(
            "orders",
            vec![
                ("uid", cat(&["a", "a", "b"])),
                ("oid", ints(&[10, 11, 13])),
                ("note", cat(&["x", "y", "z"])),
            ],
        );
        let items = table(
            "items",
            vec![
                ("oid", ints(&[11, 10, 11])),
                ("qty", ints(&[5, 6, 7])),
                ("note", cat(&["p", "q", "p"])),
            ],
        );
        let mut g = SchemaGraph::new()
            .with_table(users)
            .unwrap()
            .with_table(orders)
            .unwrap()
            .with_table(items)
            .unwrap();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        g.declare_edge("orders", "items", &["oid"], &["oid"])
            .unwrap();
        g
    }

    fn two_hop_path() -> JoinPath {
        JoinPath {
            base: "orders".to_string(),
            base_keys: vec!["uid".to_string()],
            hops: vec![PlanHop {
                table: "items".to_string(),
                left_keys: vec!["oid".to_string()],
                right_keys: vec!["oid".to_string()],
            }],
        }
    }

    #[test]
    fn depth_one_path_is_the_registered_table_itself() {
        let g = graph();
        let path = JoinPath {
            base: "orders".to_string(),
            base_keys: vec!["uid".to_string()],
            hops: Vec::new(),
        };
        let view = materialize_path(&g, &path).unwrap();
        assert!(Arc::ptr_eq(&view, g.table("orders").unwrap()));
    }

    #[test]
    fn composed_view_is_bit_identical_to_eager_expand_chain() {
        let g = graph();
        let view = materialize_path(&g, &two_hop_path()).unwrap();
        let eager = left_join_expand(
            g.table("orders").unwrap(),
            g.table("items").unwrap(),
            &["oid"],
            &["oid"],
        )
        .unwrap();
        // Bit-identical content: same columns in the same order, same
        // values, same categorical dictionaries (Table equality compares
        // dictionaries and codes, not just rendered values).
        assert_eq!(view.schema(), eager.schema());
        for field in eager.schema().fields() {
            assert_eq!(
                view.column(&field.name).unwrap(),
                eager.column(&field.name).unwrap(),
                "column {} differs",
                field.name
            );
        }
        // Clash rule applied: items' `note` arrives as `note_r`.
        assert!(view.column("note_r").is_ok());
        // Fan-out + NULL expansion: 2 rows for oid 11, 1 for 10, NULL row for 13.
        assert_eq!(view.num_rows(), 4);
    }

    #[test]
    fn unknown_hop_key_is_reported_against_the_view_signature() {
        let g = graph();
        let mut path = two_hop_path();
        path.hops[0].left_keys = vec!["ghost".to_string()];
        let err = materialize_path(&g, &path).unwrap_err();
        assert!(matches!(
            err,
            SchemaError::UnknownColumn { table, column }
                if table == "orders \u{22c8} items" && column == "ghost"
        ));
    }

    #[test]
    fn compile_plan_recompiles_a_multi_hop_plan_for_serving() {
        let g = graph();
        let query = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "qty".to_string(),
            predicate: Predicate::True,
            group_keys: vec!["uid".to_string()],
        };
        let plan = AugPlan::new(
            "orders",
            vec!["uid".to_string()],
            vec![PlannedQuery {
                query: query.clone(),
                loss: f64::NAN,
            }],
        )
        .with_hops(two_hop_path().hops);
        let model = g.compile("users", plan.clone()).unwrap();
        let augmented = model.transform(g.table("users").unwrap()).unwrap();
        // User a: orders 10 (qty 6) and 11 (qty 5 + 7) → 18.
        assert_eq!(
            augmented.value(0, &query.feature_name()).unwrap(),
            Value::Float(18.0)
        );
        // And the whole transform matches a manual pre-join compile.
        let eager = left_join_expand(
            g.table("orders").unwrap(),
            g.table("items").unwrap(),
            &["oid"],
            &["oid"],
        )
        .unwrap();
        let manual_plan = AugPlan::new("orders_joined", plan.key_columns.clone(), plan.queries);
        let manual = AugModel::compile(manual_plan, g.table("users").unwrap(), &eager).unwrap();
        assert_eq!(
            augmented,
            manual.transform(g.table("users").unwrap()).unwrap()
        );
    }
}
