//! Join-path enumeration over a [`SchemaGraph`].
//!
//! A [`JoinPath`] is `train ⋈ base ⋈ hop₁ ⋈ hop₂ …`: the **base** table
//! links directly to the training table (its `base_keys` double as the
//! train-side foreign key, so they must be named identically on both sides —
//! the [`crate::query::AugPlan`] format carries a single key list), and each
//! hop expands the view with another table via `left_join_expand` semantics.
//!
//! Enumeration is exhaustive and deterministic: edges in declaration order,
//! depth-first, acyclic (a table appears at most once per path, and the
//! training table never re-enters). Every prefix of a walk is itself
//! emitted — depth-1 paths are exactly the [`crate::multi`] sources. While
//! walking, the enumerator simulates the view's column naming (including the
//! `_r` clash suffix) so that every returned path is guaranteed to
//! materialize: an edge whose key columns got shadowed by a rename, or whose
//! payload columns would clash twice, is simply not taken.

use crate::query::PlanHop;

use super::graph::{SchemaError, SchemaGraph};

/// A multi-hop join path rooted at a base table directly joinable to the
/// training table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPath {
    /// The base relevant table (plan `relevant_name`).
    pub base: String,
    /// The foreign key shared by the training table and `base` (identical
    /// column names on both sides; plan `key_columns`).
    pub base_keys: Vec<String>,
    /// Intermediate hops, applied in order (plan `hops`).
    pub hops: Vec<PlanHop>,
}

impl JoinPath {
    /// Number of relevant tables on the path (1 = the degenerate
    /// single-table case).
    pub fn depth(&self) -> usize {
        1 + self.hops.len()
    }

    /// Stable display signature — also the materialized view's table name.
    pub fn view_name(&self) -> String {
        let mut name = self.base.clone();
        for hop in &self.hops {
            name.push_str(" \u{22c8} ");
            name.push_str(&hop.table);
        }
        name
    }
}

/// Enumerate every acyclic join path from `train` of up to `max_hops`
/// intermediate hops past the base table (`max_hops = 0` restricts the
/// search to the depth-1 degenerate case, i.e. [`crate::multi::fit_multi`]'s
/// shape). Paths are returned in deterministic DFS order.
pub fn enumerate_paths(
    graph: &SchemaGraph,
    train: &str,
    max_hops: usize,
) -> Result<Vec<JoinPath>, SchemaError> {
    graph.table(train)?;
    let mut out = Vec::new();
    for edge in graph.edges() {
        let Some((base, train_keys, base_keys)) = edge.keys_from(train) else {
            continue;
        };
        // The plan format stores one shared key list for train ↔ base, so
        // only identically-named first edges are walkable.
        if train_keys != base_keys || base == train {
            continue;
        }
        let Ok(base_table) = graph.table(base) else {
            continue;
        };
        let path = JoinPath {
            base: base.to_string(),
            base_keys: base_keys.to_vec(),
            hops: Vec::new(),
        };
        out.push(path.clone());
        let mut visited = vec![train.to_string(), base.to_string()];
        // (output column name, source table) — mirrors the materializer's
        // naming so key resolution can be checked hop by hop.
        let mut view_cols: Vec<(String, String)> = base_table
            .schema()
            .fields()
            .iter()
            .map(|f| (f.name.clone(), base.to_string()))
            .collect();
        extend(
            graph,
            &path,
            base,
            &mut visited,
            &mut view_cols,
            max_hops,
            &mut out,
        );
    }
    Ok(out)
}

/// DFS continuation: try every edge out of `current`, simulating the view's
/// column naming so only materializable hops are taken.
fn extend(
    graph: &SchemaGraph,
    path: &JoinPath,
    current: &str,
    visited: &mut Vec<String>,
    view_cols: &mut Vec<(String, String)>,
    max_hops: usize,
    out: &mut Vec<JoinPath>,
) {
    if path.hops.len() >= max_hops {
        return;
    }
    for edge in graph.edges() {
        let Some((next, left_keys, right_keys)) = edge.keys_from(current) else {
            continue;
        };
        if visited.iter().any(|v| v == next) {
            continue;
        }
        // The hop's left keys must still resolve — by the materializer's
        // first-match-on-name rule — to columns that actually came from
        // `current`. A key shadowed by a rename, or one whose name binds to
        // an earlier table's column, would silently join on the wrong
        // values, so the edge is not walkable.
        let keys_bind_to_current = left_keys.iter().all(|k| {
            view_cols
                .iter()
                .find(|(name, _)| name == k)
                .is_some_and(|(_, source)| source == current)
        });
        if !keys_bind_to_current {
            continue;
        }
        let Ok(next_table) = graph.table(next) else {
            continue;
        };
        // Simulate the payload-column clash rule of view materialisation;
        // a second-level clash (`name` and `name_r` both taken) would fail
        // to materialize, so the edge is not walkable.
        let taken = |added: &[(String, String)], name: &String| {
            view_cols.iter().any(|(n, _)| n == name) || added.iter().any(|(n, _)| n == name)
        };
        let mut added: Vec<(String, String)> = Vec::new();
        let mut ok = true;
        for field in next_table.schema().fields() {
            if right_keys.contains(&field.name) {
                continue;
            }
            let mut name = field.name.clone();
            if taken(&added, &name) {
                name = format!("{name}_r");
            }
            if taken(&added, &name) {
                ok = false;
                break;
            }
            added.push((name, next.to_string()));
        }
        if !ok {
            continue;
        }
        let mut deeper = path.clone();
        deeper.hops.push(PlanHop {
            table: next.to_string(),
            left_keys: left_keys.to_vec(),
            right_keys: right_keys.to_vec(),
        });
        out.push(deeper.clone());
        visited.push(next.to_string());
        let base_len = view_cols.len();
        view_cols.extend(added);
        extend(graph, &deeper, next, visited, view_cols, max_hops, out);
        view_cols.truncate(base_len);
        visited.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::{Column, Table};

    fn table(name: &str, cols: &[(&str, &[i64])]) -> Table {
        let mut t = Table::new(name);
        for (cname, values) in cols {
            t.add_column(
                *cname,
                Column::Int(values.iter().map(|v| Some(*v)).collect()),
            )
            .unwrap();
        }
        t
    }

    /// users —uid→ orders —oid→ items —pid→ products
    fn chain_graph() -> SchemaGraph {
        let mut g = SchemaGraph::new()
            .with_table(table("users", &[("uid", &[1, 2]), ("label", &[0, 1])]))
            .unwrap()
            .with_table(table(
                "orders",
                &[("uid", &[1, 1, 2]), ("oid", &[10, 11, 12])],
            ))
            .unwrap()
            .with_table(table("items", &[("oid", &[10, 11]), ("pid", &[7, 8])]))
            .unwrap()
            .with_table(table(
                "products",
                &[("pid", &[7, 8]), ("price", &[100, 200])],
            ))
            .unwrap();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        g.declare_edge("orders", "items", &["oid"], &["oid"])
            .unwrap();
        g.declare_edge("items", "products", &["pid"], &["pid"])
            .unwrap();
        g
    }

    #[test]
    fn enumerates_prefix_closed_paths_up_to_max_hops() {
        let g = chain_graph();
        let paths = enumerate_paths(&g, "users", 2).unwrap();
        let names: Vec<String> = paths.iter().map(|p| p.view_name()).collect();
        assert_eq!(
            names,
            [
                "orders",
                "orders \u{22c8} items",
                "orders \u{22c8} items \u{22c8} products"
            ]
        );
        assert_eq!(paths[0].depth(), 1);
        assert_eq!(paths[2].depth(), 3);
        assert_eq!(paths[2].base_keys, ["uid".to_string()]);
        assert_eq!(paths[2].hops[1].table, "products");
    }

    #[test]
    fn max_hops_zero_is_the_degenerate_multi_case() {
        let g = chain_graph();
        let paths = enumerate_paths(&g, "users", 0).unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].hops.is_empty());
        assert_eq!(paths[0].base, "orders");
    }

    #[test]
    fn paths_are_acyclic_and_never_reenter_train() {
        let mut g = chain_graph();
        // A back-edge products → users (same dtype) must not create cycles.
        g.declare_edge("products", "users", &["pid"], &["uid"])
            .unwrap();
        let paths = enumerate_paths(&g, "users", 5).unwrap();
        for p in &paths {
            let mut seen = vec!["users".to_string(), p.base.clone()];
            for hop in &p.hops {
                assert!(!seen.contains(&hop.table), "cycle in {}", p.view_name());
                seen.push(hop.table.clone());
            }
        }
    }

    #[test]
    fn first_edge_requires_identical_key_names() {
        let mut g = SchemaGraph::new()
            .with_table(table("users", &[("uid", &[1])]))
            .unwrap()
            .with_table(table("orders", &[("user_ref", &[1]), ("oid", &[10])]))
            .unwrap();
        g.declare_edge("users", "orders", &["uid"], &["user_ref"])
            .unwrap();
        assert!(enumerate_paths(&g, "users", 2).unwrap().is_empty());
    }

    #[test]
    fn unknown_train_table_is_an_error() {
        let g = chain_graph();
        assert!(matches!(
            enumerate_paths(&g, "ghost", 1),
            Err(SchemaError::UnknownTable { .. })
        ));
    }

    #[test]
    fn hops_whose_keys_were_shadowed_are_not_taken() {
        // Orders carries its own payload column named `pid`, so after the
        // items hop the view holds `pid` (from orders) and `pid_r` (items'
        // copy, renamed). The items→products edge keys on items' `pid`; by
        // first-match name resolution that would silently bind to orders'
        // column, so the products hop must not be taken.
        let mut g = SchemaGraph::new()
            .with_table(table("users", &[("uid", &[1]), ("label", &[0])]))
            .unwrap()
            .with_table(table(
                "orders",
                &[("uid", &[1]), ("oid", &[10]), ("pid", &[99])],
            ))
            .unwrap()
            .with_table(table("items", &[("oid", &[10]), ("pid", &[7])]))
            .unwrap()
            .with_table(table("products", &[("pid", &[7]), ("price", &[100])]))
            .unwrap();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        g.declare_edge("orders", "items", &["oid"], &["oid"])
            .unwrap();
        g.declare_edge("items", "products", &["pid"], &["pid"])
            .unwrap();
        let names: Vec<String> = enumerate_paths(&g, "users", 3)
            .unwrap()
            .iter()
            .map(|p| p.view_name())
            .collect();
        assert_eq!(names, ["orders", "orders \u{22c8} items"]);
    }
}
