//! Budgeted path exploration and the schema-level fit API.
//!
//! `fit_schema` is the FeatNavigator / ARDA shape over this repo's
//! machinery: **enumerate** every walkable [`JoinPath`] up to
//! [`SchemaTask::max_hops`], **score** each path with one or two cheap
//! probe queries through the existing proxy evaluator
//! ([`crate::proxy::LowCostProxy`], the same estimator the warm-start
//! stage uses), and **promote** only the top [`SchemaTask::path_budget`]
//! paths to a full TPE search ([`crate::pipeline::FeatAug::fit`]). The
//! proxy pass touches each candidate view once — strictly cheaper than
//! running the full search on every enumerated path, which is the point:
//! path count grows combinatorially with schema size, full searches do not.
//!
//! **Degenerate depth-1 case.** With `max_hops = 0` and a budget covering
//! every candidate, `fit_schema` *is* [`crate::multi::fit_multi`]: the
//! candidate views are the registered base tables themselves (zero-copy
//! `Arc`s), every path is promoted, and each promoted fit is the ordinary
//! single-relevant-table pipeline. The schema API strictly generalizes the
//! multi API.

use std::sync::Arc;

use feataug_ml::Task;
use feataug_tabular::{AggFunc, Column, Predicate, Table};

use crate::exec::{EngineResult, QueryEngine};
use crate::pipeline::{FeatAug, FeatAugConfig, OwnedAugModel};
use crate::problem::AugTask;
use crate::query::{AugPlan, PredicateQuery};

use super::compile::materialize_path;
use super::graph::{SchemaError, SchemaGraph};
use super::path::{enumerate_paths, JoinPath};

/// A schema-level augmentation task: which graph to search, where the
/// labels live, and how much path exploration to pay for.
#[derive(Debug, Clone)]
pub struct SchemaTask {
    /// The registered tables and edges to search.
    pub graph: SchemaGraph,
    /// Name of the registered training table.
    pub train: String,
    /// Label column on the training table.
    pub label_column: String,
    /// Prediction task kind.
    pub task: Task,
    /// Maximum intermediate hops past the base table (0 = depth-1 only,
    /// the [`crate::multi::fit_multi`] degenerate case).
    pub max_hops: usize,
    /// How many top-proxy-scored paths get a full TPE search.
    pub path_budget: usize,
    /// Aggregation columns per promoted fit, filtered to each view's
    /// actual columns (empty: the task default — numeric non-keys).
    pub agg_columns: Vec<String>,
    /// Predicate attributes per promoted fit, filtered like `agg_columns`
    /// (empty: the task default — all non-keys).
    pub predicate_attrs: Vec<String>,
}

impl SchemaTask {
    /// A task with the defaults: up to 2 hops, 2 promoted paths.
    pub fn new(
        graph: SchemaGraph,
        train: impl Into<String>,
        label_column: impl Into<String>,
        task: Task,
    ) -> Self {
        SchemaTask {
            graph,
            train: train.into(),
            label_column: label_column.into(),
            task,
            max_hops: 2,
            path_budget: 2,
            agg_columns: Vec::new(),
            predicate_attrs: Vec::new(),
        }
    }

    /// Builder-style setter for [`SchemaTask::max_hops`].
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = max_hops;
        self
    }

    /// Builder-style setter for [`SchemaTask::path_budget`].
    pub fn with_path_budget(mut self, budget: usize) -> Self {
        self.path_budget = budget;
        self
    }

    /// Builder-style setter for [`SchemaTask::agg_columns`].
    pub fn with_agg_columns(mut self, cols: Vec<String>) -> Self {
        self.agg_columns = cols;
        self
    }

    /// Builder-style setter for [`SchemaTask::predicate_attrs`].
    pub fn with_predicate_attrs(mut self, attrs: Vec<String>) -> Self {
        self.predicate_attrs = attrs;
        self
    }
}

/// One explored candidate path: its proxy score and whether it made the
/// promotion budget.
#[derive(Debug, Clone)]
pub struct PathScore {
    /// The candidate path.
    pub path: JoinPath,
    /// Best proxy score over the path's probe queries (higher is better).
    pub score: f64,
    /// Whether the path was promoted to a full search.
    pub promoted: bool,
}

/// What the exploration did — the budget accounting the bench suite and
/// the acceptance criteria read.
#[derive(Debug, Clone)]
pub struct ExplorationStats {
    /// Paths enumerated (= candidate views proxy-scored).
    pub candidates: usize,
    /// Paths promoted to a full TPE search (≤ `candidates`).
    pub promoted: usize,
    /// Per-path scores, in promotion rank order.
    pub scores: Vec<PathScore>,
}

/// The fitted result of [`fit_schema`]: one serving model per promoted
/// path, plus the exploration accounting.
#[derive(Debug)]
pub struct SchemaAugModel {
    models: Vec<OwnedAugModel>,
    paths: Vec<JoinPath>,
    stats: ExplorationStats,
}

impl SchemaAugModel {
    /// The fitted models, in promotion rank order (best proxy score first).
    pub fn models(&self) -> &[OwnedAugModel] {
        &self.models
    }

    /// The promoted paths, aligned with [`SchemaAugModel::models`].
    pub fn paths(&self) -> &[JoinPath] {
        &self.paths
    }

    /// The exploration accounting.
    pub fn stats(&self) -> &ExplorationStats {
        &self.stats
    }

    /// Portable plans, one per promoted path, each carrying its hop route
    /// so [`SchemaGraph::compile`] can rebuild the serving model from a
    /// registered schema after a text round trip.
    pub fn plans(&self) -> Vec<AugPlan> {
        self.models
            .iter()
            .zip(&self.paths)
            .map(|(model, path)| {
                AugPlan::new(
                    path.base.clone(),
                    model.plan().key_columns.clone(),
                    model.plan().queries.clone(),
                )
                .with_hops(path.hops.clone())
            })
            .collect()
    }

    /// Union-augment a table with every promoted model's features (name
    /// collisions keep the first copy, exactly like
    /// [`crate::multi::MultiAugModel::transform`]).
    pub fn transform(&self, table: &Table) -> EngineResult<Table> {
        let mut augmented = table.clone();
        for model in &self.models {
            for (name, values) in model.transform_features(table)? {
                let _ = augmented.add_column(name, Column::from_opt_f64s(&values));
            }
        }
        Ok(augmented)
    }
}

/// Fit a schema task: enumerate paths, proxy-score every candidate view,
/// promote the top [`SchemaTask::path_budget`] to full searches.
pub fn fit_schema(cfg: &FeatAugConfig, task: &SchemaTask) -> Result<SchemaAugModel, SchemaError> {
    let train = task.graph.table(&task.train)?.clone();
    let labels: Vec<f64> = train
        .column(&task.label_column)
        .map_err(|_| SchemaError::UnknownColumn {
            table: task.train.clone(),
            column: task.label_column.clone(),
        })?
        .to_f64_vec()
        .into_iter()
        .map(|v| v.unwrap_or(f64::NAN))
        .collect();

    let paths = enumerate_paths(&task.graph, &task.train, task.max_hops)?;
    if paths.is_empty() {
        return Err(SchemaError::NoPaths {
            train: task.train.clone(),
        });
    }

    // Proxy pass: one cheap engine per candidate view, one or two probe
    // features, best proxy score wins. Enumeration index breaks ties, so
    // the ranking is deterministic.
    let mut scored: Vec<(usize, JoinPath, Arc<Table>, f64)> = Vec::with_capacity(paths.len());
    for (index, path) in paths.into_iter().enumerate() {
        let view = materialize_path(&task.graph, &path)?;
        let score = proxy_score(cfg, task.task, &train, &view, &path.base_keys, &labels)?;
        scored.push((index, path, view, score));
    }
    scored.sort_by(|a, b| b.3.total_cmp(&a.3).then(a.0.cmp(&b.0)));

    let budget = task.path_budget.max(1).min(scored.len());
    let mut models = Vec::with_capacity(budget);
    let mut promoted_paths = Vec::with_capacity(budget);
    let mut scores = Vec::with_capacity(scored.len());
    for (rank, (_, path, view, score)) in scored.into_iter().enumerate() {
        let promoted = rank < budget;
        scores.push(PathScore {
            path: path.clone(),
            score,
            promoted,
        });
        if !promoted {
            continue;
        }
        let aug_task = AugTask::new(
            train.clone(),
            view.clone(),
            path.base_keys.clone(),
            task.label_column.clone(),
            task.task,
        )
        .with_agg_columns(present_in(&task.agg_columns, &view))
        .with_predicate_attrs(present_in(&task.predicate_attrs, &view));
        let model = FeatAug::new(cfg.clone()).fit(&aug_task)?;
        models.push(model);
        promoted_paths.push(path);
    }

    let stats = ExplorationStats {
        candidates: scores.len(),
        promoted: models.len(),
        scores,
    };
    Ok(SchemaAugModel {
        models,
        paths: promoted_paths,
        stats,
    })
}

/// The configured columns that exist on this view (a path's view does not
/// necessarily carry every configured column — hop renames drop some).
fn present_in(cols: &[String], view: &Table) -> Vec<String> {
    cols.iter()
        .filter(|c| view.column(c).is_ok())
        .cloned()
        .collect()
}

/// Proxy-score one candidate view: group-size plus (when a numeric payload
/// exists) mean-payload probe features, scored by the configured
/// [`crate::proxy::LowCostProxy`] against the training labels. Returns the
/// best probe's score; `-inf` only when no probe is possible (never the
/// case for a walkable path — `base_keys` is non-empty by construction).
fn proxy_score(
    cfg: &FeatAugConfig,
    task: Task,
    train: &Arc<Table>,
    view: &Arc<Table>,
    base_keys: &[String],
    labels: &[f64],
) -> Result<f64, SchemaError> {
    let engine = QueryEngine::new_shared(train.clone(), view.clone());
    let mut best = f64::NEG_INFINITY;
    for query in probe_queries(view, base_keys) {
        let (_, feature) = engine.feature(&query)?;
        let score = cfg.proxy.score(&feature, labels, task);
        if score > best {
            best = score;
        }
    }
    Ok(best)
}

/// The probe queries for a view: COUNT over the key (always meaningful) and
/// AVG of the first numeric non-key payload column (when one exists).
fn probe_queries(view: &Table, base_keys: &[String]) -> Vec<PredicateQuery> {
    let mut probes = Vec::with_capacity(2);
    let Some(first_key) = base_keys.first() else {
        return probes;
    };
    probes.push(PredicateQuery {
        agg: AggFunc::Count,
        agg_column: first_key.clone(),
        predicate: Predicate::True,
        group_keys: base_keys.to_vec(),
    });
    let payload = view
        .schema()
        .fields()
        .iter()
        .find(|f| f.dtype.is_numeric_like() && !base_keys.contains(&f.name));
    if let Some(field) = payload {
        probes.push(PredicateQuery {
            agg: AggFunc::Avg,
            agg_column: field.name.clone(),
            predicate: Predicate::True,
            group_keys: base_keys.to_vec(),
        });
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_ml::ModelKind;
    use feataug_tabular::Column;

    fn cat(values: &[&str]) -> Column {
        Column::from_strs(values)
    }

    fn ints(values: &[i64]) -> Column {
        Column::Int(values.iter().map(|v| Some(*v)).collect())
    }

    fn table(name: &str, cols: Vec<(&str, Column)>) -> Table {
        let mut t = Table::new(name);
        for (cname, col) in cols {
            t.add_column(cname, col).unwrap();
        }
        t
    }

    fn small_cfg() -> FeatAugConfig {
        let mut cfg = FeatAugConfig::fast(ModelKind::Linear);
        cfg.n_templates = 2;
        cfg.queries_per_template = 2;
        cfg.template_id.n_templates = 2;
        cfg.template_id.pool_samples = 6;
        cfg.sqlgen.warmup_iters = 10;
        cfg.sqlgen.warmup_top_k = 3;
        cfg.sqlgen.search_iters = 4;
        cfg
    }

    /// users(uid,label) —uid→ orders(uid,oid,amount) —oid→ items(oid,qty).
    fn graph(n: usize) -> SchemaGraph {
        let uids: Vec<String> = (0..n).map(|i| format!("u{i}")).collect();
        let users = table(
            "users",
            vec![
                (
                    "uid",
                    cat(&uids.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                ),
                (
                    "label",
                    ints(&(0..n as i64).map(|i| i % 2).collect::<Vec<_>>()),
                ),
            ],
        );
        let ouids: Vec<&str> = uids
            .iter()
            .map(|s| s.as_str())
            .cycle()
            .take(2 * n)
            .collect();
        let orders = table(
            "orders",
            vec![
                ("uid", cat(&ouids)),
                ("oid", ints(&(0..2 * n as i64).collect::<Vec<_>>())),
                (
                    "amount",
                    ints(&(0..2 * n as i64).map(|i| i * 3 % 17).collect::<Vec<_>>()),
                ),
            ],
        );
        let items = table(
            "items",
            vec![
                ("oid", ints(&(0..2 * n as i64).collect::<Vec<_>>())),
                (
                    "qty",
                    ints(&(0..2 * n as i64).map(|i| i % 5).collect::<Vec<_>>()),
                ),
            ],
        );
        let mut g = SchemaGraph::new()
            .with_table(users)
            .unwrap()
            .with_table(orders)
            .unwrap()
            .with_table(items)
            .unwrap();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        g.declare_edge("orders", "items", &["oid"], &["oid"])
            .unwrap();
        g
    }

    #[test]
    fn budget_promotes_strictly_fewer_paths_than_enumerated() {
        let task = SchemaTask::new(graph(12), "users", "label", Task::BinaryClassification)
            .with_max_hops(1)
            .with_path_budget(1);
        let model = fit_schema(&small_cfg(), &task).unwrap();
        let stats = model.stats();
        assert_eq!(stats.candidates, 2); // orders, orders ⋈ items
        assert_eq!(stats.promoted, 1);
        assert!(stats.promoted < stats.candidates);
        assert_eq!(model.models().len(), 1);
        assert_eq!(model.paths().len(), 1);
        // Scores are in rank order and flag promotion correctly.
        assert!(stats.scores[0].promoted && !stats.scores[1].promoted);
        assert!(stats.scores[0].score >= stats.scores[1].score);
    }

    #[test]
    fn plans_round_trip_and_recompile_to_matching_transforms() {
        let task = SchemaTask::new(graph(10), "users", "label", Task::BinaryClassification)
            .with_max_hops(1)
            .with_path_budget(2);
        let fitted = fit_schema(&small_cfg(), &task).unwrap();
        let users = task.graph.table("users").unwrap().clone();
        for (model, plan) in fitted.models().iter().zip(fitted.plans()) {
            let text = plan.to_plan_text();
            let parsed = AugPlan::from_plan_text(&text).unwrap();
            assert_eq!(parsed, plan);
            let recompiled = task.graph.compile("users", parsed).unwrap();
            assert_eq!(
                recompiled.transform(&users).unwrap(),
                model.transform(&users).unwrap()
            );
        }
    }

    #[test]
    fn empty_graph_reports_no_paths() {
        let g = SchemaGraph::new()
            .with_table(table(
                "users",
                vec![("uid", cat(&["a"])), ("label", ints(&[1]))],
            ))
            .unwrap();
        let task = SchemaTask::new(g, "users", "label", Task::BinaryClassification);
        assert!(matches!(
            fit_schema(&small_cfg(), &task),
            Err(SchemaError::NoPaths { .. })
        ));
    }

    #[test]
    fn missing_label_column_is_reported_against_the_train_table() {
        let task = SchemaTask::new(graph(6), "users", "ghost", Task::BinaryClassification);
        let err = fit_schema(&small_cfg(), &task).unwrap_err();
        assert!(matches!(err, SchemaError::UnknownColumn { table, column }
            if table == "users" && column == "ghost"));
    }
}
