//! The schema graph: registered tables plus their joinability edges.
//!
//! A [`SchemaGraph`] is the catalog the path search walks. Tables register
//! under their [`Table::name`]; edges come from two sources:
//!
//! * [`SchemaGraph::declare_edge`] — a trusted foreign key the caller knows
//!   (validated for existence, arity and per-pair dtype equality);
//! * [`SchemaGraph::infer_edges`] — ARDA-style discovery: for every ordered
//!   table pair, every shared column name with an equal dtype is probed by
//!   **containment sampling** (what fraction of the left table's first `N`
//!   distinct key values appear in the right column), and pairs above the
//!   threshold become [`EdgeOrigin::Inferred`] edges. Sampling is
//!   deterministic — first-`N`-distinct in row order, no RNG — so repeated
//!   runs build identical graphs.
//!
//! Edges are stored once per unordered table pair + key pair and are walked
//! in **both directions** during enumeration ([`SchemaEdge::keys_from`]).

use std::collections::HashSet;
use std::sync::Arc;

use feataug_tabular::groupby::{key_atom, KeyAtom};
use feataug_tabular::join::KeyMapper;
use feataug_tabular::{DataType, Table, TabularError};

use crate::exec::EngineError;
use crate::problem::AugTaskError;
use crate::query::PlanAnalysisError;

/// Why a schema-graph operation failed. Typed so callers can tell a catalog
/// mistake (unknown table, mismatched key types) apart from a failure inside
/// the layers the schema subsystem composes (tabular kernels, task
/// validation, plan analysis, the query engine).
#[derive(Debug)]
pub enum SchemaError {
    /// A table with this name is already registered.
    DuplicateTable {
        /// The clashing table name.
        name: String,
    },
    /// No registered table has this name.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A referenced column is absent from a table (or from a path's view).
    UnknownColumn {
        /// The table (or view signature) probed.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// An edge declaration's key lists are empty or of unequal length.
    KeyArityMismatch {
        /// Left table of the declaration.
        left_table: String,
        /// Right table of the declaration.
        right_table: String,
        /// Number of left key columns.
        left_arity: usize,
        /// Number of right key columns.
        right_arity: usize,
    },
    /// A declared key pair joins columns of different dtypes; such keys can
    /// never match ([`KeyMapper`] treats the pair as incompatible).
    KeyTypeMismatch {
        /// Left table of the declaration.
        left_table: String,
        /// Left key column.
        left_column: String,
        /// Right table of the declaration.
        right_table: String,
        /// Right key column.
        right_column: String,
        /// The left column's dtype.
        left: DataType,
        /// The right column's dtype.
        right: DataType,
    },
    /// Path enumeration found no walkable path out of the training table.
    NoPaths {
        /// The training table the search started from.
        train: String,
    },
    /// A tabular-layer failure, passed through verbatim.
    Tabular(TabularError),
    /// Task validation rejected a promoted path's fit.
    Task(AugTaskError),
    /// Plan analysis rejected a recompile against the materialized view.
    Analysis(PlanAnalysisError),
    /// The query engine failed while proxy-scoring a candidate path.
    Engine(EngineError),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::DuplicateTable { name } => {
                write!(f, "a table named `{name}` is already registered")
            }
            SchemaError::UnknownTable { name } => {
                write!(f, "no registered table is named `{name}`")
            }
            SchemaError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            SchemaError::KeyArityMismatch {
                left_table,
                right_table,
                left_arity,
                right_arity,
            } => write!(
                f,
                "edge `{left_table}` -> `{right_table}` needs equal, non-empty key lists \
                 (got {left_arity} and {right_arity})"
            ),
            SchemaError::KeyTypeMismatch {
                left_table,
                left_column,
                right_table,
                right_column,
                left,
                right,
            } => write!(
                f,
                "edge key `{left_table}.{left_column}` is {left:?} but \
                 `{right_table}.{right_column}` is {right:?}; these keys would never match"
            ),
            SchemaError::NoPaths { train } => write!(
                f,
                "no join path leads out of training table `{train}` \
                 (declare or infer an edge whose key names match on both sides)"
            ),
            SchemaError::Tabular(e) => write!(f, "tabular error: {e}"),
            SchemaError::Task(e) => write!(f, "task error: {e}"),
            SchemaError::Analysis(e) => write!(f, "plan analysis error: {e}"),
            SchemaError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<TabularError> for SchemaError {
    fn from(e: TabularError) -> Self {
        SchemaError::Tabular(e)
    }
}

impl From<AugTaskError> for SchemaError {
    fn from(e: AugTaskError) -> Self {
        SchemaError::Task(e)
    }
}

impl From<PlanAnalysisError> for SchemaError {
    fn from(e: PlanAnalysisError) -> Self {
        SchemaError::Analysis(e)
    }
}

impl From<EngineError> for SchemaError {
    fn from(e: EngineError) -> Self {
        SchemaError::Engine(e)
    }
}

/// How an edge entered the graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeOrigin {
    /// Declared by the caller as a known foreign key.
    Declared,
    /// Inferred by name/type match plus containment sampling; carries the
    /// observed containment fraction (in `[0, 1]`).
    Inferred {
        /// Fraction of sampled left-side keys found in the right column.
        containment: f64,
    },
}

/// A joinability edge between two registered tables:
/// `left.left_keys[i] = right.right_keys[i]`. Undirected for enumeration —
/// a path may traverse it from either endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaEdge {
    /// One endpoint table.
    pub left: String,
    /// The other endpoint table.
    pub right: String,
    /// Key columns on `left`.
    pub left_keys: Vec<String>,
    /// Key columns on `right` (same arity as `left_keys`).
    pub right_keys: Vec<String>,
    /// Whether the edge was declared or inferred.
    pub origin: EdgeOrigin,
}

impl SchemaEdge {
    /// View the edge from `table`'s side: `(other_table, keys_on_table,
    /// keys_on_other)`. `None` when the edge does not touch `table`.
    pub fn keys_from(&self, table: &str) -> Option<(&str, &[String], &[String])> {
        if self.left == table {
            Some((&self.right, &self.left_keys, &self.right_keys))
        } else if self.right == table {
            Some((&self.left, &self.right_keys, &self.left_keys))
        } else {
            None
        }
    }

    /// True if the edge connects the same unordered table pair on the same
    /// key pair as `(a, b, a_keys, b_keys)` — in either orientation.
    fn same_link(&self, a: &str, b: &str, a_keys: &[String], b_keys: &[String]) -> bool {
        (self.left == a && self.right == b && self.left_keys == a_keys && self.right_keys == b_keys)
            || (self.left == b
                && self.right == a
                && self.left_keys == b_keys
                && self.right_keys == a_keys)
    }
}

/// Knobs for [`SchemaGraph::infer_edges`].
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// How many distinct left-side key values to probe per candidate pair
    /// (first `sample` distinct non-NULL values in row order).
    pub sample: usize,
    /// Minimum containment fraction for a candidate to become an edge.
    pub min_containment: f64,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            sample: 64,
            min_containment: 0.9,
        }
    }
}

/// The registered tables and joinability edges the path search walks.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    tables: Vec<(String, Arc<Table>)>,
    edges: Vec<SchemaEdge>,
}

impl SchemaGraph {
    /// An empty graph.
    pub fn new() -> Self {
        SchemaGraph::default()
    }

    /// Register a table under its own [`Table::name`]. Tables are shared
    /// (`Arc`), so registration never copies data.
    pub fn register(&mut self, table: impl Into<Arc<Table>>) -> Result<(), SchemaError> {
        let table = table.into();
        let name = table.name().to_string();
        if self.tables.iter().any(|(n, _)| *n == name) {
            return Err(SchemaError::DuplicateTable { name });
        }
        self.tables.push((name, table));
        Ok(())
    }

    /// Builder-style [`SchemaGraph::register`].
    pub fn with_table(mut self, table: impl Into<Arc<Table>>) -> Result<Self, SchemaError> {
        self.register(table)?;
        Ok(self)
    }

    /// The registered table of this name.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>, SchemaError> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| SchemaError::UnknownTable {
                name: name.to_string(),
            })
    }

    /// Registered table names, in registration order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// All edges, in declaration/inference order.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Declare a trusted foreign-key edge `left.left_keys[i] =
    /// right.right_keys[i]`. Both tables must be registered, every key
    /// column must exist, and each key pair must share a dtype (mismatched
    /// dtypes can never match under [`KeyMapper`], so declaring them is
    /// certainly a mistake).
    pub fn declare_edge(
        &mut self,
        left: &str,
        right: &str,
        left_keys: &[&str],
        right_keys: &[&str],
    ) -> Result<(), SchemaError> {
        if left_keys.is_empty() || left_keys.len() != right_keys.len() {
            return Err(SchemaError::KeyArityMismatch {
                left_table: left.to_string(),
                right_table: right.to_string(),
                left_arity: left_keys.len(),
                right_arity: right_keys.len(),
            });
        }
        let left_table = self.table(left)?.clone();
        let right_table = self.table(right)?.clone();
        for (lk, rk) in left_keys.iter().zip(right_keys) {
            let lcol = column_of(&left_table, lk)?;
            let rcol = column_of(&right_table, rk)?;
            if lcol.dtype() != rcol.dtype() {
                return Err(SchemaError::KeyTypeMismatch {
                    left_table: left.to_string(),
                    left_column: (*lk).to_string(),
                    right_table: right.to_string(),
                    right_column: (*rk).to_string(),
                    left: lcol.dtype(),
                    right: rcol.dtype(),
                });
            }
        }
        self.edges.push(SchemaEdge {
            left: left.to_string(),
            right: right.to_string(),
            left_keys: left_keys.iter().map(|s| (*s).to_string()).collect(),
            right_keys: right_keys.iter().map(|s| (*s).to_string()).collect(),
            origin: EdgeOrigin::Declared,
        });
        Ok(())
    }

    /// Infer joinability edges: for every ordered pair of registered tables
    /// and every shared column name with an equal dtype that is not already
    /// linked, sample containment of the left table's distinct key values in
    /// the right column; candidates at or above `min_containment` become
    /// [`EdgeOrigin::Inferred`] edges. Returns how many edges were added.
    ///
    /// Deterministic by construction: tables in registration order, columns
    /// in schema order, the first `sample` distinct values in row order.
    pub fn infer_edges(&mut self, opts: &InferOptions) -> Result<usize, SchemaError> {
        let mut added = 0;
        for (li, (left_name, left)) in self.tables.iter().enumerate() {
            for (ri, (right_name, right)) in self.tables.iter().enumerate() {
                if li == ri {
                    continue;
                }
                for field in left.schema().fields() {
                    let Some(rcol) = right.column(&field.name).ok() else {
                        continue;
                    };
                    if rcol.dtype() != field.dtype {
                        continue;
                    }
                    let keys = vec![field.name.clone()];
                    if self
                        .edges
                        .iter()
                        .any(|e| e.same_link(left_name, right_name, &keys, &keys))
                    {
                        continue;
                    }
                    let containment =
                        containment(left, &field.name, right, &field.name, opts.sample)?;
                    if containment >= opts.min_containment {
                        self.edges.push(SchemaEdge {
                            left: left_name.clone(),
                            right: right_name.clone(),
                            left_keys: keys.clone(),
                            right_keys: keys,
                            origin: EdgeOrigin::Inferred { containment },
                        });
                        added += 1;
                    }
                }
            }
        }
        Ok(added)
    }
}

/// [`Table::column`] with the miss reported as [`SchemaError::UnknownColumn`]
/// (names the table, which the tabular error does not).
fn column_of<'t>(
    table: &'t Table,
    column: &str,
) -> Result<&'t feataug_tabular::Column, SchemaError> {
    table
        .column(column)
        .map_err(|_| SchemaError::UnknownColumn {
            table: table.name().to_string(),
            column: column.to_string(),
        })
}

/// Fraction of `probe`'s first `sample` distinct non-NULL `probe_col` values
/// present in `reference`'s `ref_col`. Categorical values are translated
/// through [`KeyMapper`] (value-based, so differing dictionaries compare
/// correctly); `0.0` when the probe column holds no non-NULL values.
fn containment(
    probe: &Table,
    probe_col: &str,
    reference: &Table,
    ref_col: &str,
    sample: usize,
) -> Result<f64, TabularError> {
    let mapper = KeyMapper::new(reference, probe, &[ref_col], &[probe_col])?;
    let ref_column = reference.column(ref_col)?;
    let mut present: HashSet<Vec<KeyAtom>> = HashSet::new();
    for row in 0..reference.num_rows() {
        match key_atom(ref_column, row) {
            KeyAtom::Null => {}
            atom => {
                present.insert(vec![atom]);
            }
        }
    }
    let probe_column = probe.column(probe_col)?;
    let mut seen: HashSet<KeyAtom> = HashSet::new();
    let mut probed = 0usize;
    let mut matched = 0usize;
    for row in 0..probe.num_rows() {
        if probed >= sample.max(1) {
            break;
        }
        let own = key_atom(probe_column, row);
        if own == KeyAtom::Null || !seen.insert(own) {
            continue;
        }
        probed += 1;
        if mapper.key(row).is_some_and(|k| present.contains(&k)) {
            matched += 1;
        }
    }
    if probed == 0 {
        Ok(0.0)
    } else {
        Ok(matched as f64 / probed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::Column;

    fn table(name: &str, cols: &[(&str, Column)]) -> Table {
        let mut t = Table::new(name);
        for (cname, col) in cols {
            t.add_column(*cname, col.clone()).unwrap();
        }
        t
    }

    fn cat(values: &[&str]) -> Column {
        Column::from_strs(values)
    }

    fn ints(values: &[i64]) -> Column {
        Column::Int(values.iter().map(|v| Some(*v)).collect())
    }

    fn two_table_graph() -> SchemaGraph {
        let users = table(
            "users",
            &[("uid", cat(&["a", "b"])), ("label", ints(&[0, 1]))],
        );
        let orders = table(
            "orders",
            &[("uid", cat(&["a", "a", "b"])), ("amount", ints(&[3, 4, 5]))],
        );
        SchemaGraph::new()
            .with_table(users)
            .unwrap()
            .with_table(orders)
            .unwrap()
    }

    #[test]
    fn register_rejects_duplicate_names() {
        let mut g = two_table_graph();
        let err = g
            .register(table("users", &[("x", ints(&[1]))]))
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateTable { name } if name == "users"));
    }

    #[test]
    fn declare_edge_validates_tables_columns_arity_and_types() {
        let mut g = two_table_graph();
        assert!(matches!(
            g.declare_edge("users", "nope", &["uid"], &["uid"]),
            Err(SchemaError::UnknownTable { .. })
        ));
        assert!(matches!(
            g.declare_edge("users", "orders", &["ghost"], &["uid"]),
            Err(SchemaError::UnknownColumn { .. })
        ));
        assert!(matches!(
            g.declare_edge("users", "orders", &[], &[]),
            Err(SchemaError::KeyArityMismatch { .. })
        ));
        assert!(matches!(
            g.declare_edge("users", "orders", &["uid"], &["uid", "amount"]),
            Err(SchemaError::KeyArityMismatch { .. })
        ));
        let err = g
            .declare_edge("users", "orders", &["label"], &["uid"])
            .unwrap_err();
        assert!(
            matches!(err, SchemaError::KeyTypeMismatch { left, right, .. }
            if left == DataType::Int && right == DataType::Categorical)
        );
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].origin, EdgeOrigin::Declared);
    }

    #[test]
    fn keys_from_walks_both_directions() {
        let mut g = two_table_graph();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        let edge = &g.edges()[0];
        let (other, mine, theirs) = edge.keys_from("orders").unwrap();
        assert_eq!(other, "users");
        assert_eq!(mine, ["uid".to_string()]);
        assert_eq!(theirs, ["uid".to_string()]);
        assert!(edge.keys_from("elsewhere").is_none());
    }

    #[test]
    fn infer_edges_uses_name_type_and_containment() {
        // `uid` is fully contained users -> orders and orders -> users;
        // `stray` shares a name but its values don't overlap; `label` /
        // `amount` share no name.
        let users = table(
            "users",
            &[
                ("uid", cat(&["a", "b"])),
                ("stray", ints(&[100, 200])),
                ("label", ints(&[0, 1])),
            ],
        );
        let orders = table(
            "orders",
            &[
                ("uid", cat(&["a", "a", "b"])),
                ("stray", ints(&[7, 8, 9])),
                ("amount", ints(&[3, 4, 5])),
            ],
        );
        let mut g = SchemaGraph::new()
            .with_table(users)
            .unwrap()
            .with_table(orders)
            .unwrap();
        let added = g.infer_edges(&InferOptions::default()).unwrap();
        // One `uid` edge (the reverse direction is deduplicated as the same
        // unordered link); `stray` fails containment in both directions.
        assert_eq!(added, 1);
        let edge = &g.edges()[0];
        assert_eq!(
            (edge.left.as_str(), edge.right.as_str()),
            ("users", "orders")
        );
        assert_eq!(edge.left_keys, ["uid".to_string()]);
        assert!(matches!(edge.origin, EdgeOrigin::Inferred { containment } if containment == 1.0));
    }

    #[test]
    fn infer_edges_skips_already_declared_links() {
        let mut g = two_table_graph();
        g.declare_edge("users", "orders", &["uid"], &["uid"])
            .unwrap();
        let added = g.infer_edges(&InferOptions::default()).unwrap();
        assert_eq!(added, 0);
    }

    #[test]
    fn containment_is_value_based_across_dictionaries() {
        // Dictionaries intern in different orders; matching must go through
        // value translation, not raw codes.
        let left = table("l", &[("k", cat(&["x", "y", "z"]))]);
        let right = table("r", &[("k", cat(&["z", "y"]))]);
        let c = containment(&left, "k", &right, "k", 64).unwrap();
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
    }
}
