//! The online serving runtime: prepared, allocation-free feature lookups.
//!
//! [`crate::pipeline::AugModel::serve`] is correct but pays avoidable costs
//! on every request: it clones each key [`Value`], renders every query's
//! structural `Debug` key to probe the engine's per-group feature cache, and
//! re-resolves each query's key-subset positions. A [`ServingHandle`]
//! (built once by [`crate::pipeline::AugModel::prepare`]) hoists all of that
//! out of the hot path:
//!
//! * every planned query is resolved to an **interned feature slot** — a
//!   direct `Arc` onto its memoized per-group feature vector, so no cache
//!   map (and no `Debug` rendering) is touched per lookup;
//! * every distinct group-key subset gets one **key probe**: the subset's
//!   positions within the full serve key, a pre-built value→dictionary-code
//!   atomizer per key column (cloned out of the relevant table, so the hot
//!   path never touches the table), and the engine's retained typed-key →
//!   group-id map;
//! * [`ServingHandle::lookup`] then answers a request with, per probe, one
//!   dictionary probe per categorical key component and one group-map probe
//!   — two hash probes for the common single-subset plan — followed by a
//!   slice copy into the caller's buffer. The warm path performs **zero heap
//!   allocations** (the key atoms live in a stack buffer; `Vec<KeyAtom>`
//!   keys borrow as `[KeyAtom]` slices), which the serving conformance suite
//!   asserts through a counting allocator.
//!
//! [`ServingHandle::lookup_batch`] fans request batches across the same
//! pool-cost-sized scoped worker pool the engine's batch evaluation uses
//! ([`workers_for_pool`]; `FEATAUG_THREADS` stays authoritative). A handle
//! over a shared-table engine is `Send + Sync + 'static`: share one behind
//! an `Arc` across every request thread of a serving process.
//!
//! ## Epochs
//!
//! The handle **follows live ingestion**. It keeps a cheap clone of the
//! engine (sharing the compiled epoch cell) plus its plan, and compiles the
//! probes and slots into a per-epoch [`EpochCell`]-published state. When
//! [`crate::exec::QueryEngine::append_relevant`] publishes a new epoch, the
//! next lookup notices the epoch advance (one atomic-epoch compare on the
//! warm path), recompiles the state — pure memo reads, because an append
//! carries every memoized per-group feature forward — and republishes it
//! atomically. Lookups never block behind ingestion: in-flight requests
//! finish against the state they pinned, and each batch pins exactly one
//! epoch.
//!
//! The [`tier`] submodule stacks the production concerns on top of the
//! handle: an admission-controlled request queue with deadlines and load
//! shedding, and an atomic model hot-swap cell.

pub mod shard;
pub mod tier;

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use feataug_tabular::groupby::KeyAtom;
use feataug_tabular::{CancelToken, Column, Value};

use crate::exec::{
    cancel_checkpoint, fan_out, workers_for_pool, EngineCore, EngineResult, EpochCell, GroupIndex,
    QueryEngine,
};
use crate::query::AugPlan;

/// Key subsets up to this many columns are atomized into a stack buffer;
/// wider (exotic) subsets fall back to one heap buffer per lookup.
const MAX_INLINE_KEY: usize = 8;

/// Pre-resolved translation of one key column's [`Value`]s into the relevant
/// table's key space, mirroring `KeyMapper`'s rules: categorical strings
/// resolve through the dictionary, every other type must match the column's
/// dtype exactly (ints never match datetimes), and NULL never matches.
enum Atomizer {
    /// value → dictionary code, cloned out of the relevant table's
    /// dictionary at prepare time.
    Cat(HashMap<String, u32>),
    Int,
    DateTime,
    Float,
    Bool,
}

impl Atomizer {
    fn for_column(column: &Column) -> Atomizer {
        match column {
            Column::Cat(c) => Atomizer::Cat(
                c.dictionary()
                    .iter()
                    .enumerate()
                    .map(|(code, v)| (v.clone(), code as u32))
                    .collect(),
            ),
            Column::Int(_) => Atomizer::Int,
            Column::DateTime(_) => Atomizer::DateTime,
            Column::Float(_) => Atomizer::Float,
            Column::Bool(_) => Atomizer::Bool,
        }
    }

    /// `None` means "can never match any group" — NULL, unseen categorical
    /// value, or type-mismatched key — exactly the rows a transform leaves
    /// NULL.
    // lint: hot-path
    fn atomize(&self, value: &Value) -> Option<KeyAtom> {
        match (self, value) {
            (Atomizer::Cat(dict), Value::Str(s)) => {
                dict.get(s.as_str()).map(|&code| KeyAtom::Code(code))
            }
            (Atomizer::Int, Value::Int(i)) => Some(KeyAtom::Int(*i)),
            (Atomizer::DateTime, Value::DateTime(t)) => Some(KeyAtom::Int(*t)),
            (Atomizer::Float, Value::Float(f)) => Some(KeyAtom::Bits(f.to_bits())),
            (Atomizer::Bool, Value::Bool(b)) => Some(KeyAtom::Bool(*b)),
            _ => None,
        }
    }
}

/// One distinct group-key subset's resolved probe: where its columns sit in
/// the full serve key, how to translate their values, and the engine's
/// retained key → group-id map.
struct KeyProbe {
    /// Position of each subset column within the full serve key `K`.
    positions: Vec<usize>,
    /// One atomizer per subset column, parallel to `positions`; shared
    /// (`Arc`) across every probe touching the same key column, so a
    /// categorical key's cloned dictionary exists once per handle.
    atomizers: Vec<Arc<Atomizer>>,
    /// The compiled group index (its retained key map answers the probe).
    index: Arc<GroupIndex>,
    /// The contiguous run of feature slots this probe answers.
    slots: Range<usize>,
}

impl KeyProbe {
    /// Resolve the full serve key to this subset's group id: one atomize per
    /// subset column (a dictionary hash probe for categoricals), then one
    /// probe of the retained key map. Allocation-free for subsets up to
    /// [`MAX_INLINE_KEY`] columns.
    // lint: hot-path
    fn group_of(&self, key: &[Value]) -> Option<u32> {
        let n = self.positions.len();
        if n <= MAX_INLINE_KEY {
            let mut buf = [KeyAtom::Null; MAX_INLINE_KEY];
            for (slot, (pos, atomizer)) in buf
                .iter_mut()
                .zip(self.positions.iter().zip(&self.atomizers))
            {
                *slot = atomizer.atomize(&key[*pos])?;
            }
            self.index.group_of_key(&buf[..n])
        } else {
            // lint: allow(alloc): documented fallback for key subsets wider than MAX_INLINE_KEY
            let mut buf = Vec::with_capacity(n);
            for (pos, atomizer) in self.positions.iter().zip(&self.atomizers) {
                buf.push(atomizer.atomize(&key[*pos])?);
            }
            self.index.group_of_key(&buf)
        }
    }
}

/// One planned query's interned output slot.
struct FeatureSlot {
    /// Where this query's value lands in the output (plan order).
    out_pos: usize,
    /// The query's memoized per-group feature vector (group-aligned with the
    /// probe's index).
    feats: Arc<Vec<Option<f64>>>,
}

/// One engine epoch's compiled lookup state: the probes and interned feature
/// slots, all resolved against a single pinned [`EngineCore`]. Republished
/// atomically (via [`EpochCell`]) the first time a lookup observes the
/// engine on a newer epoch.
struct PreparedState {
    /// The engine epoch this state was compiled against.
    epoch: u64,
    /// One probe per distinct group-key subset, in first-appearance order.
    probes: Vec<KeyProbe>,
    /// One slot per planned query, grouped contiguously by probe.
    slots: Vec<FeatureSlot>,
}

/// A prepared, allocation-free lookup handle over a fitted (or compiled)
/// model's plan — built by [`crate::pipeline::AugModel::prepare`], which
/// pays each planned query's one aggregation up front. The handle follows
/// the engine across [`crate::exec::QueryEngine::append_relevant`] epochs.
/// See the [module docs](self) for the hot-path anatomy.
pub struct ServingHandle<'a> {
    /// The engine the handle follows across epochs (a cheap clone sharing
    /// the compiled epoch cell and memo).
    engine: QueryEngine<'a>,
    /// The plan served — kept so new epochs can be recompiled in place.
    plan: AugPlan,
    /// Feature column names, in plan (= output) order (stable across
    /// epochs).
    feature_names: Vec<String>,
    /// The current epoch's compiled probes and slots.
    state: EpochCell<PreparedState>,
}

impl std::fmt::Debug for ServingHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.load();
        f.debug_struct("ServingHandle")
            .field("key_columns", &self.plan.key_columns)
            .field("features", &state.slots.len())
            .field("key_probes", &state.probes.len())
            .field("epoch", &state.epoch)
            .finish()
    }
}

impl<'a> ServingHandle<'a> {
    /// Resolve `plan` against `engine`: evaluate-and-memoize each query's
    /// per-group feature (the one aggregation a cold query costs), intern
    /// the feature slots, and pre-build one key probe per distinct group-key
    /// subset. Errors when a query's aggregation fails, a group key is not a
    /// plan key column, or a key column is missing from the relevant table.
    pub(crate) fn prepare(
        engine: &QueryEngine<'a>,
        plan: &AugPlan,
    ) -> EngineResult<ServingHandle<'a>> {
        let core = engine.core();
        let state = Self::build_state(engine, &core, plan)?;
        Ok(ServingHandle {
            engine: engine.clone(),
            plan: plan.clone(),
            feature_names: plan.feature_names(),
            state: EpochCell::new(Arc::new(state)),
        })
    }

    /// Compile `plan`'s probes and slots against one pinned `core`. Every
    /// feature resolves through the engine memo (a map read when the epoch
    /// carried it forward), and every atomizer dictionary is cloned out of
    /// the pinned core's relevant table — appends can grow dictionaries, so
    /// the clones are per-epoch state, not handle state.
    fn build_state(
        engine: &QueryEngine<'a>,
        core: &EngineCore<'a>,
        plan: &AugPlan,
    ) -> EngineResult<PreparedState> {
        // Group the plan's queries by key subset, first-appearance order.
        // One flat Vec (not subset-keyed maps) so the compile pass below
        // consumes each subset's entry directly — there is no "the map must
        // contain this key" invariant left to get wrong. Plans hold a handful
        // of distinct subsets, so the linear probe is cheap.
        type SubsetGroup = (Vec<String>, Arc<GroupIndex>, Vec<FeatureSlot>);
        let mut grouped: Vec<SubsetGroup> = Vec::new();
        for (out_pos, planned) in plan.queries.iter().enumerate() {
            let (index, feats) = engine.group_feature(core, &planned.query)?;
            let keys = &planned.query.group_keys;
            let slot = FeatureSlot { out_pos, feats };
            match grouped.iter_mut().find(|(subset, _, _)| subset == keys) {
                Some((_, _, subset_slots)) => subset_slots.push(slot),
                None => grouped.push((keys.clone(), index, vec![slot])),
            }
        }

        let mut probes = Vec::with_capacity(grouped.len());
        let mut slots = Vec::with_capacity(plan.queries.len());
        let mut atomizer_cache: HashMap<String, Arc<Atomizer>> = HashMap::new();
        for (subset, index, subset_slots) in grouped {
            let positions = subset
                .iter()
                .map(|key| {
                    plan.key_columns
                        .iter()
                        .position(|c| c == key)
                        .ok_or_else(|| {
                            feataug_tabular::TabularError::InvalidArgument(format!(
                                "planned query groups by `{key}`, which is not a plan key column"
                            ))
                        })
                })
                .collect::<feataug_tabular::Result<Vec<_>>>()?;
            // One atomizer per key *column*, shared across every subset that
            // probes it — a categorical key's cloned dictionary can be large,
            // so it must not be duplicated per subset.
            let atomizers = subset
                .iter()
                .map(|key| match atomizer_cache.get(key) {
                    Some(atomizer) => Ok(Arc::clone(atomizer)),
                    None => {
                        let built = Arc::new(Atomizer::for_column(core.relevant().column(key)?));
                        atomizer_cache.insert(key.clone(), Arc::clone(&built));
                        Ok(built)
                    }
                })
                .collect::<feataug_tabular::Result<Vec<_>>>()?;
            let start = slots.len();
            slots.extend(subset_slots);
            probes.push(KeyProbe {
                positions,
                atomizers,
                index,
                slots: start..slots.len(),
            });
        }

        Ok(PreparedState {
            epoch: core.epoch(),
            probes,
            slots,
        })
    }

    /// Pin the current epoch's compiled state, recompiling first when the
    /// engine has advanced past it (an `append_relevant` landed). The warm
    /// path — epoch unchanged — is two short lock holds and one compare,
    /// with **zero heap allocations**.
    // lint: hot-path
    fn current_state(&self) -> EngineResult<Arc<PreparedState>> {
        let state = self.state.load();
        if state.epoch == self.engine.epoch() {
            return Ok(state);
        }
        self.refresh()
    }

    /// Recompile the probes and slots against the engine's current epoch and
    /// publish them. Appends carry every memoized per-group feature forward,
    /// so this is pure map reads — no aggregation re-runs, no evaluation
    /// counter moves. Racing refreshes are benign: each publishes a state
    /// consistent with some recent epoch, and the next lookup re-checks.
    fn refresh(&self) -> EngineResult<Arc<PreparedState>> {
        let core = self.engine.core();
        let built = Arc::new(Self::build_state(&self.engine, &core, &self.plan)?);
        self.state.swap(Arc::clone(&built));
        Ok(built)
    }

    /// The engine epoch the handle last compiled its lookup state against.
    pub fn epoch(&self) -> u64 {
        self.state.load().epoch
    }

    /// The plan's foreign-key columns, in the order `lookup` expects the key
    /// values.
    pub fn key_columns(&self) -> &[String] {
        &self.plan.key_columns
    }

    /// Feature column names, aligned with the output slots of `lookup`.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of features a lookup writes.
    pub fn num_features(&self) -> usize {
        self.plan.queries.len()
    }

    /// Answer one online request into `out` (resized to
    /// [`ServingHandle::num_features`], plan order; `None` marks the same
    /// rows a transform would leave NULL — unseen, filtered-away, NULL or
    /// type-mismatched keys, and non-finite aggregates). `key` holds one
    /// [`Value`] per plan key column.
    ///
    /// The warm path — a reused `out` buffer — performs **zero heap
    /// allocations**: per distinct key subset, the key atoms are built in a
    /// stack buffer, the group id is one hash probe of the retained key map
    /// (plus one dictionary probe per categorical key component), and each
    /// feature is a slice read. No `Debug`/SQL rendering, no [`Value`]
    /// clones. Results are bit-identical to
    /// [`crate::pipeline::AugModel::serve`].
    // lint: hot-path
    pub fn lookup(&self, key: &[Value], out: &mut Vec<Option<f64>>) -> EngineResult<()> {
        let state = self.current_state()?;
        self.lookup_with(&state, key, out)
    }

    /// [`ServingHandle::lookup`] under a [`CancelToken`]: the probe loop
    /// polls the token before each key probe, so a request whose deadline has
    /// already fired is preempted mid-lookup with
    /// [`crate::exec::EngineError::Cancelled`] instead of finishing its
    /// remaining probes — the hook [`tier::ServingTier`] deadlines use to
    /// preempt in-flight work.
    pub fn lookup_cancel(
        &self,
        key: &[Value],
        out: &mut Vec<Option<f64>>,
        cancel: &CancelToken,
    ) -> EngineResult<()> {
        let state = self.current_state()?;
        self.lookup_with_cancel(&state, key, out, Some(cancel))
    }

    /// [`ServingHandle::lookup`] against one already-pinned epoch state —
    /// the shared tail of the point and batch paths.
    // lint: hot-path
    fn lookup_with(
        &self,
        state: &PreparedState,
        key: &[Value],
        out: &mut Vec<Option<f64>>,
    ) -> EngineResult<()> {
        self.lookup_with_cancel(state, key, out, None)
    }

    /// The shared probe loop. Without a token (`cancel` = `None` — every
    /// search-time and deadline-less path) the checkpoint is a skipped
    /// branch; with one, each probe boundary is a preemption point.
    // lint: hot-path
    fn lookup_with_cancel(
        &self,
        state: &PreparedState,
        key: &[Value],
        out: &mut Vec<Option<f64>>,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<()> {
        crate::fail_point!("serving.lookup");
        if key.len() != self.plan.key_columns.len() {
            // lint: allow(alloc): cold arity-error branch, never taken by a well-formed caller
            return Err(feataug_tabular::TabularError::InvalidArgument(format!(
                "lookup key has {} values for {} key columns",
                key.len(),
                self.plan.key_columns.len()
            ))
            .into());
        }
        out.clear();
        out.resize(state.slots.len(), None);
        for probe in &state.probes {
            cancel_checkpoint(cancel)?;
            let group = probe.group_of(key);
            for slot in &state.slots[probe.slots.start..probe.slots.end] {
                out[slot.out_pos] = group
                    .and_then(|g| slot.feats[g as usize])
                    .filter(|v| v.is_finite());
            }
        }
        Ok(())
    }

    /// [`ServingHandle::lookup`] into a fresh vector (allocates; the
    /// buffer-reusing form is the hot path).
    pub fn lookup_vec(&self, key: &[Value]) -> EngineResult<Vec<Option<f64>>> {
        let mut out = Vec::with_capacity(self.plan.queries.len());
        self.lookup(key, &mut out)?;
        Ok(out)
    }

    /// Answer a batch of requests, fanned across a [`workers_for_pool`]-sized
    /// scoped worker pool (`FEATAUG_THREADS` overrides; one worker runs the
    /// loop inline). `results[i]` is `keys[i]`'s features, bit-identical to
    /// serial [`ServingHandle::lookup`] calls at any worker count. Key
    /// arities are validated up front so a malformed request errors before
    /// any work.
    pub fn lookup_batch(&self, keys: &[Vec<Value>]) -> EngineResult<Vec<Vec<Option<f64>>>> {
        for key in keys {
            if key.len() != self.plan.key_columns.len() {
                return Err(feataug_tabular::TabularError::InvalidArgument(format!(
                    "lookup key has {} values for {} key columns",
                    key.len(),
                    self.plan.key_columns.len()
                ))
                .into());
            }
        }
        self.try_lookup_batch(keys).into_iter().collect()
    }

    /// Panic-contained batch lookup with **per-request** outcomes:
    /// `results[i]` is `keys[i]`'s features or its own typed error, so one
    /// panicking (or malformed) request cannot fail its batch-mates — the
    /// shape the admission-controlled tier serves from. Values are
    /// bit-identical to serial [`ServingHandle::lookup`] calls at any worker
    /// count.
    pub fn try_lookup_batch(&self, keys: &[Vec<Value>]) -> Vec<EngineResult<Vec<Option<f64>>>> {
        // Pin one epoch for the whole batch: every batch-mate answers
        // against the same snapshot even while appends land concurrently.
        let pinned = self.current_state();
        fan_out(
            keys,
            workers_for_pool(keys.len()),
            "batch lookup",
            || Vec::with_capacity(self.plan.queries.len()),
            |_| (),
            |row, key| {
                match &pinned {
                    Ok(state) => self.lookup_with(state, key, row)?,
                    // The epoch recompile failed; re-resolving per request
                    // reproduces the typed error for each batch-mate.
                    Err(_) => self.lookup(key, row)?,
                }
                Ok(row.clone())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PlannedQuery, PredicateQuery};
    use feataug_tabular::{AggFunc, Column, Predicate, Table};

    fn train() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m2", "m9"]))
            .unwrap();
        t
    }

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m1", "m2", "m2"]))
            .unwrap();
        t.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        t.add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
            .unwrap();
        t
    }

    fn plan() -> AugPlan {
        let q = |agg: AggFunc, predicate: Predicate, keys: &[&str]| PlannedQuery {
            query: PredicateQuery {
                agg,
                agg_column: "pprice".into(),
                predicate,
                group_keys: keys.iter().map(|s| s.to_string()).collect(),
            },
            loss: 0.0,
        };
        AugPlan::new(
            "logs",
            vec!["cname".into(), "mid".into()],
            vec![
                q(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
                q(AggFunc::Avg, Predicate::True, &["cname", "mid"]),
                q(AggFunc::Count, Predicate::True, &["cname"]),
                // `mid` alone — a third subset, out of key order.
                q(AggFunc::Max, Predicate::True, &["mid"]),
            ],
        )
    }

    #[test]
    fn prepared_lookup_answers_in_plan_order() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let plan = plan();
        let handle = ServingHandle::prepare(&engine, &plan).unwrap();
        assert_eq!(handle.num_features(), 4);
        assert_eq!(handle.feature_names(), plan.feature_names().as_slice());
        assert_eq!(handle.key_columns(), plan.key_columns.as_slice());

        let mut out = Vec::new();
        handle
            .lookup(&[Value::Str("a".into()), Value::Str("m1".into())], &mut out)
            .unwrap();
        assert_eq!(
            out,
            vec![Some(10.0), Some(15.0), Some(2.0), Some(20.0)],
            "slots must land in plan order, not probe order"
        );
        // Unseen key component: every slot probing it goes NULL, the rest
        // answer normally.
        handle
            .lookup(&[Value::Str("a".into()), Value::Str("zz".into())], &mut out)
            .unwrap();
        assert_eq!(out, vec![Some(10.0), None, Some(2.0), None]);
        // NULL and type-mismatched keys never match.
        handle
            .lookup(&[Value::Null, Value::Str("m1".into())], &mut out)
            .unwrap();
        assert_eq!(out, vec![None, None, None, Some(20.0)]);
        handle
            .lookup(&[Value::Int(7), Value::Str("m2".into())], &mut out)
            .unwrap();
        assert_eq!(out, vec![None, None, None, Some(40.0)]);
        // Arity mismatch is an error, not a silent miss.
        assert!(handle.lookup(&[Value::Str("a".into())], &mut out).is_err());
    }

    #[test]
    fn prepare_pays_each_aggregation_once_and_lookups_move_no_counter() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let plan = plan();
        let handle = ServingHandle::prepare(&engine, &plan).unwrap();
        let after_prepare = engine.stats();
        assert_eq!(after_prepare.group_features, 4);
        assert_eq!(after_prepare.evaluations, 4);

        let mut out = Vec::new();
        for key in [
            [Value::Str("a".into()), Value::Str("m1".into())],
            [Value::Str("b".into()), Value::Str("m2".into())],
            [Value::Str("zz".into()), Value::Null],
        ] {
            handle.lookup(&key, &mut out).unwrap();
        }
        assert_eq!(
            engine.stats(),
            after_prepare,
            "warm lookups must be pure probe reads"
        );
        // A second prepare reuses every memoized per-group feature.
        let again = ServingHandle::prepare(&engine, &plan).unwrap();
        assert_eq!(engine.stats(), after_prepare);
        assert_eq!(again.num_features(), 4);
    }

    #[test]
    fn prepare_rejects_foreign_group_keys_and_missing_columns() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        // A query grouping by a column outside the plan's key set.
        let mut bad = plan();
        bad.key_columns = vec!["cname".into()];
        let err = ServingHandle::prepare(&engine, &bad).unwrap_err();
        assert!(err.to_string().contains("not a plan key column"));
        // A query whose aggregation column is missing errors during the
        // prepare-time aggregation.
        let mut ghost = plan();
        ghost.queries[0].query.agg_column = "nope".into();
        assert!(ServingHandle::prepare(&engine, &ghost).is_err());
    }

    #[test]
    fn lookup_batch_matches_serial_lookups() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let handle = ServingHandle::prepare(&engine, &plan()).unwrap();
        let keys: Vec<Vec<Value>> = ["a", "b", "c", "zz", "a", "b"]
            .iter()
            .cycle()
            .take(40)
            .enumerate()
            .map(|(i, c)| {
                vec![
                    Value::Str(c.to_string()),
                    Value::Str(format!("m{}", i % 3 + 1)),
                ]
            })
            .collect();
        let batch = handle.lookup_batch(&keys).unwrap();
        assert_eq!(batch.len(), keys.len());
        let mut row = Vec::new();
        for (key, got) in keys.iter().zip(&batch) {
            handle.lookup(key, &mut row).unwrap();
            assert_eq!(got, &row);
        }
        // Any bad arity in the batch errors up front.
        let mut keys = keys;
        keys.push(vec![Value::Str("a".into())]);
        assert!(handle.lookup_batch(&keys).is_err());
    }

    #[test]
    fn lookup_follows_appends_without_reprepare() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let handle = ServingHandle::prepare(&engine, &plan()).unwrap();
        let mut out = Vec::new();
        handle
            .lookup(&[Value::Str("a".into()), Value::Str("m1".into())], &mut out)
            .unwrap();
        assert_eq!(out[0], Some(10.0));
        assert_eq!(handle.epoch(), 0);

        // Append one more department-E row for (a, m1) and a brand-new
        // (c, m3) group whose key values are new dictionary entries.
        let mut batch = Table::new("logs");
        batch
            .add_column("cname", Column::from_strs(&["a", "c"]))
            .unwrap();
        batch
            .add_column("mid", Column::from_strs(&["m1", "m3"]))
            .unwrap();
        batch
            .add_column("pprice", Column::from_f64s(&[5.0, 7.0]))
            .unwrap();
        batch
            .add_column("department", Column::from_strs(&["E", "E"]))
            .unwrap();
        let info = engine.append_relevant(&batch).unwrap();
        assert_eq!(info.epoch, 1);

        // The next lookup transparently refreshes onto the new epoch.
        handle
            .lookup(&[Value::Str("a".into()), Value::Str("m1".into())], &mut out)
            .unwrap();
        assert_eq!(out[0], Some(15.0), "sum picks up the appended E row");
        assert_eq!(out[2], Some(3.0), "count sees the third cname=a row");
        assert_eq!(handle.epoch(), 1);
        // The new group — including its fresh dictionary codes — serves.
        handle
            .lookup(&[Value::Str("c".into()), Value::Str("m3".into())], &mut out)
            .unwrap();
        assert_eq!(out, vec![Some(7.0), Some(7.0), Some(1.0), Some(7.0)]);
    }

    #[test]
    fn handle_is_send_sync_static() {
        fn assert_send_sync_static<T: Send + Sync + 'static>(_: &T) {}
        let (train, relevant) = (Arc::new(train()), Arc::new(relevant()));
        let engine = QueryEngine::new_shared(train, relevant);
        let handle = ServingHandle::prepare(&engine, &plan()).unwrap();
        assert_send_sync_static(&handle);
        drop(engine);
        // The handle carries its own engine clone (sharing the compiled
        // epoch cell), so dropping the caller's engine changes nothing.
        let mut out = Vec::new();
        handle
            .lookup(&[Value::Str("b".into()), Value::Str("m2".into())], &mut out)
            .unwrap();
        assert_eq!(out[0], Some(70.0));
        let from_thread = std::thread::spawn(move || {
            let mut out = Vec::new();
            handle
                .lookup(&[Value::Str("a".into()), Value::Str("m1".into())], &mut out)
                .unwrap();
            out
        })
        .join()
        .unwrap();
        assert_eq!(from_thread[0], Some(10.0));
    }
}
