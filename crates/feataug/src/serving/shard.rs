//! Key-sharded serving: hash-partition the relevant table across N
//! independent [`QueryEngine`]s and route every request to the shard that
//! owns its key.
//!
//! # Why sharding is bit-exact here
//!
//! The router partitions relevant rows by a hash of the **shard keys** — the
//! key columns every planned query groups by (the intersection of the
//! queries' `group_keys`, kept in task key-column order). Because the shard
//! keys are a subset of *every* query's group keys, two rows of the same
//! group always carry the same shard-key values, hash identically, and land
//! on the same shard. Each shard therefore holds its groups **whole**, in
//! original relative row order ([`Table::take_with_dict`] preserves order
//! *and* the global categorical dictionaries), so per-shard aggregation
//! visits exactly the row sequence the unsharded engine would — the
//! per-group features are bit-identical, not merely close. The conformance
//! property suite (`tests/sharding.rs`) pins this at shard counts 1, 2 and 7.
//!
//! The one construction this argument cannot cover is a **categorical
//! aggregation column under a non-trivial predicate**: the engine renumbers
//! the selected codes by first appearance across the globally-filtered rows,
//! an ordering a shard cannot reconstruct from its rows alone.
//! [`ShardRouter::build`] rejects that combination up front whenever more
//! than one shard is requested, rather than serving subtly different
//! frequencies.
//!
//! # Topology
//!
//! ```text
//!                 ┌── shard 0: QueryEngine (EpochCell core)
//!   ShardRouter ──┼── shard 1: QueryEngine          ── append_relevant
//!   (generation)  └── shard 2: QueryEngine             splits the batch by
//!        │                                             the same hash
//!        └── ShardedServingHandle: one ServingHandle (PreparedState
//!            EpochCell) per shard; lookup = hash + owning-shard probe
//! ```
//!
//! `lookup` / serve probe only the owning shard; `transform` and
//! `append_relevant` fan across shards (each input batch split by the same
//! hash). Appends publish per-shard epochs and bump one router-level
//! generation once the whole batch has landed. A panicking shard fails only
//! the requests it owns — the router contains the panic as
//! [`EngineError::WorkerPanic`] and the survivors keep serving (chaos-tested
//! via the `shard.route` / `shard.append` failpoints).

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use feataug_tabular::{CancelToken, Column, Table, Value};

use crate::exec::{
    default_workers, fan_out, lock_recover, panic_message, EngineError, EngineResult, Epoch,
    QueryEngine,
};
use crate::query::{AugPlan, PredicateQuery};
use crate::serving::ServingHandle;

// ---------------------------------------------------------------------------
// Routing hash
// ---------------------------------------------------------------------------

/// Feed one key component into the routing hash. Every kind is prefixed by a
/// discriminant so `Int(1)` and `DateTime(1)` route independently, strings
/// are terminated so adjacent components cannot alias, and floats hash by
/// bit pattern. Must stay in lockstep with [`hash_cell`]: a stored row and
/// the key that looks it up have to reach the same shard.
// lint: hot-path
fn hash_value(h: &mut DefaultHasher, value: &Value) {
    match value {
        Value::Null => h.write_u8(0),
        Value::Int(v) => {
            h.write_u8(1);
            h.write_i64(*v);
        }
        Value::Float(v) => {
            h.write_u8(2);
            h.write_u64(v.to_bits());
        }
        Value::Bool(v) => {
            h.write_u8(3);
            h.write_u8(*v as u8);
        }
        Value::Str(s) => {
            h.write_u8(4);
            h.write(s.as_bytes());
            h.write_u8(0xff);
        }
        Value::DateTime(v) => {
            h.write_u8(5);
            h.write_i64(*v);
        }
    }
}

/// [`hash_value`] for a column cell, without materialising a [`Value`] (no
/// `String` clone for categorical cells — partitioning a table hashes every
/// row). Discriminants match `hash_value` exactly.
fn hash_cell(h: &mut DefaultHasher, column: &Column, row: usize) {
    match column {
        Column::Int(v) => match v[row] {
            Some(x) => {
                h.write_u8(1);
                h.write_i64(x);
            }
            None => h.write_u8(0),
        },
        Column::Float(v) => match v[row] {
            Some(x) => {
                h.write_u8(2);
                h.write_u64(x.to_bits());
            }
            None => h.write_u8(0),
        },
        Column::Bool(v) => match v[row] {
            Some(x) => {
                h.write_u8(3);
                h.write_u8(x as u8);
            }
            None => h.write_u8(0),
        },
        Column::DateTime(v) => match v[row] {
            Some(x) => {
                h.write_u8(5);
                h.write_i64(x);
            }
            None => h.write_u8(0),
        },
        Column::Cat(c) => match c.get(row) {
            Some(s) => {
                h.write_u8(4);
                h.write(s.as_bytes());
                h.write_u8(0xff);
            }
            None => h.write_u8(0),
        },
    }
}

/// Shard owning `row` of a table whose shard-key columns are `columns` (in
/// shard-key order).
fn row_shard(columns: &[&Column], row: usize, n_shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    for column in columns {
        hash_cell(&mut h, column, row);
    }
    (h.finish() % n_shards as u64) as usize
}

/// Split `table`'s rows into one index list per shard by hashing the
/// shard-key columns. Errors when a shard-key column is missing from the
/// table — before any partitioning work.
fn partition_rows(
    table: &Table,
    shard_keys: &[String],
    n_shards: usize,
) -> EngineResult<Vec<Vec<usize>>> {
    let columns = shard_keys
        .iter()
        .map(|key| table.column(key))
        .collect::<feataug_tabular::Result<Vec<_>>>()?;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for row in 0..table.num_rows() {
        buckets[row_shard(&columns, row, n_shards)].push(row);
    }
    Ok(buckets)
}

fn invalid(message: String) -> EngineError {
    feataug_tabular::TabularError::InvalidArgument(message).into()
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

/// Summary of one batch applied through [`ShardRouter::append_relevant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEpoch {
    /// Router generation after the append (counts successful router-level
    /// appends; bumped once per batch, after every shard has published).
    pub generation: u64,
    /// Rows in the appended batch, summed over shards.
    pub appended_rows: usize,
    /// `(shard, epoch)` for each shard that received rows, in shard order.
    /// Shards whose sub-batch was empty keep their epoch and are absent.
    pub shard_epochs: Vec<(usize, Epoch)>,
}

/// N hash-partitioned [`QueryEngine`] shards behind one query-compatible
/// facade: `lookup` probes the owning shard, `transform` and
/// `append_relevant` fan the input across shards by the same hash. See the
/// [module docs](self) for the bit-exactness argument and the
/// categorical-predicate construction [`ShardRouter::build`] rejects.
pub struct ShardRouter {
    /// One engine per shard, each owning its hash-partition of the relevant
    /// table (and sharing the training table `Arc`).
    shards: Vec<QueryEngine<'static>>,
    /// The key columns every planned query groups by, in task key-column
    /// order — the routing domain.
    shard_keys: Vec<String>,
    /// Successful router-level appends. Readers may compare generations to
    /// detect that a whole batch (not just one shard's slice) has landed.
    generation: AtomicU64,
    /// Serialises router-level appends, so concurrent batches cannot
    /// interleave their per-shard sub-appends.
    ingest: Mutex<()>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("n_shards", &self.shards.len())
            .field("shard_keys", &self.shard_keys)
            .field("generation", &self.generation.load(Ordering::Acquire))
            .finish()
    }
}

impl ShardRouter {
    /// Partition `relevant` into `n_shards` engines keyed by the columns of
    /// `key_columns` that **every** query of `queries` groups by.
    ///
    /// Errors (all before any engine is built):
    /// - `n_shards == 0`;
    /// - more than one shard requested but no key column is common to every
    ///   query's `group_keys` (groups would straddle shards);
    /// - more than one shard requested and some query aggregates a
    ///   categorical column under a non-trivial predicate (the one shape
    ///   whose code numbering is inherently global — see the
    ///   [module docs](self));
    /// - a shard-key column is missing from `relevant`.
    pub fn build(
        train: Arc<Table>,
        relevant: &Table,
        key_columns: &[String],
        queries: &[PredicateQuery],
        n_shards: usize,
    ) -> EngineResult<ShardRouter> {
        if n_shards == 0 {
            return Err(invalid("shard router needs at least one shard".into()));
        }
        let shard_keys: Vec<String> = key_columns
            .iter()
            .filter(|key| queries.iter().all(|q| q.group_keys.contains(key)))
            .cloned()
            .collect();
        if n_shards > 1 {
            if shard_keys.is_empty() {
                return Err(invalid(
                    "cannot shard: no key column is grouped by every query, so groups \
                     would straddle shards"
                        .into(),
                ));
            }
            for query in queries {
                if query.predicate.is_trivial() {
                    continue;
                }
                if let Ok(Column::Cat(_)) = relevant.column(&query.agg_column) {
                    return Err(invalid(format!(
                        "cannot shard: query aggregates categorical column \
                         `{}` under a non-trivial predicate, whose code \
                         numbering is global by construction",
                        query.agg_column
                    )));
                }
            }
        }
        let buckets = partition_rows(relevant, &shard_keys, n_shards)?;
        let shards = buckets
            .into_iter()
            .map(|bucket| {
                QueryEngine::new_shared(
                    Arc::clone(&train),
                    Arc::new(relevant.take_with_dict(&bucket)),
                )
            })
            .collect();
        Ok(ShardRouter {
            shards,
            shard_keys,
            generation: AtomicU64::new(0),
            ingest: Mutex::new(()),
        })
    }

    /// [`ShardRouter::build`] driven by a compiled [`AugPlan`]: the task keys
    /// and queries are the plan's.
    pub fn build_for_plan(
        train: Arc<Table>,
        relevant: &Table,
        plan: &AugPlan,
        n_shards: usize,
    ) -> EngineResult<ShardRouter> {
        let queries: Vec<PredicateQuery> = plan.queries.iter().map(|p| p.query.clone()).collect();
        ShardRouter::build(train, relevant, &plan.key_columns, &queries, n_shards)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The key columns requests are routed by.
    pub fn shard_keys(&self) -> &[String] {
        &self.shard_keys
    }

    /// Router-level generation: successful [`ShardRouter::append_relevant`]
    /// batches applied so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The engine owning shard `index` — the conformance and chaos suites
    /// interrogate shards directly; serving goes through the router.
    pub fn shard(&self, index: usize) -> &QueryEngine<'static> {
        &self.shards[index]
    }

    /// Shard owning a key whose components are `key_values` aligned with
    /// `group_keys`. Errors when the query does not group by every shard key
    /// (its groups straddle shards) or on key arity mismatch.
    fn shard_of_query_key(
        &self,
        group_keys: &[String],
        key_values: &[Value],
    ) -> EngineResult<usize> {
        if key_values.len() != group_keys.len() {
            return Err(invalid(format!(
                "lookup key has {} values for {} group-key columns",
                key_values.len(),
                group_keys.len()
            )));
        }
        if self.shards.len() == 1 {
            return Ok(0);
        }
        let mut h = DefaultHasher::new();
        for shard_key in &self.shard_keys {
            let pos = group_keys
                .iter()
                .position(|k| k == shard_key)
                .ok_or_else(|| {
                    invalid(format!(
                        "query does not group by shard key `{shard_key}`; its groups \
                         straddle shards"
                    ))
                })?;
            hash_value(&mut h, &key_values[pos]);
        }
        Ok((h.finish() % self.shards.len() as u64) as usize)
    }

    /// [`QueryEngine::lookup`] against the shard owning `key_values`. A panic
    /// inside the owning shard (or an armed `shard.route` failpoint) is
    /// contained as [`EngineError::WorkerPanic`] — only this request fails;
    /// every other shard keeps serving untouched.
    pub fn lookup(
        &self,
        query: &PredicateQuery,
        key_values: &[Value],
    ) -> EngineResult<Option<f64>> {
        self.lookup_opt(query, key_values, None)
    }

    /// [`ShardRouter::lookup`] under a [`CancelToken`]: the owning shard's
    /// first aggregation polls the token at the kernel checkpoints.
    pub fn lookup_cancel(
        &self,
        query: &PredicateQuery,
        key_values: &[Value],
        cancel: &CancelToken,
    ) -> EngineResult<Option<f64>> {
        self.lookup_opt(query, key_values, Some(cancel))
    }

    fn lookup_opt(
        &self,
        query: &PredicateQuery,
        key_values: &[Value],
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Option<f64>> {
        let shard = self.shard_of_query_key(&query.group_keys, key_values)?;
        match catch_unwind(AssertUnwindSafe(|| {
            crate::fail_point!("shard.route");
            match cancel {
                Some(token) => self.shards[shard].lookup_cancel(query, key_values, token),
                None => self.shards[shard].lookup(query, key_values),
            }
        })) {
            Ok(result) => result,
            Err(payload) => Err(EngineError::WorkerPanic {
                context: "shard route",
                message: panic_message(payload),
            }),
        }
    }

    /// [`QueryEngine::transform`] fanned across shards: `table`'s rows are
    /// split by the routing hash, each shard transforms its slice against its
    /// partition, and the per-row results scatter back into input order —
    /// bit-identical to the unsharded transform (each row's group lives whole
    /// on its owning shard). Shards with no rows are skipped. A panicking
    /// shard fails the whole transform with [`EngineError::WorkerPanic`]
    /// (the caller retries or falls back), but cannot poison other shards.
    pub fn transform(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        self.transform_opt(queries, table, None)
    }

    /// [`ShardRouter::transform`] under a [`CancelToken`]: every shard's
    /// aggregation and gather poll the token, so one tripped deadline
    /// abandons the fan-out mid-work.
    pub fn transform_cancel(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
        cancel: &CancelToken,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        self.transform_opt(queries, table, Some(cancel))
    }

    fn transform_opt(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        if self.shards.len() == 1 {
            // Degenerate single-shard router: today's path, byte for byte.
            return match cancel {
                Some(token) => self.shards[0].transform_cancel(queries, table, token),
                None => self.shards[0].transform(queries, table),
            };
        }
        let buckets = partition_rows(table, &self.shard_keys, self.shards.len())?;
        let jobs: Vec<(usize, Vec<usize>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .collect();
        let parts = fan_out(
            &jobs,
            default_workers().min(jobs.len().max(1)),
            "shard transform",
            || (),
            |_| (),
            |_, (shard, rows)| {
                crate::fail_point!("shard.route");
                let sub = table.take_with_dict(rows);
                match cancel {
                    Some(token) => self.shards[*shard].transform_cancel(queries, &sub, token),
                    None => self.shards[*shard].transform(queries, &sub),
                }
            },
        );
        let mut out: Vec<Vec<Option<f64>>> = queries
            .iter()
            .map(|_| vec![None; table.num_rows()])
            .collect();
        for ((_, rows), part) in jobs.iter().zip(parts) {
            let sub_out = part?;
            for (feature, sub_feature) in out.iter_mut().zip(sub_out) {
                for (&row, value) in rows.iter().zip(sub_feature) {
                    feature[row] = value;
                }
            }
        }
        Ok(out)
    }

    /// Ingest a batch across shards: the batch is split by the routing hash
    /// and each owning shard appends its slice (publishing its own epoch,
    /// with the global categorical dictionaries preserved — see
    /// [`Table::take_with_dict`] / `Table::concat_absorbing`). The router
    /// generation bumps once, after every shard has published.
    ///
    /// Batches are serialised by a router-level ingest lock. A failing or
    /// panicking shard aborts the batch with the generation unbumped;
    /// sub-batches already applied to earlier shards stay applied (each is
    /// individually consistent), so the caller may simply retry — the armed
    /// `shard.append` failpoint fires *before* any dispatch, which is what
    /// the chaos suite exercises.
    pub fn append_relevant(&self, rows: &Table) -> EngineResult<ShardEpoch> {
        match catch_unwind(AssertUnwindSafe(|| self.append_inner(rows))) {
            Ok(result) => result,
            Err(payload) => Err(EngineError::WorkerPanic {
                context: "shard append",
                message: panic_message(payload),
            }),
        }
    }

    fn append_inner(&self, rows: &Table) -> EngineResult<ShardEpoch> {
        let _ingest = lock_recover(&self.ingest);
        crate::fail_point!("shard.append");
        let buckets = partition_rows(rows, &self.shard_keys, self.shards.len())?;
        let mut shard_epochs = Vec::new();
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let sub = rows.take_with_dict(&bucket);
            shard_epochs.push((shard, self.shards[shard].append_relevant(&sub)?));
        }
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(ShardEpoch {
            generation,
            appended_rows: rows.num_rows(),
            shard_epochs,
        })
    }
}

// ---------------------------------------------------------------------------
// ShardedServingHandle
// ---------------------------------------------------------------------------

/// The sharded analogue of [`ServingHandle`]: one prepared handle per shard
/// (each with its own `PreparedState` epoch cell, refreshed lazily as its
/// shard's epochs advance), plus the routing hash. Plugs into
/// [`crate::serving::tier::ServingTier`] unchanged — a warm lookup is the
/// routing hash plus one owning-shard probe, with zero heap allocations
/// (counting-allocator-enforced in `tests/serving_alloc.rs`).
pub struct ShardedServingHandle {
    /// One prepared handle per shard, index-aligned with the router's
    /// engines.
    handles: Vec<ServingHandle<'static>>,
    /// Positions of the router's shard keys inside the plan's key columns
    /// (shard-key order), so a request key hashes without any name lookups.
    shard_positions: Vec<usize>,
    /// The plan's key columns — request keys align with these.
    key_columns: Vec<String>,
    /// Feature column names, in plan (= output) order.
    feature_names: Vec<String>,
}

impl std::fmt::Debug for ShardedServingHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServingHandle")
            .field("n_shards", &self.handles.len())
            .field("key_columns", &self.key_columns)
            .field("features", &self.feature_names.len())
            .finish()
    }
}

impl ShardedServingHandle {
    /// Resolve `plan` against every shard of `router` — each shard pays its
    /// partition's aggregations once, up front. Errors when a shard key is
    /// not a plan key column, when some planned query does not group by every
    /// shard key (its groups straddle shards), or when any per-shard prepare
    /// fails.
    pub fn prepare(router: &ShardRouter, plan: &AugPlan) -> EngineResult<ShardedServingHandle> {
        let shard_positions = router
            .shard_keys
            .iter()
            .map(|key| {
                plan.key_columns
                    .iter()
                    .position(|c| c == key)
                    .ok_or_else(|| {
                        invalid(format!(
                            "shard key `{key}` is not a plan key column; the router cannot \
                         route this plan's requests"
                        ))
                    })
            })
            .collect::<EngineResult<Vec<_>>>()?;
        if router.n_shards() > 1 {
            for planned in &plan.queries {
                for shard_key in &router.shard_keys {
                    if !planned.query.group_keys.contains(shard_key) {
                        return Err(invalid(format!(
                            "planned query does not group by shard key `{shard_key}`; \
                             its groups straddle shards"
                        )));
                    }
                }
            }
        }
        let handles = router
            .shards
            .iter()
            .map(|engine| ServingHandle::prepare(engine, plan))
            .collect::<EngineResult<Vec<_>>>()?;
        Ok(ShardedServingHandle {
            handles,
            shard_positions,
            key_columns: plan.key_columns.clone(),
            feature_names: plan.feature_names(),
        })
    }

    /// Number of shards behind this handle.
    pub fn n_shards(&self) -> usize {
        self.handles.len()
    }

    /// The key columns a request key aligns with, in plan order.
    pub fn key_columns(&self) -> &[String] {
        &self.key_columns
    }

    /// Feature column names, in output order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of features a lookup produces.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Shard owning `key` (components aligned with
    /// [`ShardedServingHandle::key_columns`]; the caller has checked arity).
    // lint: hot-path
    fn shard_of(&self, key: &[Value]) -> usize {
        if self.handles.len() == 1 {
            return 0;
        }
        let mut h = DefaultHasher::new();
        for &pos in &self.shard_positions {
            hash_value(&mut h, &key[pos]);
        }
        (h.finish() % self.handles.len() as u64) as usize
    }

    /// Answer one request from the owning shard: the routing hash plus one
    /// [`ServingHandle::lookup`] probe. `out` is cleared and refilled in
    /// plan order; on the warm path (shard epoch unchanged, `out` capacity
    /// retained) the whole call performs **zero heap allocations** — the
    /// hash is stack-only and the probe reuses the shard's prepared state.
    // lint: hot-path
    pub fn lookup(&self, key: &[Value], out: &mut Vec<Option<f64>>) -> EngineResult<()> {
        crate::fail_point!("shard.route");
        if key.len() != self.key_columns.len() {
            return Err(self.arity_error(key.len()));
        }
        self.handles[self.shard_of(key)].lookup(key, out)
    }

    /// [`ShardedServingHandle::lookup`] under a [`CancelToken`]: the owning
    /// shard's probe loop polls the token before each key probe, so a tripped
    /// deadline preempts the request mid-lookup with
    /// [`EngineError::Cancelled`].
    pub fn lookup_cancel(
        &self,
        key: &[Value],
        out: &mut Vec<Option<f64>>,
        cancel: &CancelToken,
    ) -> EngineResult<()> {
        crate::fail_point!("shard.route");
        if key.len() != self.key_columns.len() {
            return Err(self.arity_error(key.len()));
        }
        self.handles[self.shard_of(key)].lookup_cancel(key, out, cancel)
    }

    /// Cold constructor for the arity mismatch error, kept out of the
    /// hot-path functions so they stay allocation-free.
    fn arity_error(&self, got: usize) -> EngineError {
        invalid(format!(
            "lookup key has {got} values for {} key columns",
            self.key_columns.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_tabular::{AggFunc, Predicate};

    fn train() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b", "c", "a"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m2", "m9", "m2"]))
            .unwrap();
        t.add_column("label", Column::from_f64s(&[1.0, 0.0, 1.0, 0.0]))
            .unwrap();
        t
    }

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b", "a", "c"]))
            .unwrap();
        t.add_column(
            "mid",
            Column::from_strs(&["m1", "m1", "m2", "m2", "m2", "m1"]),
        )
        .unwrap();
        t.add_column(
            "pprice",
            Column::from_f64s(&[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        )
        .unwrap();
        t.add_column(
            "department",
            Column::from_strs(&["E", "H", "E", "E", "H", "E"]),
        )
        .unwrap();
        t
    }

    fn query(agg: AggFunc, predicate: Predicate, keys: &[&str]) -> PredicateQuery {
        PredicateQuery {
            agg,
            agg_column: "pprice".into(),
            predicate,
            group_keys: keys.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn keys() -> Vec<String> {
        vec!["cname".into(), "mid".into()]
    }

    fn pool() -> Vec<PredicateQuery> {
        vec![
            query(AggFunc::Sum, Predicate::True, &["cname"]),
            query(
                AggFunc::Avg,
                Predicate::eq("department", "E"),
                &["cname", "mid"],
            ),
            query(AggFunc::Count, Predicate::True, &["cname", "mid"]),
        ]
    }

    /// Queries here all group by `cname` (two also by `mid`), so the shard
    /// keys collapse to `[cname]`.
    fn shared_key_pool() -> Vec<PredicateQuery> {
        vec![
            query(AggFunc::Sum, Predicate::True, &["cname"]),
            query(AggFunc::Max, Predicate::True, &["cname", "mid"]),
        ]
    }

    #[test]
    fn build_computes_shard_keys_as_ordered_intersection() {
        let router = ShardRouter::build(
            Arc::new(train()),
            &relevant(),
            &keys(),
            &shared_key_pool(),
            3,
        )
        .unwrap();
        assert_eq!(router.shard_keys(), &["cname".to_string()]);
        assert_eq!(router.n_shards(), 3);
        assert_eq!(router.generation(), 0);
        // Partition covers every row exactly once.
        let total: usize = (0..3)
            .map(|s| router.shard(s).core().relevant().num_rows())
            .sum();
        assert_eq!(total, relevant().num_rows());
    }

    #[test]
    fn build_rejects_zero_shards_and_empty_intersection() {
        let err =
            ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &pool(), 0).unwrap_err();
        assert!(err.to_string().contains("at least one shard"), "{err}");
        let disjoint = vec![
            query(AggFunc::Sum, Predicate::True, &["cname"]),
            query(AggFunc::Sum, Predicate::True, &["mid"]),
        ];
        let err =
            ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &disjoint, 2).unwrap_err();
        assert!(err.to_string().contains("straddle"), "{err}");
        // …but a single shard accepts the same pool (nothing to straddle).
        ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &disjoint, 1).unwrap();
    }

    #[test]
    fn build_rejects_categorical_agg_under_predicate_when_sharded() {
        let mut cat = pool();
        cat.push(PredicateQuery {
            agg: AggFunc::Mode,
            agg_column: "department".into(),
            predicate: Predicate::eq("cname", "a"),
            group_keys: vec!["cname".into(), "mid".into()],
        });
        let err = ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &cat, 2).unwrap_err();
        assert!(err.to_string().contains("categorical"), "{err}");
        // A single shard serves it (the global numbering is the shard's), and
        // so does a trivial predicate at any shard count.
        ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &cat, 1).unwrap();
        let mut trivial_cat = pool();
        trivial_cat.push(PredicateQuery {
            agg: AggFunc::Mode,
            agg_column: "department".into(),
            predicate: Predicate::True,
            group_keys: vec!["cname".into(), "mid".into()],
        });
        ShardRouter::build(Arc::new(train()), &relevant(), &keys(), &trivial_cat, 2).unwrap();
    }

    #[test]
    fn sharded_lookup_and_transform_match_unsharded() {
        let (train, relevant) = (train(), relevant());
        let baseline = QueryEngine::new(&train, &relevant);
        for n_shards in [1, 2, 7] {
            let router = ShardRouter::build(
                Arc::new(train.clone()),
                &relevant,
                &keys(),
                &pool(),
                n_shards,
            )
            .unwrap();
            for q in pool() {
                // Every train key, plus an unseen one.
                let seen = [("a", "m1"), ("b", "m2"), ("c", "m9"), ("a", "m2")];
                for (c, m) in seen {
                    let key: Vec<Value> = if q.group_keys.len() == 2 {
                        vec![Value::Str(c.into()), Value::Str(m.into())]
                    } else {
                        vec![Value::Str(c.into())]
                    };
                    let want = baseline.lookup(&q, &key).unwrap();
                    let got = router.lookup(&q, &key).unwrap();
                    assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits));
                }
                let unseen: Vec<Value> = q
                    .group_keys
                    .iter()
                    .map(|_| Value::Str("nope".into()))
                    .collect();
                assert_eq!(router.lookup(&q, &unseen).unwrap(), None);
            }
            let want = baseline.transform(&pool(), &train).unwrap();
            let got = router.transform(&pool(), &train).unwrap();
            assert_eq!(bits(&want), bits(&got), "n_shards={n_shards}");
        }
    }

    #[test]
    fn sharded_append_matches_unsharded_refit() {
        let (train, relevant) = (train(), relevant());
        let mut batch = Table::new("logs");
        batch
            .add_column("cname", Column::from_strs(&["a", "z", "b"]))
            .unwrap();
        batch
            .add_column("mid", Column::from_strs(&["m1", "m3", "m2"]))
            .unwrap();
        batch
            .add_column("pprice", Column::from_f64s(&[5.0, 7.0, 9.0]))
            .unwrap();
        batch
            .add_column("department", Column::from_strs(&["E", "E", "H"]))
            .unwrap();
        let refit_relevant = relevant.concat(&batch).unwrap();
        let refit = QueryEngine::new(&train, &refit_relevant);
        for n_shards in [1, 2, 7] {
            let router = ShardRouter::build(
                Arc::new(train.clone()),
                &relevant,
                &keys(),
                &pool(),
                n_shards,
            )
            .unwrap();
            let epoch = router.append_relevant(&batch).unwrap();
            assert_eq!(epoch.generation, 1);
            assert_eq!(epoch.appended_rows, 3);
            assert_eq!(router.generation(), 1);
            let want = refit.transform(&pool(), &train).unwrap();
            let got = router.transform(&pool(), &train).unwrap();
            assert_eq!(bits(&want), bits(&got), "n_shards={n_shards}");
        }
    }

    #[test]
    fn prepared_handle_matches_unsharded_handle() {
        let (train, relevant) = (train(), relevant());
        let plan = crate::query::AugPlan::new(
            "logs",
            keys(),
            pool()
                .into_iter()
                .map(|query| crate::query::PlannedQuery { query, loss: 0.0 })
                .collect(),
        );
        let baseline_engine = QueryEngine::new(&train, &relevant);
        let baseline = ServingHandle::prepare(&baseline_engine, &plan).unwrap();
        for n_shards in [1, 2, 7] {
            let router =
                ShardRouter::build_for_plan(Arc::new(train.clone()), &relevant, &plan, n_shards)
                    .unwrap();
            let handle = ShardedServingHandle::prepare(&router, &plan).unwrap();
            assert_eq!(handle.n_shards(), n_shards);
            assert_eq!(handle.num_features(), plan.queries.len());
            assert_eq!(handle.feature_names(), baseline.feature_names());
            assert_eq!(handle.key_columns(), baseline.key_columns());
            let (mut want, mut got) = (Vec::new(), Vec::new());
            for (c, m) in [
                ("a", "m1"),
                ("b", "m2"),
                ("c", "m9"),
                ("a", "m2"),
                ("z", "zz"),
            ] {
                let key = [Value::Str(c.into()), Value::Str(m.into())];
                baseline.lookup(&key, &mut want).unwrap();
                handle.lookup(&key, &mut got).unwrap();
                let as_bits = |v: &Vec<Option<f64>>| -> Vec<Option<u64>> {
                    v.iter().map(|x| x.map(f64::to_bits)).collect()
                };
                assert_eq!(as_bits(&want), as_bits(&got), "{c}/{m} n={n_shards}");
            }
            // Arity errors come from the router facade, not a shard probe.
            let err = handle
                .lookup(&[Value::Str("a".into())], &mut got)
                .unwrap_err();
            assert!(err.to_string().contains("1 values for 2"), "{err}");
        }
    }

    fn bits(features: &[Vec<Option<f64>>]) -> Vec<Vec<Option<u64>>> {
        features
            .iter()
            .map(|f| f.iter().map(|v| v.map(f64::to_bits)).collect())
            .collect()
    }
}
