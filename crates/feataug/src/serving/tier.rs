//! The admission-controlled serving tier: bounded queueing, per-request
//! deadlines, load shedding, graceful degradation, and atomic model hot-swap
//! over a [`ServingModel`] — one prepared [`ServingHandle`] or a key-sharded
//! [`ShardedServingHandle`] (see [`crate::serving::shard`]); both plug in
//! unchanged.
//!
//! A [`ServingHandle`] answers one lookup fast, but a production front door
//! needs more than speed: under overload it must refuse work it cannot finish
//! in time ([`TierError::Shed`]), under a missed deadline it must answer
//! *something* (the documented unseen-key semantics — every feature NULL —
//! when [`TierConfig::degrade_on_deadline`] is on), and a worker panicking on
//! one poisoned request must fail that request alone. [`ServingTier`] wraps
//! all three around a small pool of dedicated worker threads draining a
//! bounded queue.
//!
//! Deadlines preempt, not just observe: a request submitted with a deadline
//! runs its engine work under a [`CancelToken`] built from that instant, and
//! the kernels, gathers and probe loops poll the token at fixed strides — a
//! deadline that fires mid-kernel abandons the work right there (surfacing
//! through the same degradation policy) instead of waiting for the batch
//! boundary. [`TierStats::cancelled`] counts how often preemption fired.
//!
//! ## Hot-swap
//!
//! The tier serves from an [`EpochCell`] — an `ArcSwap`-style cell hand-rolled
//! from `Mutex<Arc<_>>` plus a generation counter, so the build stays
//! dependency-free (the same cell the engine core's copy-on-write epochs
//! publish through). A background refit (`FeatAug::fit` → `AugModel::prepare`)
//! publishes its new handle with [`ServingTier::install`]; lookups in flight
//! finish against the model their batch pinned, the next batch sees the new
//! one, and no reader ever blocks longer than another reader's pointer clone.
//! Note that live `append_relevant` ingestion needs **no** swap at all: each
//! installed handle follows its engine's epochs by itself.
//!
//! ```no_run
//! use std::sync::Arc;
//! use feataug::serving::tier::{ServingTier, TierConfig};
//! # fn prepare_handle() -> feataug::ServingHandle<'static> { unimplemented!() }
//! let tier = ServingTier::new(Arc::new(prepare_handle()), TierConfig::default());
//! let features = tier.lookup(&[feataug_tabular::Value::Int(7)]);
//! let generation = tier.install(Arc::new(prepare_handle())); // hot-swap
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use feataug_tabular::{CancelToken, Value};

use crate::exec::{lock_recover, panic_message, EngineError, EngineResult};
use crate::serving::shard::ShardedServingHandle;
use crate::serving::ServingHandle;

/// Sizing and policy of a [`ServingTier`].
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Dedicated worker threads draining the queue (min 1).
    pub workers: usize,
    /// Hard bound on queued requests; admission past it always sheds.
    pub queue_capacity: usize,
    /// Queue depth at which admission starts shedding — the early-warning
    /// line below `queue_capacity` that keeps latency bounded under
    /// overload.
    pub shed_watermark: usize,
    /// Most requests one worker drains per queue acquisition (batch size).
    pub max_batch: usize,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// When a deadline fires before or during the gather: `true` answers the
    /// documented unseen-key semantics (every feature NULL), `false` returns
    /// [`TierError::DeadlineExceeded`].
    pub degrade_on_deadline: bool,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            workers: 2,
            queue_capacity: 1024,
            shed_watermark: 768,
            max_batch: 32,
            default_deadline: None,
            degrade_on_deadline: true,
        }
    }
}

/// Why a tier request did not come back with features.
#[derive(Debug)]
pub enum TierError {
    /// Admission control refused the request: the queue was already `depth`
    /// deep, past the shed watermark (or the hard capacity).
    Shed {
        /// Queue depth observed at admission time.
        depth: usize,
    },
    /// The request's deadline expired before its gather finished, and
    /// degradation is off.
    DeadlineExceeded,
    /// The tier is shutting down; no new requests are admitted.
    Closed,
    /// The worker disappeared mid-request without answering (its reply
    /// channel dropped) — the request's fate is unknown.
    WorkerLost,
    /// The underlying engine failed the request (including a contained
    /// worker panic, surfaced as [`EngineError::WorkerPanic`]).
    Engine(EngineError),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Shed { depth } => {
                write!(f, "request shed: queue depth {depth} past the watermark")
            }
            TierError::DeadlineExceeded => write!(f, "deadline expired before the gather finished"),
            TierError::Closed => write!(f, "serving tier is shut down"),
            TierError::WorkerLost => write!(f, "serving worker lost before answering"),
            TierError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TierError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

// The tier's hot-swap cell is the same `EpochCell` the engine core's
// copy-on-write epochs publish through; re-exported here so existing
// `serving::tier::EpochCell` users keep compiling.
pub use crate::exec::EpochCell;

/// What a tier serves: one prepared [`ServingHandle`], or a
/// [`ShardedServingHandle`] routing each key to its owning shard. Both plug
/// into the tier unchanged — [`ServingTier::new`] and
/// [`ServingTier::install`] accept either via `Into<ServingModel>`, and the
/// worker loop only needs the common lookup surface below.
#[derive(Debug)]
pub enum ServingModel {
    /// A single prepared handle over one engine.
    Single(Arc<ServingHandle<'static>>),
    /// Hash-routed per-shard handles (see [`crate::serving::shard`]).
    Sharded(Arc<ShardedServingHandle>),
}

impl From<Arc<ServingHandle<'static>>> for ServingModel {
    fn from(handle: Arc<ServingHandle<'static>>) -> ServingModel {
        ServingModel::Single(handle)
    }
}

impl From<ServingHandle<'static>> for ServingModel {
    fn from(handle: ServingHandle<'static>) -> ServingModel {
        ServingModel::Single(Arc::new(handle))
    }
}

impl From<Arc<ShardedServingHandle>> for ServingModel {
    fn from(handle: Arc<ShardedServingHandle>) -> ServingModel {
        ServingModel::Sharded(handle)
    }
}

impl From<ShardedServingHandle> for ServingModel {
    fn from(handle: ShardedServingHandle) -> ServingModel {
        ServingModel::Sharded(Arc::new(handle))
    }
}

impl ServingModel {
    /// Number of features a lookup produces.
    pub fn num_features(&self) -> usize {
        match self {
            ServingModel::Single(h) => h.num_features(),
            ServingModel::Sharded(h) => h.num_features(),
        }
    }

    /// Feature column names, in output order.
    pub fn feature_names(&self) -> &[String] {
        match self {
            ServingModel::Single(h) => h.feature_names(),
            ServingModel::Sharded(h) => h.feature_names(),
        }
    }

    /// The key columns a request key aligns with.
    pub fn key_columns(&self) -> &[String] {
        match self {
            ServingModel::Single(h) => h.key_columns(),
            ServingModel::Sharded(h) => h.key_columns(),
        }
    }

    /// Answer one request (`out` cleared and refilled in plan order).
    pub fn lookup(&self, key: &[Value], out: &mut Vec<Option<f64>>) -> EngineResult<()> {
        match self {
            ServingModel::Single(h) => h.lookup(key, out),
            ServingModel::Sharded(h) => h.lookup(key, out),
        }
    }

    /// [`ServingModel::lookup`] under a [`CancelToken`]: cold aggregations
    /// poll the token at the kernel checkpoints and warm probe loops poll it
    /// per probe, so a fired deadline preempts the request mid-work with
    /// [`EngineError::Cancelled`].
    pub fn lookup_cancel(
        &self,
        key: &[Value],
        out: &mut Vec<Option<f64>>,
        cancel: &CancelToken,
    ) -> EngineResult<()> {
        match self {
            ServingModel::Single(h) => h.lookup_cancel(key, out, cancel),
            ServingModel::Sharded(h) => h.lookup_cancel(key, out, cancel),
        }
    }
}

/// One queued lookup: the key, the admission-stamped deadline, and the reply
/// channel.
struct Request {
    key: Vec<Value>,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Vec<Option<f64>>, TierError>>,
}

/// State shared between the tier handle and its worker threads.
struct TierShared {
    config: TierConfig,
    queue: Mutex<VecDeque<Request>>,
    available: Condvar,
    model: EpochCell<ServingModel>,
    shutdown: AtomicBool,
    submitted: AtomicUsize,
    answered: AtomicUsize,
    shed: AtomicUsize,
    degraded: AtomicUsize,
    cancelled: AtomicUsize,
    worker_panics: AtomicUsize,
}

/// Counters of a [`ServingTier`] (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Requests offered to admission control (shed ones included).
    pub submitted: usize,
    /// Requests answered by a worker (degraded ones included).
    pub answered: usize,
    /// Requests refused at admission.
    pub shed: usize,
    /// Requests answered with the all-NULL degraded row (or
    /// [`TierError::DeadlineExceeded`]) because their deadline fired.
    pub degraded: usize,
    /// Requests whose deadline preempted in-flight engine work mid-kernel
    /// or mid-probe ([`EngineError::Cancelled`]) — a subset of `degraded`
    /// that measures how often preemption beat the batch boundary.
    pub cancelled: usize,
    /// Worker panics contained into [`EngineError::WorkerPanic`] answers.
    pub worker_panics: usize,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// The model generation currently served (number of hot-swaps).
    pub generation: u64,
}

/// A ticket for one admitted request; redeem it with [`PendingLookup::wait`].
pub struct PendingLookup {
    rx: mpsc::Receiver<Result<Vec<Option<f64>>, TierError>>,
}

impl PendingLookup {
    /// Block until the tier answers.
    pub fn wait(self) -> Result<Vec<Option<f64>>, TierError> {
        self.rx.recv().unwrap_or(Err(TierError::WorkerLost))
    }
}

/// The admission-controlled, hot-swappable serving front door. See the
/// [module docs](self).
///
/// Dropping the tier shuts it down: queued requests are drained first, then
/// the workers exit and are joined.
pub struct ServingTier {
    shared: Arc<TierShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServingTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingTier")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ServingTier {
    /// Spawn the worker pool and start serving `model` — a single prepared
    /// handle or a sharded one, via `Into<ServingModel>`.
    pub fn new(model: impl Into<ServingModel>, config: TierConfig) -> ServingTier {
        let workers = config.workers.max(1);
        let shared = Arc::new(TierShared {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            model: EpochCell::new(Arc::new(model.into())),
            shutdown: AtomicBool::new(false),
            submitted: AtomicUsize::new(0),
            answered: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            worker_panics: AtomicUsize::new(0),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("feataug-tier-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(panic): tier construction (startup), never reached from the serving path
                    .expect("spawn serving-tier worker thread")
            })
            .collect();
        ServingTier { shared, workers }
    }

    /// Submit one lookup under the config's default deadline. Admission
    /// control runs here: past the shed watermark (or hard capacity) the
    /// request is refused immediately with [`TierError::Shed`] — refusing
    /// fast is the mechanism that keeps admitted requests' latency bounded.
    pub fn submit(&self, key: Vec<Value>) -> Result<PendingLookup, TierError> {
        self.submit_deadline(key, self.shared.config.default_deadline)
    }

    /// [`ServingTier::submit`] with an explicit per-request deadline
    /// (`None`: no deadline). The clock starts at admission, so time spent
    /// queued counts against it.
    pub fn submit_deadline(
        &self,
        key: Vec<Value>,
        deadline: Option<Duration>,
    ) -> Result<PendingLookup, TierError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(TierError::Closed);
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = lock_recover(&self.shared.queue);
            let depth = queue.len();
            if depth >= self.shared.config.shed_watermark
                || depth >= self.shared.config.queue_capacity
            {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(TierError::Shed { depth });
            }
            queue.push_back(Request {
                key,
                deadline: deadline.map(|d| Instant::now() + d),
                reply: tx,
            });
        }
        self.shared.available.notify_one();
        Ok(PendingLookup { rx })
    }

    /// Submit and wait: one blocking lookup through admission control.
    pub fn lookup(&self, key: &[Value]) -> Result<Vec<Option<f64>>, TierError> {
        self.submit(key.to_vec())?.wait()
    }

    /// [`ServingTier::lookup`] with an explicit deadline.
    pub fn lookup_deadline(
        &self,
        key: &[Value],
        deadline: Duration,
    ) -> Result<Vec<Option<f64>>, TierError> {
        self.submit_deadline(key.to_vec(), Some(deadline))?.wait()
    }

    /// Atomically publish a new model (the hot-swap): batches already pinned
    /// to the old model finish against it, every later batch serves the new
    /// one, and no warm lookup blocks on the swap. Returns the new
    /// generation.
    pub fn install(&self, model: impl Into<ServingModel>) -> u64 {
        self.shared.model.swap(Arc::new(model.into()))
    }

    /// Pin the currently-served model.
    pub fn model(&self) -> Arc<ServingModel> {
        self.shared.model.load()
    }

    /// The served model's generation (number of [`ServingTier::install`]s).
    pub fn generation(&self) -> u64 {
        self.shared.model.generation()
    }

    /// A snapshot of the tier's counters.
    pub fn stats(&self) -> TierStats {
        TierStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            answered: self.shared.answered.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            queue_depth: lock_recover(&self.shared.queue).len(),
            generation: self.shared.model.generation(),
        }
    }
}

impl Drop for ServingTier {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that somehow died early must not abort the drop.
            let _ = worker.join();
        }
    }
}

/// One worker: drain up to `max_batch` requests per queue acquisition, pin
/// the current model once per batch (a hot-swap lands between batches, never
/// inside one), answer each request with panic containment, exit when the
/// tier shuts down and the queue is empty.
fn worker_loop(shared: &TierShared) {
    loop {
        let batch: Vec<Request> = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = queue.len().min(shared.config.max_batch.max(1));
            queue.drain(..take).collect()
        };
        crate::fail_point!("tier.batch");
        let model = shared.model.load();
        for request in batch {
            answer(shared, &model, request);
        }
    }
}

/// Answer one request against the pinned model: skip the gather if the
/// deadline already fired, contain any panic into a typed error, degrade (or
/// error) if the deadline fired mid-gather.
///
/// A request carrying a deadline runs its lookup under a [`CancelToken`]
/// built from that instant: the engine polls the token at the kernel and
/// probe-loop checkpoints, so a deadline that fires *during* the work
/// preempts it mid-kernel — surfacing as [`EngineError::Cancelled`], which
/// degrades exactly like a deadline observed at a batch boundary (and is
/// additionally counted in [`TierStats::cancelled`]).
fn answer(shared: &TierShared, model: &ServingModel, request: Request) {
    let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() > d);
    let result = if expired(request.deadline) {
        past_deadline(shared, model)
    } else {
        let cancel = request.deadline.map(CancelToken::with_deadline);
        let mut out = Vec::with_capacity(model.num_features());
        let lookup = catch_unwind(AssertUnwindSafe(|| {
            match &cancel {
                Some(token) => model.lookup_cancel(&request.key, &mut out, token),
                None => model.lookup(&request.key, &mut out),
            }
            .map(|()| out)
        }));
        match lookup {
            Ok(Ok(_)) if expired(request.deadline) => past_deadline(shared, model),
            Ok(Ok(row)) => Ok(row),
            Ok(Err(EngineError::Cancelled)) => {
                shared.cancelled.fetch_add(1, Ordering::Relaxed);
                past_deadline(shared, model)
            }
            Ok(Err(e)) => Err(TierError::Engine(e)),
            Err(payload) => {
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                Err(TierError::Engine(EngineError::WorkerPanic {
                    context: "serving tier lookup",
                    message: panic_message(payload),
                }))
            }
        }
    };
    shared.answered.fetch_add(1, Ordering::Relaxed);
    // A caller that gave up (dropped its receiver) is not an error.
    let _ = request.reply.send(result);
}

/// The deadline-fired outcome: the documented unseen-key row (every feature
/// NULL) under graceful degradation, a typed error otherwise.
fn past_deadline(shared: &TierShared, model: &ServingModel) -> Result<Vec<Option<f64>>, TierError> {
    shared.degraded.fetch_add(1, Ordering::Relaxed);
    if shared.config.degrade_on_deadline {
        Ok(vec![None; model.num_features()])
    } else {
        Err(TierError::DeadlineExceeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AugPlan, PlannedQuery, PredicateQuery};
    use feataug_tabular::{AggFunc, Column, Predicate, Table};

    fn handle(scale: f64) -> Arc<ServingHandle<'static>> {
        let mut train = Table::new("users");
        train
            .add_column("uid", Column::from_i64s(&[1, 2, 3]))
            .unwrap();
        let mut relevant = Table::new("logs");
        relevant
            .add_column("uid", Column::from_i64s(&[1, 1, 2, 2]))
            .unwrap();
        relevant
            .add_column(
                "pprice",
                Column::from_f64s(&[10.0 * scale, 20.0 * scale, 30.0 * scale, 40.0 * scale]),
            )
            .unwrap();
        let plan = AugPlan::new(
            "logs",
            vec!["uid".into()],
            vec![
                PlannedQuery {
                    query: PredicateQuery {
                        agg: AggFunc::Sum,
                        agg_column: "pprice".into(),
                        predicate: Predicate::True,
                        group_keys: vec!["uid".into()],
                    },
                    loss: 0.0,
                },
                PlannedQuery {
                    query: PredicateQuery {
                        agg: AggFunc::Max,
                        agg_column: "pprice".into(),
                        predicate: Predicate::True,
                        group_keys: vec!["uid".into()],
                    },
                    loss: 0.0,
                },
            ],
        );
        let model =
            crate::pipeline::AugModel::compile_shared(plan, Arc::new(train), Arc::new(relevant))
                .expect("plan compiles");
        Arc::new(model.prepare().unwrap())
    }

    #[test]
    fn tier_answers_like_the_handle() {
        let handle = handle(1.0);
        let tier = ServingTier::new(Arc::clone(&handle), TierConfig::default());
        let got = tier.lookup(&[Value::Int(1)]).unwrap();
        let mut want = Vec::new();
        handle.lookup(&[Value::Int(1)], &mut want).unwrap();
        assert_eq!(got, want);
        assert_eq!(got, vec![Some(30.0), Some(20.0)]);
        // Unseen key: the documented all-NULL row, not an error.
        assert_eq!(tier.lookup(&[Value::Int(99)]).unwrap(), vec![None, None]);
        // Malformed key: a typed engine error for this request only.
        let err = tier.lookup(&[]).unwrap_err();
        assert!(matches!(err, TierError::Engine(_)), "got {err:?}");
        assert_eq!(tier.lookup(&[Value::Int(2)]).unwrap()[0], Some(70.0));
        let stats = tier.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.answered, 4);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn sharded_model_serves_through_the_tier_unchanged() {
        use crate::serving::shard::{ShardRouter, ShardedServingHandle};
        let mut train = Table::new("users");
        train
            .add_column("uid", Column::from_i64s(&[1, 2, 3]))
            .unwrap();
        let mut relevant = Table::new("logs");
        relevant
            .add_column("uid", Column::from_i64s(&[1, 1, 2, 2]))
            .unwrap();
        relevant
            .add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        let plan = AugPlan::new(
            "logs",
            vec!["uid".into()],
            vec![PlannedQuery {
                query: PredicateQuery {
                    agg: AggFunc::Sum,
                    agg_column: "pprice".into(),
                    predicate: Predicate::True,
                    group_keys: vec!["uid".into()],
                },
                loss: 0.0,
            }],
        );
        let router = ShardRouter::build_for_plan(Arc::new(train), &relevant, &plan, 3).unwrap();
        let sharded = ShardedServingHandle::prepare(&router, &plan).unwrap();
        let tier = ServingTier::new(sharded, TierConfig::default());
        assert_eq!(tier.lookup(&[Value::Int(1)]).unwrap(), vec![Some(30.0)]);
        assert_eq!(tier.lookup(&[Value::Int(2)]).unwrap(), vec![Some(70.0)]);
        // Unseen key: the documented all-NULL row, regardless of which shard
        // the hash probes.
        assert_eq!(tier.lookup(&[Value::Int(99)]).unwrap(), vec![None]);
        assert_eq!(tier.model().num_features(), 1);
        assert_eq!(tier.model().key_columns(), ["uid".to_string()]);
        // Live ingestion needs no tier swap: each shard handle follows its
        // shard's epochs by itself.
        let mut batch = Table::new("logs");
        batch.add_column("uid", Column::from_i64s(&[1, 9])).unwrap();
        batch
            .add_column("pprice", Column::from_f64s(&[5.0, 8.0]))
            .unwrap();
        router.append_relevant(&batch).unwrap();
        assert_eq!(tier.lookup(&[Value::Int(1)]).unwrap(), vec![Some(35.0)]);
        assert_eq!(tier.lookup(&[Value::Int(9)]).unwrap(), vec![Some(8.0)]);
        assert_eq!(tier.stats().cancelled, 0);
    }

    #[test]
    fn hot_swap_changes_answers_without_stopping_service() {
        let tier = ServingTier::new(handle(1.0), TierConfig::default());
        assert_eq!(tier.generation(), 0);
        assert_eq!(tier.lookup(&[Value::Int(1)]).unwrap()[0], Some(30.0));
        // A "background refit" doubles every price; publish it.
        assert_eq!(tier.install(handle(2.0)), 1);
        assert_eq!(tier.generation(), 1);
        assert_eq!(tier.lookup(&[Value::Int(1)]).unwrap()[0], Some(60.0));
        assert_eq!(tier.stats().generation, 1);
    }

    #[test]
    fn epoch_cell_swaps_do_not_invalidate_pinned_readers() {
        let cell = EpochCell::new(Arc::new(1_u64));
        let pinned = cell.load();
        assert_eq!(cell.swap(Arc::new(2)), 1);
        assert_eq!(*pinned, 1, "pinned readers keep the old epoch");
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn expired_deadline_degrades_to_all_null_or_errors() {
        let degrading = ServingTier::new(handle(1.0), TierConfig::default());
        // An already-expired deadline: the worker skips the gather and
        // answers the unseen-key row.
        let got = degrading.lookup_deadline(&[Value::Int(1)], Duration::ZERO);
        assert_eq!(got.unwrap(), vec![None, None]);
        assert_eq!(degrading.stats().degraded, 1);

        let strict = ServingTier::new(
            handle(1.0),
            TierConfig {
                degrade_on_deadline: false,
                ..TierConfig::default()
            },
        );
        let err = strict
            .lookup_deadline(&[Value::Int(1)], Duration::ZERO)
            .unwrap_err();
        assert!(matches!(err, TierError::DeadlineExceeded), "got {err:?}");
        // A generous deadline answers normally.
        let ok = strict.lookup_deadline(&[Value::Int(1)], Duration::from_secs(60));
        assert_eq!(ok.unwrap()[0], Some(30.0));
    }

    #[test]
    fn admission_sheds_past_the_watermark() {
        // No workers can drain while we hold no submissions... instead, make
        // the queue tiny and the single worker slow by flooding it: with a
        // watermark of 1 and many in-flight submissions, some must shed.
        let tier = ServingTier::new(
            handle(1.0),
            TierConfig {
                workers: 1,
                queue_capacity: 2,
                shed_watermark: 1,
                max_batch: 1,
                ..TierConfig::default()
            },
        );
        let mut pending = Vec::new();
        let mut shed = 0;
        for _ in 0..64 {
            match tier.submit(vec![Value::Int(1)]) {
                Ok(p) => pending.push(p),
                Err(TierError::Shed { .. }) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
        // Every admitted request still answers correctly.
        for p in pending {
            assert_eq!(p.wait().unwrap()[0], Some(30.0));
        }
        assert_eq!(tier.stats().shed, shed);
        assert_eq!(tier.stats().submitted, 64);
        assert_eq!(tier.stats().answered + shed, 64);
    }

    #[test]
    fn drop_drains_queued_requests_then_shuts_down() {
        let tier = ServingTier::new(
            handle(1.0),
            TierConfig {
                workers: 1,
                ..TierConfig::default()
            },
        );
        let pending: Vec<PendingLookup> = (0..16)
            .map(|_| tier.submit(vec![Value::Int(2)]).unwrap())
            .collect();
        drop(tier);
        for p in pending {
            assert_eq!(p.wait().unwrap()[0], Some(70.0));
        }
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let tier = ServingTier::new(handle(1.0), TierConfig::default());
        tier.shared.shutdown.store(true, Ordering::Release);
        assert!(matches!(
            tier.submit(vec![Value::Int(1)]),
            Err(TierError::Closed)
        ));
    }
}
