//! The comparison methods of the paper's evaluation (Section VII-A3).
//!
//! * [`featuretools_augment`] — Featuretools (DFS) alone, or combined with one of the seven
//!   feature selectors ("FT", "FT+LR", "FT+GBDT", "FT+MI", "FT+Chi2", "FT+Gini", "FT+Forward",
//!   "FT+Backward").
//! * [`random_augment`] — the "Random" baseline: random templates, random queries, no search.
//! * [`arda_augment`] — an ARDA-style random-injection feature selection for one-to-one
//!   relationship tables.
//! * [`autofeature_augment`] — an AutoFeature-style reinforcement-learning feature picker
//!   (multi-armed-bandit and ε-greedy Q-learning variants).
//!
//! Every function returns an augmented training table; the experiment harness evaluates all of
//! them with the same protocol ([`crate::evaluation::evaluate_table`]).
//!
//! The query-evaluating baselines (DFS candidates, Random) materialise their candidate pools
//! through [`QueryEngine::evaluate_batch`], and each has a `*_with_engine` variant accepting a
//! shared engine handle so harnesses running several baselines against one task compile the
//! `(train, relevant)` pair once.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use feataug_featuretools::{enumerate_features, DfsConfig};
use feataug_fsel::FeatureSelector;
use feataug_ml::{Dataset, Matrix, ModelKind};
use feataug_tabular::join::{is_unique_key, left_join};
use feataug_tabular::{AggFunc, Column, Predicate, Table};

use crate::encoding::feature_vector;
use crate::evaluation::FeatureEvaluator;
use crate::exec::QueryEngine;
use crate::problem::AugTask;
use crate::query::{PredicateQuery, QueryCodec};
use crate::template::QueryTemplate;

/// Build the candidate feature pool for selector-style baselines: every DFS feature, evaluated
/// through the given [`QueryEngine`] (one shared group index, no join, the whole pool fanned
/// across the engine's worker threads) and attached to the training table. Returns
/// (augmented table, feature names).
fn dfs_candidates(
    task: &AugTask,
    cfg: &DfsConfig,
    engine: &QueryEngine<'_>,
) -> (Table, Vec<String>) {
    let keys = task.keys();
    let agg_cols = task.resolved_agg_columns();
    let agg_refs: Vec<&str> = agg_cols.iter().map(|s| s.as_str()).collect();
    let features = enumerate_features(&task.relevant, &agg_refs, cfg);
    if features.is_empty() {
        return ((*task.train).clone(), Vec::new());
    }
    let queries: Vec<PredicateQuery> = features
        .iter()
        .map(|feature| PredicateQuery {
            agg: feature.agg,
            agg_column: feature.column.clone(),
            predicate: Predicate::True,
            group_keys: keys.iter().map(|k| k.to_string()).collect(),
        })
        .collect();
    let mut augmented = (*task.train).clone();
    let mut names = Vec::with_capacity(features.len());
    for (feature, values) in features
        .into_iter()
        .zip(engine.evaluate_batch_shared(&queries))
    {
        let values = values.expect("materialising DFS features");
        let column = Column::from_opt_f64s(&values);
        if augmented.add_column(feature.name.clone(), column).is_ok() {
            names.push(feature.name);
        }
    }
    (augmented, names)
}

/// Dataset view over a set of candidate feature columns of an augmented table (used to run the
/// feature selectors).
fn candidate_dataset(task: &AugTask, augmented: &Table, names: &[String]) -> Dataset {
    // The baseline entry points don't run `AugTask::validate`, so a missing
    // label must still fail loudly here — scoring selectors against a
    // fabricated label vector would silently return garbage selections.
    let labels = task
        .labels()
        .unwrap_or_else(|e| panic!("baseline on an invalid task: {e}"));
    let rows: Vec<Vec<f64>> = (0..augmented.num_rows())
        .map(|i| {
            names
                .iter()
                .map(|n| match augmented.value(i, n) {
                    Ok(v) => v.as_f64().unwrap_or(f64::NAN),
                    Err(_) => f64::NAN,
                })
                .collect()
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(&rows),
        labels
            .iter()
            .map(|v| if v.is_finite() { *v } else { 0.0 })
            .collect(),
        names.to_vec(),
        task.task,
    )
}

/// Keep only the base training columns plus the named feature columns.
fn project_features(task: &AugTask, augmented: &Table, keep: &[String]) -> Table {
    let mut out = (*task.train).clone();
    for name in keep {
        if let Ok(col) = augmented.column(name) {
            let _ = out.add_column(name.clone(), col.clone());
        }
    }
    out
}

/// Featuretools baseline: materialise DFS features and keep `n_features` of them — the first
/// `n_features` in enumeration order when `selector` is `None` (plain "FT"), or the ones chosen
/// by the given selector ("FT+X").
pub fn featuretools_augment(
    task: &AugTask,
    n_features: usize,
    selector: Option<&dyn FeatureSelector>,
    dfs: &DfsConfig,
) -> Table {
    let engine = QueryEngine::new(&task.train, &task.relevant);
    featuretools_augment_with_engine(task, n_features, selector, dfs, &engine)
}

/// [`featuretools_augment`] evaluating through a shared [`QueryEngine`] compiled over the same
/// `(train, relevant)` pair as `task` — harnesses that run several baselines against one task
/// pass one engine so the DFS group index and column views are compiled once.
pub fn featuretools_augment_with_engine(
    task: &AugTask,
    n_features: usize,
    selector: Option<&dyn FeatureSelector>,
    dfs: &DfsConfig,
    engine: &QueryEngine<'_>,
) -> Table {
    let (augmented, names) = dfs_candidates(task, dfs, engine);
    if names.is_empty() {
        return augmented;
    }
    let keep: Vec<String> = match selector {
        None => names.iter().take(n_features).cloned().collect(),
        Some(sel) => {
            let data = candidate_dataset(task, &augmented, &names);
            sel.select(&data, n_features)
                .into_iter()
                .map(|i| names[i].clone())
                .collect()
        }
    };
    project_features(task, &augmented, &keep)
}

/// The "Random" baseline: choose `n_templates` random attribute combinations, sample
/// `queries_per_template` random queries from each pool, and attach whatever features they
/// produce — no model in the loop.
pub fn random_augment(
    task: &AugTask,
    agg_funcs: &[AggFunc],
    n_templates: usize,
    queries_per_template: usize,
    seed: u64,
) -> Table {
    let engine = QueryEngine::new(&task.train, &task.relevant);
    random_augment_with_engine(
        task,
        agg_funcs,
        n_templates,
        queries_per_template,
        seed,
        &engine,
    )
}

/// [`random_augment`] evaluating through a shared [`QueryEngine`] compiled over the same
/// `(train, relevant)` pair as `task`. Each template's random queries are sampled first (so the
/// RNG stream matches the serial formulation) and materialised in one batch fan-out.
pub fn random_augment_with_engine(
    task: &AugTask,
    agg_funcs: &[AggFunc],
    n_templates: usize,
    queries_per_template: usize,
    seed: u64,
    engine: &QueryEngine<'_>,
) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs = task.resolved_predicate_attrs();
    let mut augmented = (*task.train).clone();

    for _ in 0..n_templates {
        // Random non-empty subset of the candidate attributes (at most 4 to keep pools sane).
        let mut shuffled = attrs.clone();
        shuffled.shuffle(&mut rng);
        let size = rng.gen_range(1..=shuffled.len().min(4));
        let combo: Vec<String> = shuffled.into_iter().take(size).collect();
        let template = QueryTemplate::new(
            agg_funcs.to_vec(),
            task.resolved_agg_columns(),
            combo,
            task.key_columns.clone(),
        );
        let Ok(codec) = QueryCodec::build(&template, &task.relevant) else {
            continue;
        };
        let queries: Vec<PredicateQuery> = (0..queries_per_template)
            .map(|_| codec.decode(&codec.space().sample(&mut rng)))
            .collect();
        for (query, values) in queries.iter().zip(engine.evaluate_batch_shared(&queries)) {
            if let Ok(values) = values {
                // Non-finite aggregates count as missing, like the NULLs.
                let values: Vec<Option<f64>> =
                    values.iter().map(|v| v.filter(|x| x.is_finite())).collect();
                let _ = augmented.add_column(query.feature_name(), Column::from_opt_f64s(&values));
            }
        }
    }
    augmented
}

/// Candidate features for the one-to-one baselines: the relevant table's non-key columns joined
/// directly onto the training table (ARDA / AutoFeature assume direct joinability). When the
/// relationship is one-to-many the DFS aggregates are used as candidates instead.
fn direct_candidates(task: &AugTask) -> (Table, Vec<String>) {
    let keys = task.keys();
    if is_unique_key(&task.relevant, &keys).unwrap_or(false) {
        let augmented =
            left_join(&task.train, &task.relevant, &keys, &keys).expect("one-to-one join");
        let names: Vec<String> = augmented
            .column_names()
            .into_iter()
            .filter(|c| task.train.schema().index_of(c).is_none())
            .map(|s| s.to_string())
            .collect();
        (augmented, names)
    } else {
        let dfs = DfsConfig {
            agg_funcs: vec![
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Count,
                AggFunc::Max,
                AggFunc::Min,
            ],
            ..DfsConfig::default()
        };
        let engine = QueryEngine::new(&task.train, &task.relevant);
        dfs_candidates(task, &dfs, &engine)
    }
}

/// ARDA-style baseline: rank candidate features by a model-importance score estimated against
/// injected random-noise probes, and keep the features that beat the strongest probe (up to
/// `n_features`).
pub fn arda_augment(task: &AugTask, n_features: usize, model: ModelKind, seed: u64) -> Table {
    let (augmented, names) = direct_candidates(task);
    if names.is_empty() {
        return augmented;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let data = candidate_dataset(task, &augmented, &names);

    // Inject random-noise probe features.
    let n_probes = 3.min(names.len().max(1));
    let mut with_probes = data.clone();
    for p in 0..n_probes {
        let noise: Vec<f64> = (0..data.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        with_probes = with_probes.with_feature(format!("__probe_{p}"), &noise);
    }

    // Importance via the model family's native scores (forest importances cover tree models,
    // absolute weights cover linear models).
    let scores = match model {
        ModelKind::Linear | ModelKind::DeepFm => {
            feataug_fsel::ScoreSelector::new(feataug_fsel::ScoringMethod::LinearImportance)
                .scores(&with_probes)
        }
        _ => feataug_fsel::ScoreSelector::new(feataug_fsel::ScoringMethod::ForestImportance)
            .scores(&with_probes),
    };
    let probe_max = scores[names.len()..].iter().copied().fold(0.0f64, f64::max);
    let mut ranked: Vec<(usize, f64)> = scores[..names.len()]
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, s)| *s > probe_max)
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let keep: Vec<String> = ranked
        .into_iter()
        .take(n_features)
        .map(|(i, _)| names[i].clone())
        .collect();
    // ARDA keeps at least something: fall back to the top-scoring features if the probe
    // threshold filtered everything out.
    let keep = if keep.is_empty() {
        let mut order: Vec<usize> = (0..names.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        order
            .into_iter()
            .take(n_features)
            .map(|i| names[i].clone())
            .collect()
    } else {
        keep
    };
    project_features(task, &augmented, &keep)
}

/// The exploration strategy of the AutoFeature-style baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoFeatureStrategy {
    /// Upper-confidence-bound multi-armed bandit over candidate features ("AutoFeat-MAB").
    Mab,
    /// ε-greedy value learning over candidate features ("AutoFeat-DQN").
    Dqn,
}

/// AutoFeature-style baseline: iteratively add the candidate feature chosen by a bandit / value
/// learner whose reward is the improvement in validation performance, until `n_features` are
/// selected.
pub fn autofeature_augment(
    task: &AugTask,
    n_features: usize,
    model: ModelKind,
    strategy: AutoFeatureStrategy,
    seed: u64,
) -> Table {
    let (augmented, names) = direct_candidates(task);
    if names.is_empty() {
        return augmented;
    }
    let evaluator = FeatureEvaluator::new(task, model, seed);
    let mut rng = StdRng::seed_from_u64(seed);

    // Candidate feature vectors aligned with the training table.
    let vectors: Vec<Vec<f64>> = names
        .iter()
        .map(|n| feature_vector(&augmented, n))
        .collect();

    let n_arms = names.len();
    let mut values = vec![0.0f64; n_arms]; // estimated reward per arm
    let mut counts = vec![0usize; n_arms];
    let mut selected: Vec<usize> = Vec::new();
    let mut current_loss = evaluator.base_loss();

    let budget = (n_features * 2).min(n_arms.max(1) * 2);
    for step in 0..budget {
        if selected.len() >= n_features.min(n_arms) {
            break;
        }
        // Pick the next arm among the not-yet-selected candidates.
        let available: Vec<usize> = (0..n_arms).filter(|i| !selected.contains(i)).collect();
        if available.is_empty() {
            break;
        }
        let arm = match strategy {
            AutoFeatureStrategy::Mab => {
                // UCB1 over available arms.
                *available
                    .iter()
                    .max_by(|&&a, &&b| {
                        let ucb = |i: usize| {
                            if counts[i] == 0 {
                                f64::INFINITY
                            } else {
                                values[i]
                                    + (2.0 * ((step + 1) as f64).ln() / counts[i] as f64).sqrt()
                            }
                        };
                        ucb(a).total_cmp(&ucb(b))
                    })
                    .expect("available is non-empty")
            }
            AutoFeatureStrategy::Dqn => {
                // ε-greedy over the learned values.
                if rng.gen::<f64>() < 0.3 {
                    available[rng.gen_range(0..available.len())]
                } else {
                    *available
                        .iter()
                        .max_by(|&&a, &&b| values[a].total_cmp(&values[b]))
                        .expect("available is non-empty")
                }
            }
        };

        // Reward: validation-loss improvement when adding this feature to the selected set.
        let mut features: Vec<(String, Vec<f64>)> = selected
            .iter()
            .map(|&i| (names[i].clone(), vectors[i].clone()))
            .collect();
        features.push((names[arm].clone(), vectors[arm].clone()));
        let loss = evaluator.result_with_features(&features).loss;
        let reward = current_loss - loss;

        counts[arm] += 1;
        let lr = 1.0 / counts[arm] as f64;
        values[arm] += lr * (reward - values[arm]);

        if reward > 0.0 {
            selected.push(arm);
            current_loss = loss;
        }
    }

    // If the greedy process selected fewer than requested, top up with the best-valued arms.
    if selected.len() < n_features.min(n_arms) {
        let mut order: Vec<usize> = (0..n_arms).filter(|i| !selected.contains(i)).collect();
        order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
        for arm in order {
            if selected.len() >= n_features.min(n_arms) {
                break;
            }
            selected.push(arm);
        }
    }

    let keep: Vec<String> = selected.into_iter().map(|i| names[i].clone()).collect();
    project_features(task, &augmented, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_datagen::{covtype, tmall, GenConfig};
    use feataug_fsel::{ScoreSelector, ScoringMethod};
    use feataug_ml::Task;

    fn tmall_task() -> AugTask {
        let ds = tmall::generate(&GenConfig {
            n_entities: 150,
            fanout: 6,
            n_noise_cols: 1,
            seed: 11,
        });
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::BinaryClassification,
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn covtype_task() -> AugTask {
        let ds = covtype::generate(&GenConfig::tiny());
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::MultiClassification { n_classes: 4 },
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn small_dfs() -> DfsConfig {
        DfsConfig {
            agg_funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
            ..DfsConfig::default()
        }
    }

    #[test]
    fn featuretools_plain_truncates_in_order() {
        let task = tmall_task();
        let out = featuretools_augment(&task, 4, None, &small_dfs());
        assert_eq!(out.num_columns(), task.train.num_columns() + 4);
        assert_eq!(out.num_rows(), task.train.num_rows());
    }

    #[test]
    fn featuretools_with_selector_picks_requested_count() {
        let task = tmall_task();
        let selector = ScoreSelector::new(ScoringMethod::MutualInformation);
        let out = featuretools_augment(&task, 3, Some(&selector), &small_dfs());
        assert_eq!(out.num_columns(), task.train.num_columns() + 3);
    }

    #[test]
    fn random_baseline_attaches_some_features() {
        let task = tmall_task();
        let out = random_augment(&task, &[AggFunc::Sum, AggFunc::Avg], 3, 2, 5);
        assert!(out.num_columns() > task.train.num_columns());
        assert_eq!(out.num_rows(), task.train.num_rows());
        // Deterministic given the seed.
        let again = random_augment(&task, &[AggFunc::Sum, AggFunc::Avg], 3, 2, 5);
        assert_eq!(out.column_names(), again.column_names());
    }

    #[test]
    fn arda_selects_features_on_one_to_one_data() {
        let task = covtype_task();
        let out = arda_augment(&task, 5, ModelKind::RandomForest, 3);
        assert!(out.num_columns() > task.train.num_columns());
        assert!(out.num_columns() <= task.train.num_columns() + 5);
    }

    #[test]
    fn autofeature_variants_select_features() {
        let task = covtype_task();
        for strategy in [AutoFeatureStrategy::Mab, AutoFeatureStrategy::Dqn] {
            let out = autofeature_augment(&task, 4, ModelKind::Linear, strategy, 3);
            assert!(
                out.num_columns() > task.train.num_columns(),
                "{strategy:?} selected nothing"
            );
            assert!(out.num_columns() <= task.train.num_columns() + 4);
        }
    }

    #[test]
    fn arda_works_on_one_to_many_via_dfs_candidates() {
        let task = tmall_task();
        let out = arda_augment(&task, 4, ModelKind::Linear, 3);
        assert!(out.num_columns() > task.train.num_columns());
    }
}
