//! Predicate-aware SQL queries, and the encoding of a query pool as a hyperparameter space.
//!
//! [`QueryCodec`] implements the paper's mapping from a query template's pool `Q_T` to a vector
//! space `V` (Section V-A): one dimension for the aggregation function, one for the aggregated
//! attribute, one dimension per categorical predicate attribute (its equality constant, or
//! "none"), two per numerical/datetime predicate attribute (range bounds, each optional), and —
//! when the foreign key has several attributes — one binary dimension per key attribute for the
//! group-by subset `k ⊆ K`. [`QueryCodec::decode`] turns a configuration sampled by the
//! optimizer back into an executable [`PredicateQuery`].

use feataug_hpo::{Config, Param, SearchSpace};
use feataug_tabular::groupby::group_by_aggregate;
use feataug_tabular::join::left_join;
use feataug_tabular::{AggFunc, DataType, Predicate, Table, Value};

use crate::template::QueryTemplate;

/// Maximum number of distinct values enumerated per categorical predicate attribute.
pub const MAX_CATEGORY_VALUES: usize = 24;

/// A concrete predicate-aware SQL query (one point of a query pool).
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateQuery {
    /// Aggregation function.
    pub agg: AggFunc,
    /// Aggregated attribute.
    pub agg_column: String,
    /// The `WHERE` clause (conjunction of equality / range predicates; `Predicate::True` when
    /// empty).
    pub predicate: Predicate,
    /// Group-by key columns (a non-empty subset of the template's `K`).
    pub group_keys: Vec<String>,
}

impl PredicateQuery {
    /// A short, unique-ish column name for the generated feature, derived from the query text.
    /// The full 64-bit FNV-1a hash is embedded: searches generate thousands of features, where
    /// truncating to 32 bits would make birthday collisions (and silently dropped features)
    /// plausible.
    pub fn feature_name(&self) -> String {
        let sql = self.to_sql("R");
        // FNV-1a over the SQL text keeps names stable across runs without a hashing dependency.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in sql.as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        format!(
            "{}_{}_{:016x}",
            self.agg.name().to_lowercase(),
            self.agg_column,
            hash
        )
    }

    /// Render the query as SQL text.
    pub fn to_sql(&self, relevant_name: &str) -> String {
        let keys = self.group_keys.join(", ");
        let where_clause = if self.predicate.is_trivial() {
            String::new()
        } else {
            format!(" WHERE {}", self.predicate)
        };
        format!(
            "SELECT {keys}, {agg}({col}) AS feature FROM {relevant_name}{where_clause} GROUP BY {keys}",
            agg = self.agg.name(),
            col = self.agg_column,
        )
    }

    /// Execute the query against the relevant table, producing a per-key feature table whose
    /// feature column is named by [`PredicateQuery::feature_name`].
    ///
    /// This is the reference path — [`crate::exec::QueryEngine`] is the fast, cache-reusing
    /// equivalent the search loops use — so it stays deliberately simple; the one optimisation
    /// it keeps is borrowing the relevant table instead of cloning it when the predicate keeps
    /// every row.
    pub fn execute(&self, relevant: &Table) -> feataug_tabular::Result<Table> {
        let filtered: std::borrow::Cow<'_, Table> = if self.predicate.is_trivial() {
            std::borrow::Cow::Borrowed(relevant)
        } else {
            std::borrow::Cow::Owned(relevant.filter(&self.predicate)?)
        };
        let keys: Vec<&str> = self.group_keys.iter().map(|s| s.as_str()).collect();
        let name = self.feature_name();
        group_by_aggregate(&filtered, &keys, self.agg, &self.agg_column, &name)
    }

    /// Execute the query and left-join the feature onto the training table (paper
    /// Definition 3's augmented training table). Returns the augmented table and the feature
    /// column's name.
    pub fn augment(
        &self,
        train: &Table,
        relevant: &Table,
    ) -> feataug_tabular::Result<(Table, String)> {
        let features = self.execute(relevant)?;
        let keys: Vec<&str> = self.group_keys.iter().map(|s| s.as_str()).collect();
        let augmented = left_join(train, &features, &keys, &keys)?;
        Ok((augmented, self.feature_name()))
    }
}

/// How one search-space dimension maps back onto the query.
#[derive(Debug, Clone)]
enum DimRole {
    AggFunc,
    AggColumn,
    /// Equality predicate on a categorical attribute; the vector holds the attribute's
    /// enumerated values.
    CategoryEq {
        attr: String,
        values: Vec<Value>,
    },
    /// Lower bound of a range predicate on a numeric / datetime attribute.
    RangeLow {
        attr: String,
        is_datetime: bool,
    },
    /// Upper bound of a range predicate.
    RangeHigh {
        attr: String,
        is_datetime: bool,
    },
    /// Group-by key inclusion flag.
    KeyFlag {
        key: String,
    },
}

/// The encoder/decoder between a query template's pool and a hyperparameter [`SearchSpace`].
#[derive(Debug, Clone)]
pub struct QueryCodec {
    template: QueryTemplate,
    space: SearchSpace,
    roles: Vec<DimRole>,
}

impl QueryCodec {
    /// Build the codec for `template` by inspecting the relevant table's column domains.
    ///
    /// * categorical / boolean predicate attributes → one optional categorical dimension over
    ///   their (capped) distinct values,
    /// * numeric / datetime predicate attributes → two optional float dimensions (range bounds),
    /// * multi-attribute foreign keys → one binary dimension per key attribute.
    pub fn build(template: &QueryTemplate, relevant: &Table) -> feataug_tabular::Result<Self> {
        let mut params = Vec::new();
        let mut roles = Vec::new();

        params.push(Param::categorical(
            "agg_func",
            template.agg_funcs.len().max(1),
        ));
        roles.push(DimRole::AggFunc);
        params.push(Param::categorical(
            "agg_column",
            template.agg_columns.len().max(1),
        ));
        roles.push(DimRole::AggColumn);

        for attr in &template.predicate_attrs {
            let column = relevant.column(attr)?;
            match column.dtype() {
                DataType::Categorical | DataType::Bool => {
                    let values = column.distinct_values(MAX_CATEGORY_VALUES);
                    if values.is_empty() {
                        continue;
                    }
                    params.push(Param::optional_categorical(
                        format!("{attr}__eq"),
                        values.len(),
                    ));
                    roles.push(DimRole::CategoryEq {
                        attr: attr.clone(),
                        values,
                    });
                }
                DataType::Int | DataType::Float | DataType::DateTime => {
                    let Some((low, high)) = column.numeric_range() else {
                        continue;
                    };
                    let is_datetime = column.dtype() == DataType::DateTime;
                    params.push(Param::optional_float(format!("{attr}__low"), low, high));
                    roles.push(DimRole::RangeLow {
                        attr: attr.clone(),
                        is_datetime,
                    });
                    params.push(Param::optional_float(format!("{attr}__high"), low, high));
                    roles.push(DimRole::RangeHigh {
                        attr: attr.clone(),
                        is_datetime,
                    });
                }
            }
        }

        if template.key_columns.len() > 1 {
            for key in &template.key_columns {
                params.push(Param::categorical(format!("{key}__groupby"), 2));
                roles.push(DimRole::KeyFlag { key: key.clone() });
            }
        }

        Ok(QueryCodec {
            template: template.clone(),
            space: SearchSpace::new(params),
            roles,
        })
    }

    /// The hyperparameter space representing the query pool.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The template this codec was built for.
    pub fn template(&self) -> &QueryTemplate {
        &self.template
    }

    /// Decode an optimizer configuration into an executable query.
    pub fn decode(&self, config: &Config) -> PredicateQuery {
        assert_eq!(
            config.len(),
            self.roles.len(),
            "config does not match codec"
        );
        let mut agg = *self.template.agg_funcs.first().unwrap_or(&AggFunc::Count);
        let mut agg_column = self
            .template
            .agg_columns
            .first()
            .cloned()
            .unwrap_or_default();
        let mut predicates: Vec<Predicate> = Vec::new();
        // attr -> (low, high) accumulated across the two range dimensions.
        let mut ranges: Vec<(String, Option<f64>, Option<f64>, bool)> = Vec::new();
        let mut selected_keys: Vec<String> = Vec::new();

        for (value, role) in config.iter().zip(&self.roles) {
            match role {
                DimRole::AggFunc => {
                    if let Some(i) = value.as_cat() {
                        if let Some(f) = self.template.agg_funcs.get(i) {
                            agg = *f;
                        }
                    }
                }
                DimRole::AggColumn => {
                    if let Some(i) = value.as_cat() {
                        if let Some(c) = self.template.agg_columns.get(i) {
                            agg_column = c.clone();
                        }
                    }
                }
                DimRole::CategoryEq { attr, values } => {
                    if let Some(i) = value.as_cat() {
                        if let Some(v) = values.get(i) {
                            predicates.push(Predicate::Eq {
                                column: attr.clone(),
                                value: v.clone(),
                            });
                        }
                    }
                }
                DimRole::RangeLow { attr, is_datetime } => {
                    let entry = ranges.iter_mut().find(|(a, _, _, _)| a == attr);
                    let low = value.as_f64();
                    match entry {
                        Some(e) => e.1 = low,
                        None => ranges.push((attr.clone(), low, None, *is_datetime)),
                    }
                }
                DimRole::RangeHigh { attr, is_datetime } => {
                    let high = value.as_f64();
                    match ranges.iter_mut().find(|(a, _, _, _)| a == attr) {
                        Some(e) => e.2 = high,
                        None => ranges.push((attr.clone(), None, high, *is_datetime)),
                    }
                }
                DimRole::KeyFlag { key } => {
                    if value.as_cat() == Some(1) {
                        selected_keys.push(key.clone());
                    }
                }
            }
        }

        for (attr, low, high, is_datetime) in ranges {
            if low.is_none() && high.is_none() {
                continue;
            }
            // Ensure low <= high when both are present.
            let (low, high) = match (low, high) {
                (Some(l), Some(h)) if l > h => (Some(h), Some(l)),
                other => other,
            };
            let to_value = |v: f64| {
                if is_datetime {
                    Value::DateTime(v.round() as i64)
                } else {
                    Value::Float(v)
                }
            };
            predicates.push(Predicate::Range {
                column: attr,
                low: low.map(to_value),
                high: high.map(to_value),
            });
        }

        // Group-by keys: the selected subset, defaulting to the full foreign key when the subset
        // is empty or the key is single-attribute.
        let group_keys = if selected_keys.is_empty() {
            self.template.key_columns.clone()
        } else {
            selected_keys
        };

        PredicateQuery {
            agg,
            agg_column,
            predicate: Predicate::and(predicates),
            group_keys,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_hpo::ParamValue;
    use feataug_tabular::Column;

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m1", "m2", "m2"]))
            .unwrap();
        t.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        t.add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
            .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400]))
            .unwrap();
        t
    }

    fn template() -> QueryTemplate {
        QueryTemplate::new(
            vec![AggFunc::Sum, AggFunc::Avg],
            vec!["pprice".into()],
            vec!["department".into(), "ts".into()],
            vec!["cname".into(), "mid".into()],
        )
    }

    #[test]
    fn codec_space_shape_matches_paper_vector() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        // agg + agg_col + department(1 cat) + ts(2 range) + 2 key flags = 7 dimensions.
        assert_eq!(codec.space().len(), 7);
    }

    #[test]
    fn decode_produces_valid_query_and_execution_works() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(1),       // AVG
            ParamValue::Cat(0),       // pprice
            ParamValue::Cat(0),       // department = 'E'
            ParamValue::Float(150.0), // ts >= 150
            ParamValue::Null,         // no upper bound
            ParamValue::Cat(1),       // group by cname
            ParamValue::Cat(0),       // not by mid
        ];
        let query = codec.decode(&config);
        assert_eq!(query.agg, AggFunc::Avg);
        assert_eq!(query.agg_column, "pprice");
        assert_eq!(query.group_keys, vec!["cname".to_string()]);
        let sql = query.to_sql("logs");
        assert!(sql.contains("department = 'E'"));
        assert!(sql.contains("ts >= 150"));

        let out = query.execute(&relevant()).unwrap();
        // Only rows 2,3 match (ts>=150 & dept=E), both cname=b -> single group.
        assert_eq!(out.num_rows(), 1);
        assert_eq!(
            out.value(0, &query.feature_name()).unwrap(),
            Value::Float(35.0)
        );
    }

    #[test]
    fn decode_swaps_inverted_bounds_and_defaults_keys() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(0),
            ParamValue::Cat(0),
            ParamValue::Null,
            ParamValue::Float(390.0), // low > high: must be swapped
            ParamValue::Float(110.0),
            ParamValue::Cat(0), // no key selected -> default to full key
            ParamValue::Cat(0),
        ];
        let query = codec.decode(&config);
        assert_eq!(
            query.group_keys,
            vec!["cname".to_string(), "mid".to_string()]
        );
        match &query.predicate {
            Predicate::Range { low, high, .. } => {
                assert!(
                    low.as_ref().unwrap().as_f64().unwrap()
                        <= high.as_ref().unwrap().as_f64().unwrap()
                );
            }
            other => panic!("expected a range predicate, got {other:?}"),
        }
        assert!(query.execute(&relevant()).is_ok());
    }

    #[test]
    fn trivial_predicate_query_matches_plain_groupby() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(0), // SUM
            ParamValue::Cat(0),
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Cat(1),
            ParamValue::Cat(1),
        ];
        let query = codec.decode(&config);
        assert!(query.predicate.is_trivial());
        let out = query.execute(&relevant()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn augment_attaches_feature_to_training_table() {
        let mut train = Table::new("users");
        train
            .add_column("cname", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        train
            .add_column("mid", Column::from_strs(&["m1", "m2", "m9"]))
            .unwrap();
        train
            .add_column("label", Column::from_i64s(&[0, 1, 0]))
            .unwrap();

        let query = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "pprice".into(),
            predicate: Predicate::eq("department", "E"),
            group_keys: vec!["cname".into(), "mid".into()],
        };
        let (augmented, feature) = query.augment(&train, &relevant()).unwrap();
        assert_eq!(augmented.num_rows(), 3);
        assert_eq!(augmented.value(0, &feature).unwrap(), Value::Float(10.0));
        assert_eq!(augmented.value(1, &feature).unwrap(), Value::Float(70.0));
        assert_eq!(augmented.value(2, &feature).unwrap(), Value::Null);
    }

    #[test]
    fn random_configs_always_decode_and_execute() {
        use rand::SeedableRng;
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let config = codec.space().sample(&mut rng);
            let query = codec.decode(&config);
            assert!(!query.group_keys.is_empty());
            assert!(query.execute(&relevant()).is_ok());
        }
    }

    #[test]
    fn feature_names_differ_for_different_queries() {
        let q1 = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "pprice".into(),
            predicate: Predicate::eq("department", "E"),
            group_keys: vec!["cname".into()],
        };
        let q2 = PredicateQuery {
            predicate: Predicate::eq("department", "H"),
            ..q1.clone()
        };
        assert_ne!(q1.feature_name(), q2.feature_name());
        assert_eq!(q1.feature_name(), q1.feature_name());
    }
}
