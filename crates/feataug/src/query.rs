//! Predicate-aware SQL queries, and the encoding of a query pool as a hyperparameter space.
//!
//! [`QueryCodec`] implements the paper's mapping from a query template's pool `Q_T` to a vector
//! space `V` (Section V-A): one dimension for the aggregation function, one for the aggregated
//! attribute, one dimension per categorical predicate attribute (its equality constant, or
//! "none"), two per numerical/datetime predicate attribute (range bounds, each optional), and —
//! when the foreign key has several attributes — one binary dimension per key attribute for the
//! group-by subset `k ⊆ K`. [`QueryCodec::decode`] turns a configuration sampled by the
//! optimizer back into an executable [`PredicateQuery`].

use feataug_hpo::{Config, Param, SearchSpace};
use feataug_tabular::groupby::group_by_aggregate;
use feataug_tabular::join::left_join;
use feataug_tabular::{AggFunc, DataType, Predicate, Table, Value};

use crate::template::QueryTemplate;

/// Maximum number of distinct values enumerated per categorical predicate attribute.
pub const MAX_CATEGORY_VALUES: usize = 24;

/// A concrete predicate-aware SQL query (one point of a query pool).
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateQuery {
    /// Aggregation function.
    pub agg: AggFunc,
    /// Aggregated attribute.
    pub agg_column: String,
    /// The `WHERE` clause (conjunction of equality / range predicates; `Predicate::True` when
    /// empty).
    pub predicate: Predicate,
    /// Group-by key columns (a non-empty subset of the template's `K`).
    pub group_keys: Vec<String>,
}

impl PredicateQuery {
    /// A short, unique-ish column name for the generated feature, derived from the query text.
    /// The full 64-bit FNV-1a hash is embedded: searches generate thousands of features, where
    /// truncating to 32 bits would make birthday collisions (and silently dropped features)
    /// plausible.
    pub fn feature_name(&self) -> String {
        let sql = self.to_sql("R");
        // FNV-1a over the SQL text keeps names stable across runs without a hashing dependency.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in sql.as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        format!(
            "{}_{}_{:016x}",
            self.agg.name().to_lowercase(),
            self.agg_column,
            hash
        )
    }

    /// Render the query as SQL text.
    pub fn to_sql(&self, relevant_name: &str) -> String {
        let keys = self.group_keys.join(", ");
        let where_clause = if self.predicate.is_trivial() {
            String::new()
        } else {
            format!(" WHERE {}", self.predicate)
        };
        format!(
            "SELECT {keys}, {agg}({col}) AS feature FROM {relevant_name}{where_clause} GROUP BY {keys}",
            agg = self.agg.name(),
            col = self.agg_column,
        )
    }

    /// Execute the query against the relevant table, producing a per-key feature table whose
    /// feature column is named by [`PredicateQuery::feature_name`].
    ///
    /// This is the reference path — [`crate::exec::QueryEngine`] is the fast, cache-reusing
    /// equivalent the search loops use — so it stays deliberately simple; the one optimisation
    /// it keeps is borrowing the relevant table instead of cloning it when the predicate keeps
    /// every row.
    pub fn execute(&self, relevant: &Table) -> feataug_tabular::Result<Table> {
        let filtered: std::borrow::Cow<'_, Table> = if self.predicate.is_trivial() {
            std::borrow::Cow::Borrowed(relevant)
        } else {
            std::borrow::Cow::Owned(relevant.filter(&self.predicate)?)
        };
        let keys: Vec<&str> = self.group_keys.iter().map(|s| s.as_str()).collect();
        let name = self.feature_name();
        group_by_aggregate(&filtered, &keys, self.agg, &self.agg_column, &name)
    }

    /// Execute the query and left-join the feature onto the training table (paper
    /// Definition 3's augmented training table). Returns the augmented table and the feature
    /// column's name.
    pub fn augment(
        &self,
        train: &Table,
        relevant: &Table,
    ) -> feataug_tabular::Result<(Table, String)> {
        let features = self.execute(relevant)?;
        let keys: Vec<&str> = self.group_keys.iter().map(|s| s.as_str()).collect();
        let augmented = left_join(train, &features, &keys, &keys)?;
        Ok((augmented, self.feature_name()))
    }
}

/// What class of failure [`AugPlan::from_plan_text`] hit — lets callers tell
/// "this plan came from a newer build" (actionable: upgrade the reader) apart
/// from "this text is broken" without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanParseErrorKind {
    /// The text violates the format: unknown directives, bad escapes,
    /// truncated queries, a header that isn't an `AUGPLAN` line at all.
    Malformed,
    /// The header declared an `AUGPLAN` version this build does not read.
    UnsupportedVersion {
        /// The version the header declared.
        found: u32,
    },
}

/// A parse failure of [`AugPlan::from_plan_text`]: the offending line (1-based,
/// 0 for document-level problems), what went wrong, and which
/// [`PlanParseErrorKind`] it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line (0: document-level).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
    /// The failure class (version mismatch vs. broken text).
    pub kind: PlanParseErrorKind,
}

impl PlanParseError {
    fn malformed(line: usize, message: String) -> PlanParseError {
        PlanParseError {
            line,
            message,
            kind: PlanParseErrorKind::Malformed,
        }
    }
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan text line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// One selected query of an [`AugPlan`], with the validation loss it achieved
/// during the search (lower is better; NaN when the plan was hand-built).
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The predicate-aware SQL query, with its predicate in canonical form
    /// (flat conjunction of leaves; see [`AugPlan::new`]).
    pub query: PredicateQuery,
    /// Real validation loss observed when the query's feature was added.
    pub loss: f64,
}

impl PartialEq for PlannedQuery {
    fn eq(&self, other: &Self) -> bool {
        // Bit-level loss comparison: derived f64 equality would make a plan
        // with a NaN loss unequal to itself, breaking round-trip tests. The
        // query falls back to its structural `Debug` form (the same
        // unambiguous rendering the engine keys its caches by) so a NaN
        // predicate constant — unequal to itself under derived float
        // equality — doesn't make a plan unequal to its own round trip.
        if self.loss.total_cmp(&other.loss) != std::cmp::Ordering::Equal {
            return false;
        }
        self.query == other.query || format!("{:?}", self.query) == format!("{:?}", other.query)
    }
}

/// The portable artifact of a fitted augmentation: the selected queries as
/// plain data, plus the key metadata needed to apply them elsewhere.
///
/// A plan is what survives the offline fit — it can be rendered to SQL
/// ([`AugPlan::to_sql`]) for execution on an external warehouse, or
/// round-tripped through a hand-rolled line-based text format
/// ([`AugPlan::to_plan_text`] / [`AugPlan::from_plan_text`] — the build is
/// offline, so no serde) and recompiled into a serving
/// [`crate::pipeline::AugModel`] on another process.
#[derive(Debug, Clone, PartialEq)]
pub struct AugPlan {
    /// Name of the relevant table the queries run against (SQL rendering).
    /// For a multi-hop plan this is the *base* table of the join path; the
    /// queries run against the view built by applying [`AugPlan::hops`].
    pub relevant_name: String,
    /// The full foreign key `K` shared by the training and relevant tables;
    /// every query's `group_keys` is a subset of it.
    pub key_columns: Vec<String>,
    /// Intermediate hops of a multi-hop join path, applied in order to
    /// [`AugPlan::relevant_name`] before the queries run. Empty for the
    /// classic single-table plan (text format version 1).
    pub hops: Vec<PlanHop>,
    /// The selected queries, in materialisation order.
    pub queries: Vec<PlannedQuery>,
}

/// One hop of a multi-hop [`AugPlan`]: expand the view built so far with a
/// SQL `LEFT JOIN` against `table` on `left_keys[i] = right_keys[i]`
/// (all matches kept — see `feataug_tabular::join::left_join_expand`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanHop {
    /// The relevant table joined in by this hop.
    pub table: String,
    /// Join key columns on the view built so far.
    pub left_keys: Vec<String>,
    /// Join key columns on `table` (same arity as `left_keys`; not copied
    /// into the view).
    pub right_keys: Vec<String>,
}

/// Recursively flatten a predicate into its leaves (dropping `True`s).
fn collect_leaves(p: &Predicate, out: &mut Vec<Predicate>) {
    match p {
        Predicate::True => {}
        Predicate::And(parts) => parts.iter().for_each(|part| collect_leaves(part, out)),
        leaf => out.push(leaf.clone()),
    }
}

/// The canonical form of a predicate: a flat conjunction of leaves (zero
/// leaves → `True`, one → the bare leaf). The plan text format stores leaves
/// only, so plans canonicalize on construction to make
/// `from_plan_text(to_plan_text(p)) == p` hold structurally.
fn canonical_predicate(p: &Predicate) -> Predicate {
    let mut leaves = Vec::new();
    collect_leaves(p, &mut leaves);
    Predicate::and(leaves)
}

/// Escape one text-format field: backslash, tab, newline and carriage return
/// are the only characters with structural meaning.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str, line: usize) -> Result<String, PlanParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(PlanParseError::malformed(
                    line,
                    format!("bad escape sequence `\\{}`", other.unwrap_or(' ')),
                ))
            }
        }
    }
    Ok(out)
}

/// Render a [`Value`] as a type-tagged field (`s:`=string, `i:`=int,
/// `f:`=float, `b:`=bool, `d:`=datetime, `n:`=null). Floats use Rust's
/// shortest-round-trip formatting, so finite values parse back bit-identical.
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{f}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{}", escape_field(s)),
        Value::DateTime(t) => format!("d:{t}"),
    }
}

fn parse_value(field: &str, line: usize) -> Result<Value, PlanParseError> {
    let err = |message: String| PlanParseError::malformed(line, message);
    let (tag, body) = field
        .split_once(':')
        .ok_or_else(|| err(format!("value `{field}` has no type tag")))?;
    match tag {
        "n" => Ok(Value::Null),
        "s" => Ok(Value::Str(unescape_field(body, line)?)),
        "i" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(format!("bad int `{body}`: {e}"))),
        "d" => body
            .parse::<i64>()
            .map(Value::DateTime)
            .map_err(|e| err(format!("bad datetime `{body}`: {e}"))),
        "f" => body
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| err(format!("bad float `{body}`: {e}"))),
        "b" => body
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|e| err(format!("bad bool `{body}`: {e}"))),
        other => Err(err(format!("unknown value tag `{other}`"))),
    }
}

/// Magic first line of the plan text format; the trailing integer is the
/// format version. Version 1 is the single-table format; version 2 adds
/// `hop` lines for multi-hop join paths. Plans without hops still serialize
/// as version 1, so artifacts written by older builds round-trip byte-stable
/// and older readers keep reading pathless plans from this build.
const PLAN_HEADER: &str = "AUGPLAN 1";

/// Header of the multi-hop plan format (emitted only when the plan has hops).
const PLAN_HEADER_V2: &str = "AUGPLAN 2";

/// Highest `AUGPLAN` version this build reads.
const MAX_PLAN_VERSION: u32 = 2;

/// Why a plan cannot compile against a relevant table. Produced by
/// [`AugPlan::analyze`], which [`crate::pipeline::AugModel::compile`] runs
/// before building an engine — a plan/table mismatch fails fast with a
/// description instead of surfacing as a per-query error (or a NULL column)
/// deep inside transform or serve.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAnalysisError {
    /// The plan has an empty foreign key (`key_columns` is empty).
    NoKeyColumns,
    /// A plan key column is absent from the relevant table.
    MissingKeyColumn {
        /// The missing column.
        column: String,
    },
    /// A plan key column has different types in the training and relevant
    /// tables. Typed join keys never match across types, so every transform
    /// row would silently come back NULL — especially easy to hit when a
    /// multi-hop path chains heterogeneous tables.
    KeyTypeMismatch {
        /// The offending key column.
        column: String,
        /// Its type in the training table.
        train: DataType,
        /// Its type in the relevant table (or compiled view).
        relevant: DataType,
    },
    /// A query groups by a column that is not one of the plan's key columns.
    UnknownGroupKey {
        /// Plan-order index of the offending query.
        query: usize,
        /// The unknown group-by column.
        column: String,
    },
    /// A query has no group-by columns at all.
    NoGroupKeys {
        /// Plan-order index of the offending query.
        query: usize,
    },
    /// A query aggregates a column absent from the relevant table.
    MissingAggColumn {
        /// Plan-order index of the offending query.
        query: usize,
        /// The missing column.
        column: String,
    },
    /// A query applies an arithmetic aggregate (`SUM`, `AVG`, variance /
    /// standard-deviation / kurtosis moments) to a categorical column —
    /// arithmetic over dictionary codes is never a meaningful feature.
    /// Frequency and order statistics (`COUNT`, `COUNT DISTINCT`, `MODE`,
    /// `ENTROPY`, `MIN`, `MAX`, `MEDIAN`, `MAD`) stay valid on categoricals.
    IncompatibleAggColumn {
        /// Plan-order index of the offending query.
        query: usize,
        /// The aggregation function.
        agg: AggFunc,
        /// The aggregated column.
        column: String,
        /// The column's actual type.
        dtype: DataType,
    },
    /// A query's predicate references a column absent from the relevant
    /// table.
    MissingPredicateColumn {
        /// Plan-order index of the offending query.
        query: usize,
        /// The missing column.
        column: String,
    },
    /// Two planned queries render to the same feature column name; the later
    /// one would silently overwrite the earlier one's output column.
    DuplicateQuery {
        /// Plan-order index of the first occurrence.
        first: usize,
        /// Plan-order index of the duplicate.
        second: usize,
        /// The shared feature column name.
        feature_name: String,
    },
}

impl std::fmt::Display for PlanAnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanAnalysisError::NoKeyColumns => {
                write!(f, "the plan needs at least one foreign-key column")
            }
            PlanAnalysisError::MissingKeyColumn { column } => {
                write!(f, "plan key column `{column}` not found in the relevant table")
            }
            PlanAnalysisError::KeyTypeMismatch { column, train, relevant } => write!(
                f,
                "plan key column `{column}` is {train:?} in the training table but \
                 {relevant:?} in the relevant table; its keys would never match"
            ),
            PlanAnalysisError::UnknownGroupKey { query, column } => write!(
                f,
                "query {query} groups by `{column}`, which is not a plan key column"
            ),
            PlanAnalysisError::NoGroupKeys { query } => {
                write!(f, "query {query} has no group-by columns")
            }
            PlanAnalysisError::MissingAggColumn { query, column } => write!(
                f,
                "query {query} aggregates `{column}`, which is not in the relevant table"
            ),
            PlanAnalysisError::IncompatibleAggColumn { query, agg, column, dtype } => write!(
                f,
                "query {query} applies arithmetic aggregate {agg:?} to `{column}` ({dtype:?}); \
                 arithmetic over a categorical column's dictionary codes is not meaningful"
            ),
            PlanAnalysisError::MissingPredicateColumn { query, column } => write!(
                f,
                "query {query}'s predicate references `{column}`, which is not in the relevant table"
            ),
            PlanAnalysisError::DuplicateQuery { first, second, feature_name } => write!(
                f,
                "queries {first} and {second} produce the same feature column `{feature_name}`"
            ),
        }
    }
}

impl std::error::Error for PlanAnalysisError {}

impl AugPlan {
    /// Build a plan. Predicates are canonicalized (flat leaf conjunctions)
    /// and NaN losses pinned to the canonical NaN, so any plan equals its own
    /// text round trip.
    pub fn new(
        relevant_name: impl Into<String>,
        key_columns: Vec<String>,
        queries: Vec<PlannedQuery>,
    ) -> AugPlan {
        AugPlan {
            relevant_name: relevant_name.into(),
            key_columns,
            hops: Vec::new(),
            queries: queries
                .into_iter()
                .map(|mut p| {
                    p.query.predicate = canonical_predicate(&p.query.predicate);
                    // NaN payloads don't survive text (every NaN prints
                    // `NaN`); pin them up front so round trips stay equal.
                    p.loss = feataug_tabular::aggregate::canonical_nan(p.loss);
                    p
                })
                .collect(),
        }
    }

    /// Attach a multi-hop join path to the plan ([`AugPlan::relevant_name`]
    /// becomes the path's base table). Plans with hops serialize with the
    /// version-2 header.
    pub fn with_hops(mut self, hops: Vec<PlanHop>) -> AugPlan {
        self.hops = hops;
        self
    }

    /// Number of planned queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the plan holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The feature column name of every planned query, in plan order.
    pub fn feature_names(&self) -> Vec<String> {
        self.queries
            .iter()
            .map(|p| p.query.feature_name())
            .collect()
    }

    /// Semantic pre-compile check of this plan against the training and
    /// relevant tables: every key column exists in the relevant table with
    /// the type it has in the training table (typed join keys never match
    /// across types), every query groups by plan keys only, every
    /// aggregated / predicated column exists, arithmetic aggregates are not
    /// applied to categorical columns, and no two queries collide on their
    /// output feature name. Returns the *first* problem in plan order.
    ///
    /// [`crate::pipeline::AugModel::compile`] and
    /// [`crate::pipeline::AugModel::compile_shared`] run this before building
    /// an engine, so a stale or hand-edited plan fails at compile time with a
    /// typed [`PlanAnalysisError`] instead of deep inside transform/serve.
    pub fn analyze(&self, train: &Table, relevant: &Table) -> Result<(), PlanAnalysisError> {
        if self.key_columns.is_empty() {
            return Err(PlanAnalysisError::NoKeyColumns);
        }
        for column in &self.key_columns {
            let Ok(rel_dtype) = relevant.dtype(column) else {
                return Err(PlanAnalysisError::MissingKeyColumn {
                    column: column.clone(),
                });
            };
            // Key presence in the training table is checked at transform
            // time (the training side may be a projection); but when the
            // column is there, a type mismatch is a guaranteed all-NULL
            // join and must fail the compile.
            if let Ok(train_dtype) = train.dtype(column) {
                if train_dtype != rel_dtype {
                    return Err(PlanAnalysisError::KeyTypeMismatch {
                        column: column.clone(),
                        train: train_dtype,
                        relevant: rel_dtype,
                    });
                }
            }
        }
        let mut seen: Vec<(String, usize)> = Vec::with_capacity(self.queries.len());
        for (i, planned) in self.queries.iter().enumerate() {
            let q = &planned.query;
            if q.group_keys.is_empty() {
                return Err(PlanAnalysisError::NoGroupKeys { query: i });
            }
            for key in &q.group_keys {
                if !self.key_columns.contains(key) {
                    return Err(PlanAnalysisError::UnknownGroupKey {
                        query: i,
                        column: key.clone(),
                    });
                }
            }
            match relevant.dtype(&q.agg_column) {
                Err(_) => {
                    return Err(PlanAnalysisError::MissingAggColumn {
                        query: i,
                        column: q.agg_column.clone(),
                    })
                }
                Ok(dtype) => {
                    // Arithmetic aggregates need a numeric view with real
                    // magnitudes; a categorical column only offers dictionary
                    // codes. Frequency/order statistics remain meaningful on
                    // codes (the engine serves them via dense code kernels).
                    let arithmetic = matches!(
                        q.agg,
                        AggFunc::Sum
                            | AggFunc::Avg
                            | AggFunc::Var
                            | AggFunc::VarSample
                            | AggFunc::Std
                            | AggFunc::StdSample
                            | AggFunc::Kurtosis
                    );
                    if arithmetic && dtype == DataType::Categorical {
                        return Err(PlanAnalysisError::IncompatibleAggColumn {
                            query: i,
                            agg: q.agg,
                            column: q.agg_column.clone(),
                            dtype,
                        });
                    }
                }
            }
            let mut leaves = Vec::new();
            collect_leaves(&q.predicate, &mut leaves);
            for leaf in &leaves {
                let column = match leaf {
                    Predicate::Eq { column, .. } => column,
                    Predicate::Range { column, .. } => column,
                    Predicate::True | Predicate::And(_) => continue,
                };
                if relevant.column(column).is_err() {
                    return Err(PlanAnalysisError::MissingPredicateColumn {
                        query: i,
                        column: column.clone(),
                    });
                }
            }
            let feature_name = q.feature_name();
            if let Some((_, first)) = seen.iter().find(|(name, _)| *name == feature_name) {
                return Err(PlanAnalysisError::DuplicateQuery {
                    first: *first,
                    second: i,
                    feature_name,
                });
            }
            seen.push((feature_name, i));
        }
        Ok(())
    }

    /// Render every planned query as SQL against the plan's relevant table.
    pub fn to_sql(&self) -> Vec<String> {
        self.queries
            .iter()
            .map(|p| p.query.to_sql(&self.relevant_name))
            .collect()
    }

    /// Serialize the plan to its line-based text format. The result is
    /// human-readable, diff-friendly, and parses back to an equal plan with
    /// [`AugPlan::from_plan_text`] (floats use shortest-round-trip
    /// formatting; NaN losses are canonical by construction).
    ///
    /// Plans without hops serialize as version 1 — byte-stable with older
    /// builds. A multi-hop plan writes the version-2 header and one `hop`
    /// line per hop (table, key arity, left keys, right keys):
    ///
    /// ```text
    /// AUGPLAN 2
    /// relevant<TAB>orders
    /// keys<TAB>cname<TAB>mid
    /// hop<TAB>order_items<TAB>1<TAB>order_id<TAB>order_id
    /// query<TAB>AVG<TAB>pprice<TAB>-0.731
    /// groupby<TAB>cname
    /// eq<TAB>department<TAB>s:Electronics
    /// range<TAB>timestamp<TAB>f:150<TAB>-
    /// endquery
    /// ```
    pub fn to_plan_text(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.hops.is_empty() {
            PLAN_HEADER
        } else {
            PLAN_HEADER_V2
        });
        out.push('\n');
        out.push_str(&format!(
            "relevant\t{}\n",
            escape_field(&self.relevant_name)
        ));
        out.push_str("keys");
        for k in &self.key_columns {
            out.push('\t');
            out.push_str(&escape_field(k));
        }
        out.push('\n');
        for hop in &self.hops {
            out.push_str(&format!(
                "hop\t{}\t{}",
                escape_field(&hop.table),
                hop.left_keys.len()
            ));
            for k in hop.left_keys.iter().chain(&hop.right_keys) {
                out.push('\t');
                out.push_str(&escape_field(k));
            }
            out.push('\n');
        }
        for planned in &self.queries {
            let q = &planned.query;
            out.push_str(&format!(
                "query\t{}\t{}\t{}\n",
                q.agg.name(),
                escape_field(&q.agg_column),
                planned.loss
            ));
            out.push_str("groupby");
            for k in &q.group_keys {
                out.push('\t');
                out.push_str(&escape_field(k));
            }
            out.push('\n');
            let mut leaves = Vec::new();
            collect_leaves(&q.predicate, &mut leaves);
            for leaf in &leaves {
                match leaf {
                    Predicate::Eq { column, value } => {
                        out.push_str(&format!(
                            "eq\t{}\t{}\n",
                            escape_field(column),
                            render_value(value)
                        ));
                    }
                    Predicate::Range { column, low, high } => {
                        let bound = |b: &Option<Value>| {
                            b.as_ref().map(render_value).unwrap_or_else(|| "-".into())
                        };
                        out.push_str(&format!(
                            "range\t{}\t{}\t{}\n",
                            escape_field(column),
                            bound(low),
                            bound(high)
                        ));
                    }
                    Predicate::True | Predicate::And(_) => {
                        // lint: allow(panic): collect_leaves flattens And and drops True by construction
                        unreachable!("collect_leaves returns leaves only")
                    }
                }
            }
            out.push_str("endquery\n");
        }
        out
    }

    /// Parse a plan back out of its text format (inverse of
    /// [`AugPlan::to_plan_text`]). Every malformation — unknown directives
    /// or value type tags, bad escapes, truncated queries, duplicate or
    /// missing `relevant`/`keys`/`groupby` lines — is a typed
    /// [`PlanParseError`] carrying the offending line number; parsing never
    /// panics on hostile input.
    pub fn from_plan_text(text: &str) -> Result<AugPlan, PlanParseError> {
        let err = |line: usize, message: String| PlanParseError::malformed(line, message);
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));

        let Some((_, header)) = lines.next() else {
            return Err(err(0, "empty plan text".into()));
        };
        let header = header.trim_end();
        let version = match header
            .strip_prefix("AUGPLAN ")
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            Some(v @ 1..=MAX_PLAN_VERSION) => v,
            // A well-formed `AUGPLAN <n>` header with the wrong version is a
            // distinct, typed failure: the plan came from a build speaking a
            // newer (or retired) format revision, not from corrupted text.
            Some(found) => {
                return Err(PlanParseError {
                    line: 1,
                    message: format!(
                        "unsupported plan version {found} (this build reads \
                         `{PLAN_HEADER}` through `{PLAN_HEADER_V2}`)"
                    ),
                    kind: PlanParseErrorKind::UnsupportedVersion { found },
                });
            }
            None => {
                return Err(err(1, format!("expected `{PLAN_HEADER}`, got `{header}`")));
            }
        };

        let mut relevant_name: Option<String> = None;
        let mut key_columns: Option<Vec<String>> = None;
        let mut hops: Vec<PlanHop> = Vec::new();
        let mut queries: Vec<PlannedQuery> = Vec::new();
        // The query currently being assembled: (agg, column, loss, keys, leaves).
        struct Partial {
            agg: AggFunc,
            agg_column: String,
            loss: f64,
            group_keys: Option<Vec<String>>,
            leaves: Vec<Predicate>,
            line: usize,
        }
        let mut current: Option<Partial> = None;

        for (line_no, raw) in lines {
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let directive = fields.next().unwrap_or_default();
            let rest: Vec<&str> = fields.collect();
            match directive {
                "relevant" => {
                    if relevant_name.is_some() {
                        return Err(err(line_no, "duplicate `relevant` line".into()));
                    }
                    let [name] = rest.as_slice() else {
                        return Err(err(line_no, "`relevant` takes exactly one field".into()));
                    };
                    relevant_name = Some(unescape_field(name, line_no)?);
                }
                "keys" => {
                    if key_columns.is_some() {
                        return Err(err(line_no, "duplicate `keys` line".into()));
                    }
                    if rest.is_empty() {
                        return Err(err(line_no, "`keys` needs at least one column".into()));
                    }
                    let keys = rest
                        .iter()
                        .map(|k| unescape_field(k, line_no))
                        .collect::<Result<Vec<_>, _>>()?;
                    key_columns = Some(keys);
                }
                "hop" => {
                    if version < 2 {
                        return Err(err(
                            line_no,
                            format!("`hop` requires an `{PLAN_HEADER_V2}` header"),
                        ));
                    }
                    if current.is_some() {
                        return Err(err(line_no, "`hop` inside a query".into()));
                    }
                    let [table, arity, keys @ ..] = rest.as_slice() else {
                        return Err(err(line_no, "`hop` takes table, arity, keys".into()));
                    };
                    let arity = arity
                        .parse::<usize>()
                        .ok()
                        .filter(|&a| a > 0)
                        .ok_or_else(|| err(line_no, format!("bad hop key arity `{arity}`")))?;
                    if keys.len() != 2 * arity {
                        return Err(err(
                            line_no,
                            format!(
                                "`hop` declares {arity} key pair(s) but carries {} key field(s)",
                                keys.len()
                            ),
                        ));
                    }
                    let parse_keys = |fields: &[&str]| {
                        fields
                            .iter()
                            .map(|k| unescape_field(k, line_no))
                            .collect::<Result<Vec<_>, _>>()
                    };
                    hops.push(PlanHop {
                        table: unescape_field(table, line_no)?,
                        left_keys: parse_keys(&keys[..arity])?,
                        right_keys: parse_keys(&keys[arity..])?,
                    });
                }
                "query" => {
                    if current.is_some() {
                        return Err(err(line_no, "`query` before previous `endquery`".into()));
                    }
                    let [agg, column, loss] = rest.as_slice() else {
                        return Err(err(line_no, "`query` takes agg, column, loss".into()));
                    };
                    let agg = AggFunc::parse(agg)
                        .ok_or_else(|| err(line_no, format!("unknown aggregate `{agg}`")))?;
                    let loss = loss
                        .parse::<f64>()
                        .map_err(|e| err(line_no, format!("bad loss `{loss}`: {e}")))?;
                    current = Some(Partial {
                        agg,
                        agg_column: unescape_field(column, line_no)?,
                        loss,
                        group_keys: None,
                        leaves: Vec::new(),
                        line: line_no,
                    });
                }
                "groupby" => {
                    let Some(partial) = current.as_mut() else {
                        return Err(err(line_no, "`groupby` outside a query".into()));
                    };
                    if partial.group_keys.is_some() {
                        return Err(err(line_no, "duplicate `groupby` line in query".into()));
                    }
                    if rest.is_empty() {
                        return Err(err(line_no, "`groupby` needs at least one key".into()));
                    }
                    partial.group_keys = Some(
                        rest.iter()
                            .map(|k| unescape_field(k, line_no))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                "eq" => {
                    let Some(partial) = current.as_mut() else {
                        return Err(err(line_no, "`eq` outside a query".into()));
                    };
                    let [column, value] = rest.as_slice() else {
                        return Err(err(line_no, "`eq` takes column, value".into()));
                    };
                    partial.leaves.push(Predicate::Eq {
                        column: unescape_field(column, line_no)?,
                        value: parse_value(value, line_no)?,
                    });
                }
                "range" => {
                    let Some(partial) = current.as_mut() else {
                        return Err(err(line_no, "`range` outside a query".into()));
                    };
                    let [column, low, high] = rest.as_slice() else {
                        return Err(err(line_no, "`range` takes column, low, high".into()));
                    };
                    let bound = |field: &str| -> Result<Option<Value>, PlanParseError> {
                        if field == "-" {
                            Ok(None)
                        } else {
                            parse_value(field, line_no).map(Some)
                        }
                    };
                    partial.leaves.push(Predicate::Range {
                        column: unescape_field(column, line_no)?,
                        low: bound(low)?,
                        high: bound(high)?,
                    });
                }
                "endquery" => {
                    let Some(partial) = current.take() else {
                        return Err(err(line_no, "`endquery` without a query".into()));
                    };
                    let group_keys = partial.group_keys.ok_or_else(|| {
                        err(partial.line, "query is missing its `groupby` line".into())
                    })?;
                    queries.push(PlannedQuery {
                        query: PredicateQuery {
                            agg: partial.agg,
                            agg_column: partial.agg_column,
                            predicate: Predicate::and(partial.leaves),
                            group_keys,
                        },
                        loss: partial.loss,
                    });
                }
                other => {
                    return Err(err(line_no, format!("unknown directive `{other}`")));
                }
            }
        }
        if let Some(partial) = current {
            return Err(err(
                partial.line,
                "unterminated query (no `endquery`)".into(),
            ));
        }
        let relevant_name =
            relevant_name.ok_or_else(|| err(0, "plan is missing its `relevant` line".into()))?;
        let key_columns =
            key_columns.ok_or_else(|| err(0, "plan is missing its `keys` line".into()))?;
        Ok(AugPlan::new(relevant_name, key_columns, queries).with_hops(hops))
    }
}

/// How one search-space dimension maps back onto the query.
#[derive(Debug, Clone)]
enum DimRole {
    AggFunc,
    AggColumn,
    /// Equality predicate on a categorical attribute; the vector holds the attribute's
    /// enumerated values.
    CategoryEq {
        attr: String,
        values: Vec<Value>,
    },
    /// Lower bound of a range predicate on a numeric / datetime attribute.
    RangeLow {
        attr: String,
        is_datetime: bool,
    },
    /// Upper bound of a range predicate.
    RangeHigh {
        attr: String,
        is_datetime: bool,
    },
    /// Group-by key inclusion flag.
    KeyFlag {
        key: String,
    },
}

/// The encoder/decoder between a query template's pool and a hyperparameter [`SearchSpace`].
#[derive(Debug, Clone)]
pub struct QueryCodec {
    template: QueryTemplate,
    space: SearchSpace,
    roles: Vec<DimRole>,
}

impl QueryCodec {
    /// Build the codec for `template` by inspecting the relevant table's column domains.
    ///
    /// * categorical / boolean predicate attributes → one optional categorical dimension over
    ///   their (capped) distinct values,
    /// * numeric / datetime predicate attributes → two optional float dimensions (range bounds),
    /// * multi-attribute foreign keys → one binary dimension per key attribute.
    pub fn build(template: &QueryTemplate, relevant: &Table) -> feataug_tabular::Result<Self> {
        let mut params = Vec::new();
        let mut roles = Vec::new();

        params.push(Param::categorical(
            "agg_func",
            template.agg_funcs.len().max(1),
        ));
        roles.push(DimRole::AggFunc);
        params.push(Param::categorical(
            "agg_column",
            template.agg_columns.len().max(1),
        ));
        roles.push(DimRole::AggColumn);

        for attr in &template.predicate_attrs {
            let column = relevant.column(attr)?;
            match column.dtype() {
                DataType::Categorical | DataType::Bool => {
                    let values = column.distinct_values(MAX_CATEGORY_VALUES);
                    if values.is_empty() {
                        continue;
                    }
                    params.push(Param::optional_categorical(
                        format!("{attr}__eq"),
                        values.len(),
                    ));
                    roles.push(DimRole::CategoryEq {
                        attr: attr.clone(),
                        values,
                    });
                }
                DataType::Int | DataType::Float | DataType::DateTime => {
                    let Some((low, high)) = column.numeric_range() else {
                        continue;
                    };
                    let is_datetime = column.dtype() == DataType::DateTime;
                    params.push(Param::optional_float(format!("{attr}__low"), low, high));
                    roles.push(DimRole::RangeLow {
                        attr: attr.clone(),
                        is_datetime,
                    });
                    params.push(Param::optional_float(format!("{attr}__high"), low, high));
                    roles.push(DimRole::RangeHigh {
                        attr: attr.clone(),
                        is_datetime,
                    });
                }
            }
        }

        if template.key_columns.len() > 1 {
            for key in &template.key_columns {
                params.push(Param::categorical(format!("{key}__groupby"), 2));
                roles.push(DimRole::KeyFlag { key: key.clone() });
            }
        }

        Ok(QueryCodec {
            template: template.clone(),
            space: SearchSpace::new(params),
            roles,
        })
    }

    /// The hyperparameter space representing the query pool.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The template this codec was built for.
    pub fn template(&self) -> &QueryTemplate {
        &self.template
    }

    /// Decode an optimizer configuration into an executable query.
    pub fn decode(&self, config: &Config) -> PredicateQuery {
        // lint: allow(panic): caller bug — configs come from this codec's own search space
        assert_eq!(
            config.len(),
            self.roles.len(),
            "config does not match codec"
        );
        let mut agg = *self.template.agg_funcs.first().unwrap_or(&AggFunc::Count);
        let mut agg_column = self
            .template
            .agg_columns
            .first()
            .cloned()
            .unwrap_or_default();
        let mut predicates: Vec<Predicate> = Vec::new();
        // attr -> (low, high) accumulated across the two range dimensions.
        let mut ranges: Vec<(String, Option<f64>, Option<f64>, bool)> = Vec::new();
        let mut selected_keys: Vec<String> = Vec::new();

        for (value, role) in config.iter().zip(&self.roles) {
            match role {
                DimRole::AggFunc => {
                    if let Some(i) = value.as_cat() {
                        if let Some(f) = self.template.agg_funcs.get(i) {
                            agg = *f;
                        }
                    }
                }
                DimRole::AggColumn => {
                    if let Some(i) = value.as_cat() {
                        if let Some(c) = self.template.agg_columns.get(i) {
                            agg_column = c.clone();
                        }
                    }
                }
                DimRole::CategoryEq { attr, values } => {
                    if let Some(i) = value.as_cat() {
                        if let Some(v) = values.get(i) {
                            predicates.push(Predicate::Eq {
                                column: attr.clone(),
                                value: v.clone(),
                            });
                        }
                    }
                }
                DimRole::RangeLow { attr, is_datetime } => {
                    let entry = ranges.iter_mut().find(|(a, _, _, _)| a == attr);
                    let low = value.as_f64();
                    match entry {
                        Some(e) => e.1 = low,
                        None => ranges.push((attr.clone(), low, None, *is_datetime)),
                    }
                }
                DimRole::RangeHigh { attr, is_datetime } => {
                    let high = value.as_f64();
                    match ranges.iter_mut().find(|(a, _, _, _)| a == attr) {
                        Some(e) => e.2 = high,
                        None => ranges.push((attr.clone(), None, high, *is_datetime)),
                    }
                }
                DimRole::KeyFlag { key } => {
                    if value.as_cat() == Some(1) {
                        selected_keys.push(key.clone());
                    }
                }
            }
        }

        for (attr, low, high, is_datetime) in ranges {
            if low.is_none() && high.is_none() {
                continue;
            }
            // Ensure low <= high when both are present.
            let (low, high) = match (low, high) {
                (Some(l), Some(h)) if l > h => (Some(h), Some(l)),
                other => other,
            };
            let to_value = |v: f64| {
                if is_datetime {
                    Value::DateTime(v.round() as i64)
                } else {
                    Value::Float(v)
                }
            };
            predicates.push(Predicate::Range {
                column: attr,
                low: low.map(to_value),
                high: high.map(to_value),
            });
        }

        // Group-by keys: the selected subset, defaulting to the full foreign key when the subset
        // is empty or the key is single-attribute.
        let group_keys = if selected_keys.is_empty() {
            self.template.key_columns.clone()
        } else {
            selected_keys
        };

        PredicateQuery {
            agg,
            agg_column,
            predicate: Predicate::and(predicates),
            group_keys,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_hpo::ParamValue;
    use feataug_tabular::Column;

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m1", "m2", "m2"]))
            .unwrap();
        t.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        t.add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
            .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400]))
            .unwrap();
        t
    }

    fn train() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m2"]))
            .unwrap();
        t.add_column("label", Column::from_i64s(&[0, 1])).unwrap();
        t
    }

    fn template() -> QueryTemplate {
        QueryTemplate::new(
            vec![AggFunc::Sum, AggFunc::Avg],
            vec!["pprice".into()],
            vec!["department".into(), "ts".into()],
            vec!["cname".into(), "mid".into()],
        )
    }

    #[test]
    fn codec_space_shape_matches_paper_vector() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        // agg + agg_col + department(1 cat) + ts(2 range) + 2 key flags = 7 dimensions.
        assert_eq!(codec.space().len(), 7);
    }

    #[test]
    fn decode_produces_valid_query_and_execution_works() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(1),       // AVG
            ParamValue::Cat(0),       // pprice
            ParamValue::Cat(0),       // department = 'E'
            ParamValue::Float(150.0), // ts >= 150
            ParamValue::Null,         // no upper bound
            ParamValue::Cat(1),       // group by cname
            ParamValue::Cat(0),       // not by mid
        ];
        let query = codec.decode(&config);
        assert_eq!(query.agg, AggFunc::Avg);
        assert_eq!(query.agg_column, "pprice");
        assert_eq!(query.group_keys, vec!["cname".to_string()]);
        let sql = query.to_sql("logs");
        assert!(sql.contains("department = 'E'"));
        assert!(sql.contains("ts >= 150"));

        let out = query.execute(&relevant()).unwrap();
        // Only rows 2,3 match (ts>=150 & dept=E), both cname=b -> single group.
        assert_eq!(out.num_rows(), 1);
        assert_eq!(
            out.value(0, &query.feature_name()).unwrap(),
            Value::Float(35.0)
        );
    }

    #[test]
    fn decode_swaps_inverted_bounds_and_defaults_keys() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(0),
            ParamValue::Cat(0),
            ParamValue::Null,
            ParamValue::Float(390.0), // low > high: must be swapped
            ParamValue::Float(110.0),
            ParamValue::Cat(0), // no key selected -> default to full key
            ParamValue::Cat(0),
        ];
        let query = codec.decode(&config);
        assert_eq!(
            query.group_keys,
            vec!["cname".to_string(), "mid".to_string()]
        );
        match &query.predicate {
            Predicate::Range { low, high, .. } => {
                assert!(
                    low.as_ref().unwrap().as_f64().unwrap()
                        <= high.as_ref().unwrap().as_f64().unwrap()
                );
            }
            other => panic!("expected a range predicate, got {other:?}"),
        }
        assert!(query.execute(&relevant()).is_ok());
    }

    #[test]
    fn trivial_predicate_query_matches_plain_groupby() {
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let config: Config = vec![
            ParamValue::Cat(0), // SUM
            ParamValue::Cat(0),
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Cat(1),
            ParamValue::Cat(1),
        ];
        let query = codec.decode(&config);
        assert!(query.predicate.is_trivial());
        let out = query.execute(&relevant()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn augment_attaches_feature_to_training_table() {
        let mut train = Table::new("users");
        train
            .add_column("cname", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        train
            .add_column("mid", Column::from_strs(&["m1", "m2", "m9"]))
            .unwrap();
        train
            .add_column("label", Column::from_i64s(&[0, 1, 0]))
            .unwrap();

        let query = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "pprice".into(),
            predicate: Predicate::eq("department", "E"),
            group_keys: vec!["cname".into(), "mid".into()],
        };
        let (augmented, feature) = query.augment(&train, &relevant()).unwrap();
        assert_eq!(augmented.num_rows(), 3);
        assert_eq!(augmented.value(0, &feature).unwrap(), Value::Float(10.0));
        assert_eq!(augmented.value(1, &feature).unwrap(), Value::Float(70.0));
        assert_eq!(augmented.value(2, &feature).unwrap(), Value::Null);
    }

    #[test]
    fn random_configs_always_decode_and_execute() {
        use rand::SeedableRng;
        let codec = QueryCodec::build(&template(), &relevant()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let config = codec.space().sample(&mut rng);
            let query = codec.decode(&config);
            assert!(!query.group_keys.is_empty());
            assert!(query.execute(&relevant()).is_ok());
        }
    }

    fn sample_plan() -> AugPlan {
        AugPlan::new(
            "logs",
            vec!["cname".into(), "mid".into()],
            vec![
                PlannedQuery {
                    query: PredicateQuery {
                        agg: AggFunc::Avg,
                        agg_column: "pprice".into(),
                        predicate: Predicate::and(vec![
                            Predicate::eq("department", "E"),
                            Predicate::ge("ts", 150.0),
                        ]),
                        group_keys: vec!["cname".into()],
                    },
                    loss: -0.73125,
                },
                PlannedQuery {
                    query: PredicateQuery {
                        agg: AggFunc::CountDistinct,
                        agg_column: "department".into(),
                        predicate: Predicate::True,
                        group_keys: vec!["cname".into(), "mid".into()],
                    },
                    loss: f64::NAN,
                },
            ],
        )
    }

    #[test]
    fn plan_text_round_trips_losslessly() {
        let plan = sample_plan();
        let text = plan.to_plan_text();
        let parsed = AugPlan::from_plan_text(&text).unwrap();
        assert_eq!(parsed, plan);
        // Idempotent: serializing the parse gives the same text.
        assert_eq!(parsed.to_plan_text(), text);
    }

    #[test]
    fn analyze_accepts_well_formed_plan() {
        assert_eq!(sample_plan().analyze(&train(), &relevant()), Ok(()));
    }

    #[test]
    fn analyze_rejects_missing_and_empty_keys() {
        let mut plan = sample_plan();
        plan.key_columns.clear();
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::NoKeyColumns)
        );

        let mut plan = sample_plan();
        plan.key_columns.push("ghost".into());
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::MissingKeyColumn {
                column: "ghost".into()
            })
        );
    }

    #[test]
    fn analyze_rejects_key_type_mismatch() {
        // `mid` is categorical in the relevant table; retype it in the
        // training table and every join key would silently never match.
        let mut train = Table::new("users");
        train
            .add_column("cname", Column::from_strs(&["a", "b"]))
            .unwrap();
        train.add_column("mid", Column::from_i64s(&[1, 2])).unwrap();
        assert_eq!(
            sample_plan().analyze(&train, &relevant()),
            Err(PlanAnalysisError::KeyTypeMismatch {
                column: "mid".into(),
                train: DataType::Int,
                relevant: DataType::Categorical,
            })
        );
        // A key column absent from the training table is not analyze's
        // problem (the training side may be a projection) — transform
        // reports it when the join actually runs.
        let mut projection = Table::new("users");
        projection
            .add_column("cname", Column::from_strs(&["a", "b"]))
            .unwrap();
        assert_eq!(sample_plan().analyze(&projection, &relevant()), Ok(()));
    }

    #[test]
    fn analyze_rejects_bad_group_keys() {
        let mut plan = sample_plan();
        plan.queries[0].query.group_keys.clear();
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::NoGroupKeys { query: 0 })
        );

        let mut plan = sample_plan();
        plan.queries[1].query.group_keys = vec!["department".into()];
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::UnknownGroupKey {
                query: 1,
                column: "department".into()
            })
        );
    }

    #[test]
    fn analyze_rejects_missing_columns() {
        let mut plan = sample_plan();
        plan.queries[0].query.agg_column = "ghost".into();
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::MissingAggColumn {
                query: 0,
                column: "ghost".into()
            })
        );

        let mut plan = sample_plan();
        plan.queries[0].query.predicate = Predicate::eq("ghost", "E");
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::MissingPredicateColumn {
                query: 0,
                column: "ghost".into()
            })
        );
    }

    #[test]
    fn analyze_rejects_arithmetic_agg_on_categorical_only() {
        // SUM over a categorical column has no numeric meaning…
        let mut plan = sample_plan();
        plan.queries[0].query.agg_column = "department".into();
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::IncompatibleAggColumn {
                query: 0,
                agg: AggFunc::Avg,
                column: "department".into(),
                dtype: DataType::Categorical,
            })
        );
        // …but frequency/order statistics over dictionary codes do (the
        // sample plan's second query is COUNT_DISTINCT(department)).
        plan.queries[0].query.agg = AggFunc::Mode;
        assert_eq!(plan.analyze(&train(), &relevant()), Ok(()));
    }

    #[test]
    fn analyze_rejects_duplicate_feature_names() {
        let mut plan = sample_plan();
        let dup = plan.queries[0].clone();
        plan.queries.push(dup);
        assert_eq!(
            plan.analyze(&train(), &relevant()),
            Err(PlanAnalysisError::DuplicateQuery {
                first: 0,
                second: 2,
                feature_name: plan.queries[0].query.feature_name(),
            })
        );
    }

    #[test]
    fn plan_round_trips_adversarial_fields() {
        // Names embedding the format's structural characters must survive.
        let plan = AugPlan::new(
            "ta\tble\\n",
            vec!["k\ney".into()],
            vec![PlannedQuery {
                query: PredicateQuery {
                    agg: AggFunc::Sum,
                    agg_column: "col\\umn".into(),
                    predicate: Predicate::and(vec![
                        Predicate::eq("dep\tt", "va\\l\nue"),
                        Predicate::Range {
                            column: "x".into(),
                            low: Some(Value::Float(-0.0)),
                            high: None,
                        },
                        Predicate::Range {
                            column: "t".into(),
                            low: Some(Value::DateTime(-5)),
                            high: Some(Value::DateTime(9)),
                        },
                        Predicate::Eq {
                            column: "flag".into(),
                            value: Value::Bool(true),
                        },
                        Predicate::Eq {
                            column: "i".into(),
                            value: Value::Int(-42),
                        },
                    ]),
                    group_keys: vec!["k\ney".into()],
                },
                loss: 0.1 + 0.2, // a value whose shortest repr has many digits
            }],
        );
        let parsed = AugPlan::from_plan_text(&plan.to_plan_text()).unwrap();
        assert_eq!(parsed, plan);
        // Float bits must survive exactly.
        assert_eq!(
            parsed.queries[0].loss.to_bits(),
            plan.queries[0].loss.to_bits()
        );
    }

    /// Regression: a NaN float constant inside a predicate is unequal to
    /// itself under derived float equality, which used to make such a plan
    /// unequal to its own (bit-lossless) text round trip. PlannedQuery's
    /// structural-Debug fallback keeps the round-trip invariant honest.
    #[test]
    fn plan_with_nan_predicate_constant_round_trips_equal() {
        let plan = AugPlan::new(
            "r",
            vec!["k".into()],
            vec![PlannedQuery {
                query: PredicateQuery {
                    agg: AggFunc::Sum,
                    agg_column: "x".into(),
                    predicate: Predicate::Range {
                        column: "x".into(),
                        low: Some(Value::Float(f64::NAN)),
                        high: Some(Value::Float(2.0)),
                    },
                    group_keys: vec!["k".into()],
                },
                loss: 0.25,
            }],
        );
        assert_eq!(plan, plan.clone(), "a NaN-constant plan must equal itself");
        let parsed = AugPlan::from_plan_text(&plan.to_plan_text()).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_plan_text(), plan.to_plan_text());
    }

    #[test]
    fn plan_canonicalizes_predicates_on_construction() {
        // A nested And collapses to the flat canonical conjunction, and a
        // lone True vanishes — so any plan equals its own round trip.
        let nested = Predicate::And(vec![
            Predicate::And(vec![Predicate::eq("a", 1i64), Predicate::True]),
            Predicate::eq("b", 2i64),
        ]);
        let plan = AugPlan::new(
            "r",
            vec!["k".into()],
            vec![PlannedQuery {
                query: PredicateQuery {
                    agg: AggFunc::Sum,
                    agg_column: "x".into(),
                    predicate: nested,
                    group_keys: vec!["k".into()],
                },
                loss: 0.0,
            }],
        );
        match &plan.queries[0].query.predicate {
            Predicate::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts.iter().all(|p| matches!(p, Predicate::Eq { .. })));
            }
            other => panic!("expected flat And, got {other:?}"),
        }
        assert_eq!(AugPlan::from_plan_text(&plan.to_plan_text()).unwrap(), plan);
    }

    #[test]
    fn plan_sql_and_names_follow_queries() {
        let plan = sample_plan();
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        let sql = plan.to_sql();
        assert!(sql[0].contains("FROM logs"));
        assert!(sql[0].contains("department = 'E'"));
        assert_eq!(
            plan.feature_names(),
            plan.queries
                .iter()
                .map(|p| p.query.feature_name())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_parse_rejects_malformed_text() {
        assert!(AugPlan::from_plan_text("").is_err());
        assert!(AugPlan::from_plan_text("WRONG HEADER\n").is_err());
        let plan = sample_plan();
        let text = plan.to_plan_text();
        // Truncation (dropping the final endquery) is detected.
        let truncated = text.trim_end().trim_end_matches("endquery");
        assert!(AugPlan::from_plan_text(truncated).is_err());
        // Unknown directives are rejected with their line number.
        let junk = format!("{text}wat\tnow\n");
        let e = AugPlan::from_plan_text(&junk).unwrap_err();
        assert!(e.message.contains("unknown directive"));
        assert!(e.line > 1);
        // Unknown aggregates are rejected.
        let bad_agg = text.replace("query\tAVG", "query\tFROBNICATE");
        assert!(AugPlan::from_plan_text(&bad_agg).is_err());
        // Missing groupby is rejected.
        let no_groupby: String = text
            .lines()
            .filter(|l| !l.starts_with("groupby"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(AugPlan::from_plan_text(&no_groupby).is_err());
    }

    /// Every parse failure must come back as a typed [`PlanParseError`] with
    /// a useful line number — never a panic. One assertion per error path of
    /// the format: truncation, unknown tags, bad escapes, duplicate and
    /// missing fields.
    #[test]
    fn plan_parse_error_paths_return_typed_errors() {
        let text = sample_plan().to_plan_text();
        let parse = AugPlan::from_plan_text;
        let assert_err = |input: &str, needle: &str, min_line: usize| match parse(input) {
            Ok(plan) => panic!("input must not parse (wanted `{needle}`): {plan:?}"),
            Err(e) => {
                assert!(
                    e.message.contains(needle),
                    "expected `{needle}` in `{}`",
                    e.message
                );
                assert!(
                    e.line >= min_line,
                    "error must carry a line number >= {min_line}, got {}",
                    e.line
                );
                assert!(e.to_string().contains(&format!("line {}", e.line)));
            }
        };

        // Truncated input: empty, header-only, and a query cut mid-way.
        assert_err("", "empty plan text", 0);
        assert_err("AUGPLAN 1\n", "missing its `relevant` line", 0);
        let cut = text.trim_end().trim_end_matches("endquery");
        assert_err(cut, "unterminated query", 2);
        let half_line = &text[..text.find("groupby").unwrap() + 5];
        assert_err(half_line, "unknown directive", 2);

        // Unknown directives / aggregates / value type tags.
        assert_err("AUGPLAN 3\n", "unsupported plan version 3", 1);
        assert_err(&format!("{text}frobnicate\tx\n"), "unknown directive", 2);
        assert_err(
            &text.replace("query\tAVG", "query\tFROBNICATE"),
            "unknown aggregate",
            2,
        );
        assert_err(&text.replace("s:E", "z:E"), "unknown value tag", 2);
        assert_err(&text.replace("\ts:E", "\tE"), "no type tag", 2);
        assert_err(&text.replace("f:150", "f:15x"), "bad float", 2);
        assert_err(&text.replace("-0.73125", "slow"), "bad loss", 2);

        // Bad escapes in a field.
        assert_err(&text.replace("s:E", "s:E\\x"), "bad escape sequence", 2);
        assert_err(&text.replace("s:E", "s:E\\"), "bad escape sequence", 2);

        // Duplicate fields.
        assert_err(
            &text.replacen("relevant\t", "relevant\tlogs\nrelevant\t", 1),
            "duplicate `relevant`",
            3,
        );
        assert_err(
            &text.replacen("keys\t", "keys\tk\nkeys\t", 1),
            "duplicate `keys`",
            4,
        );
        assert_err(
            &text.replacen("groupby\t", "groupby\tcname\ngroupby\t", 1),
            "duplicate `groupby`",
            5,
        );
        assert_err(
            &text.replacen("query\t", "query\tSUM\tpprice\t0\nquery\t", 1),
            "before previous `endquery`",
            4,
        );

        // Missing / malformed structural fields.
        let drop_line = |needle: &str| -> String {
            text.lines()
                .filter(|l| !l.starts_with(needle))
                .map(|l| format!("{l}\n"))
                .collect()
        };
        assert_err(&drop_line("relevant"), "missing its `relevant` line", 0);
        assert_err(&drop_line("keys"), "missing its `keys` line", 0);
        assert_err(&drop_line("groupby"), "missing its `groupby` line", 2);
        assert_err(
            &text.replace("keys\tcname\tmid", "keys"),
            "at least one column",
            3,
        );
        assert_err(
            &text.replacen("groupby\tcname\n", "groupby\n", 1),
            "at least one key",
            5,
        );
        assert_err(
            &format!("{text}endquery\n"),
            "`endquery` without a query",
            2,
        );
        assert_err(&format!("{text}eq\tc\ts:v\n"), "`eq` outside a query", 2);
        assert_err(
            &format!("{text}range\tc\t-\t-\n"),
            "`range` outside a query",
            2,
        );
        assert_err(
            &format!("{text}groupby\tcname\n"),
            "`groupby` outside a query",
            2,
        );

        // The untouched text still parses (the mutations above were the
        // only problems).
        assert!(parse(&text).is_ok());
    }

    /// The version header failure is a distinct typed kind — callers can
    /// tell "newer format" from "broken text" without string matching.
    #[test]
    fn plan_version_mismatch_is_a_typed_kind() {
        let e = AugPlan::from_plan_text("AUGPLAN 3\nrelevant\tlogs\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, PlanParseErrorKind::UnsupportedVersion { found: 3 });
        assert!(e.message.contains("unsupported plan version 3"));
        assert!(e.message.contains("AUGPLAN 1"));
        assert!(e.message.contains("AUGPLAN 2"));

        let e = AugPlan::from_plan_text("AUGPLAN 9999\n").unwrap_err();
        assert_eq!(
            e.kind,
            PlanParseErrorKind::UnsupportedVersion { found: 9999 }
        );

        // Everything that is not a well-formed `AUGPLAN <n>` header — and
        // every other parse failure — stays `Malformed`.
        for bad in ["AUGPLAN", "AUGPLAN x", "PLAN 1", "", "AUGPLAN 1\nnope\tx\n"] {
            let e = AugPlan::from_plan_text(bad).unwrap_err();
            assert_eq!(e.kind, PlanParseErrorKind::Malformed, "input {bad:?}");
        }
    }

    fn hop(table: &str, key: &str) -> PlanHop {
        PlanHop {
            table: table.into(),
            left_keys: vec![key.into()],
            right_keys: vec![key.into()],
        }
    }

    /// A plan with hops round-trips through the version-2 text format; a plan
    /// without hops keeps the version-1 header byte for byte, so artifacts
    /// from older builds stay stable.
    #[test]
    fn multi_hop_plan_round_trips_as_version_2() {
        let pathless = sample_plan();
        assert!(pathless.to_plan_text().starts_with("AUGPLAN 1\n"));

        let plan = sample_plan().with_hops(vec![
            hop("order_items", "order_id"),
            PlanHop {
                table: "products".into(),
                left_keys: vec!["product_id".into(), "region".into()],
                right_keys: vec!["pid".into(), "region".into()],
            },
        ]);
        let text = plan.to_plan_text();
        assert!(text.starts_with("AUGPLAN 2\n"));
        let parsed = AugPlan::from_plan_text(&text).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_plan_text(), text);
    }

    #[test]
    fn hop_lines_reject_malformed_and_downgraded_input() {
        let text = sample_plan()
            .with_hops(vec![hop("items", "oid")])
            .to_plan_text();
        assert!(AugPlan::from_plan_text(&text).is_ok());

        // A hop under a version-1 header is malformed, not silently ignored:
        // an old-style plan must not smuggle a path the reader would drop.
        let downgraded = text.replace("AUGPLAN 2", "AUGPLAN 1");
        let e = AugPlan::from_plan_text(&downgraded).unwrap_err();
        assert_eq!(e.kind, PlanParseErrorKind::Malformed);
        assert!(e.message.contains("requires an `AUGPLAN 2` header"));

        // Arity / field-count mismatches carry the hop line number.
        let bad_arity = text.replace("hop\titems\t1", "hop\titems\t2");
        let e = AugPlan::from_plan_text(&bad_arity).unwrap_err();
        assert!(e.message.contains("key field"));
        assert_eq!(e.line, 4);
        let zero_arity = text.replace("hop\titems\t1\toid\toid", "hop\titems\t0");
        assert!(AugPlan::from_plan_text(&zero_arity)
            .unwrap_err()
            .message
            .contains("bad hop key arity"));
        let no_fields = text.replace("hop\titems\t1\toid\toid", "hop\titems");
        assert!(AugPlan::from_plan_text(&no_fields)
            .unwrap_err()
            .message
            .contains("`hop` takes"));
    }

    /// Value-field parsing rejects malformed payloads of every tag.
    #[test]
    fn plan_value_fields_reject_malformed_payloads() {
        for (field, needle) in [
            ("i:", "bad int"),
            ("i:1.5", "bad int"),
            ("d:soon", "bad datetime"),
            ("f:fast", "bad float"),
            ("b:yes", "bad bool"),
            ("x:1", "unknown value tag"),
            ("notag", "no type tag"),
        ] {
            let e = super::parse_value(field, 7).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{field}: expected `{needle}` in `{}`",
                e.message
            );
            assert_eq!(e.line, 7);
        }
        assert_eq!(super::parse_value("n:", 1).unwrap(), Value::Null);
        assert_eq!(super::parse_value("f:-0", 1).unwrap(), Value::Float(-0.0));
    }

    #[test]
    fn feature_names_differ_for_different_queries() {
        let q1 = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "pprice".into(),
            predicate: Predicate::eq("department", "E"),
            group_keys: vec!["cname".into()],
        };
        let q2 = PredicateQuery {
            predicate: Predicate::eq("department", "H"),
            ..q1.clone()
        };
        assert_ne!(q1.feature_name(), q2.feature_name());
        assert_eq!(q1.feature_name(), q1.feature_name());
    }
}
