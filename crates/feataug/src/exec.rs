//! The query execution engine: compiled, cache-reusing, thread-parallel
//! candidate evaluation.
//!
//! Both search components evaluate thousands of candidate queries against the
//! *same* relevant table. The reference path
//! ([`PredicateQuery::execute`] / [`PredicateQuery::augment`]) pays, per
//! candidate, for: materialising the filtered table, rebuilding the group-by
//! hash index from scratch, rendering join keys, and re-hashing them during
//! the left join. [`QueryEngine`] compiles the `(train, relevant)` pair once
//! per search and amortises all of that.
//!
//! ## Architecture: shared compiled core + per-worker scratch
//!
//! The engine is split into two kinds of state:
//!
//! * an **immutable compiled core**, shared by every handle and every worker
//!   thread — each artifact is built once, memoized behind an [`RwLock`]ed map
//!   and handed out as an [`Arc`]:
//!   - **group indexes** — for every group-by key subset `k ⊆ K` encountered,
//!     a dense `group_id` per relevant row plus a precomputed train-row →
//!     group-id gather map (categorical dictionary codes are translated
//!     between the two tables once per distinct value, via
//!     [`feataug_tabular::join::KeyMapper`]), so attaching a feature is an
//!     O(n) gather with no join and no string keys;
//!   - **numeric views** — each aggregated / range-predicate column's
//!     `Vec<Option<f64>>` view is extracted once;
//!   - **sorted / inverted predicate indexes** — a range leaf costs two
//!     binary searches, an equality leaf O(matching rows) bit sets;
//!   - **sorted-group value indexes** — for every `(aggregation column,
//!     key subset)` pair an order-statistic candidate touches, each group's
//!     non-null values pre-sorted by `total_cmp`; `MEDIAN`/`MAD`/`MODE`/
//!     `ENTROPY`/`COUNT_DISTINCT` then read the runs in place (trivial
//!     predicate) or merge the selection out of them, instead of paying a
//!     copy + sort per candidate;
//! * cheap **per-worker scratch** ([`EvalScratch`]) — the selection bitmasks
//!   ([`feataug_tabular::selection`]) and aggregation buffers one evaluation
//!   mutates. Scratch lives in a pool; each worker of a batch checks one out
//!   for its whole run, so parallel evaluations never contend on it.
//!
//! [`QueryEngine`] is [`Clone`]: clones are cheap handles onto the same
//! shared core, feature cache and counters, which is how one engine per
//! `(train, relevant)` pair is shared across the Query Template Identifier,
//! the SQL Query Generator, the DFS/Random baselines and each multi-source
//! pipeline run ([`QueryEngine::stats`] shows the cross-component reuse).
//!
//! The engine is deliberately agnostic about where its relevant table came
//! from: [`crate::schema`] materialises multi-hop join paths into a single
//! virtual relevant view (composed gather maps, bit-identical to the eager
//! pre-join) and hands it to this engine **unchanged** — no multi-hop
//! special cases exist below this line.
//!
//! ## Copy-on-write epochs: live ingestion without blocking readers
//!
//! The compiled state above lives inside an [`EngineCore`] — one immutable
//! **epoch snapshot** of the relevant table plus every artifact compiled over
//! it — held by an [`EpochCell`]. Every read entry point (evaluate, batch,
//! transform, lookup, serve) **pins one core** with a single `Arc` load and
//! resolves entirely against it, so a request observes exactly one epoch and
//! never blocks behind ingestion.
//!
//! [`QueryEngine::append_relevant`] builds the *next* epoch off to the side:
//! the appended rows are concatenated onto the relevant table, group indexes
//! are extended in place (old groups keep their ids; new keys mint new ids),
//! sorted/inverted indexes merge just the appended entries, order-statistic
//! indexes keep their base runs behind a shared `Arc` and accumulate
//! per-group **delta runs** merged lazily at read time, and each memoized
//! per-group feature is delta-updated for the **touched groups only** —
//! trivial-predicate streaming/moment features resume their per-group
//! [`StreamDelta`]/[`MomentDelta`] fold state, everything else rescans just
//! the touched groups' rows through [`apply_kernel`]. Untouched artifacts are
//! shared with the prior epoch by `Arc`, so an append's aggregation work is
//! O(touched), not O(table). The finished core is published with one atomic
//! swap; a panic mid-build (chaos-tested via the `exec.ingest.*` failpoints)
//! leaves the prior epoch serving untouched, by construction. Results after
//! any append sequence are **bit-identical to a full refit on the
//! concatenated table** (property-tested).
//!
//! ## Batch evaluation
//!
//! [`QueryEngine::evaluate_batch`] / [`QueryEngine::feature_batch`] fan a
//! candidate pool across a small [`std::thread::scope`]-based worker pool
//! (no external dependencies — the build is offline). Work is distributed by
//! an atomic cursor; every query's result lands in its input slot, and the
//! values are **bit-identical at any thread count** because each candidate's
//! evaluation is independent and visits rows in the same ascending order as
//! the serial path. The default worker count comes from
//! [`default_workers`] (`FEATAUG_THREADS` overrides it; CI runs the suite at
//! both 1 thread and the default).
//!
//! ## Transform path (offline → online)
//!
//! Search evaluates candidates against the *training* table, but a fitted
//! plan's value is applying its queries to **unseen** rows. The transform
//! path splits an evaluation into its two halves: the per-group aggregation
//! runs once per query and is memoized group-aligned in the shared core,
//! and [`QueryEngine::transform`] then gathers those per-group features
//! through a fresh [`KeyMapper`]-driven key mapping for whatever table is
//! being served — so transforming N tables pays the aggregation once plus N
//! O(rows) gathers. [`QueryEngine::lookup`] is the online half: a single-key
//! point read out of the same cached per-group features (two hash probes
//! after the first call). Repeat transforms and lookups move no engine
//! counter, which is how tests assert the reuse.
//!
//! ## Evaluation-level feature cache
//!
//! TPE resamples near-duplicate configurations, so the engine keeps a small
//! LRU of finished feature vectors keyed by the query's structure — its
//! `(aggregate, aggregated column, predicate, key subset)`. A repeat
//! candidate skips the whole evaluation and returns the cached (identical)
//! vector; hits are visible as [`EngineStats::feature_cache_hits`]. The
//! default capacity is sized from the training table's row count so the
//! cache stays within a fixed byte budget.
//!
//! ## Aggregation kernels
//!
//! Grouped aggregation is driven by the kernel families of
//! [`feataug_tabular::kernels`]: the five cheap functions stream in one pass,
//! the variance family and `KURTOSIS` stream in two passes (sum, then centred
//! power sums — no per-group value buffers), and the order statistics run
//! over the memoized sorted-group value index. The reference
//! [`AggFunc::apply`] survives as the property-test oracle only; the one
//! evaluation path still materialising per-group buckets is a filtered
//! categorical aggregation column, whose re-interned dictionary codes are
//! query-local (served by the dictionary-code frequency kernel plus a
//! per-bucket sort for `MEDIAN`/`MAD`).
//!
//! The engine's output is **bit-for-bit identical** to the reference path's
//! `feature_vector(&query.augment(train, relevant)?, &name)`: accumulation
//! visits values in the same ascending row order (or the ascending value
//! order the reference's sort produces), presence/NULL semantics mirror
//! group-by + left-join exactly — including the canonical ±0.0/NaN rules of
//! [`feataug_tabular::aggregate`] — and the equivalence is enforced by
//! property tests over randomized query pools at several thread counts
//! (`tests/proptests.rs`).

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use feataug_tabular::aggregate::canonical_nan;
use feataug_tabular::groupby::{key_atom, KeyAtom};
use feataug_tabular::join::KeyMapper;
use feataug_tabular::kernels::{
    accumulate_m2, accumulate_m4, apply_kernel, count_distinct_sorted, entropy_sorted, mad_sorted,
    median_sorted, mode_sorted, moment_finalize, CodeFreqKernel, KernelFamily, MomentDelta,
    StreamDelta,
};
use feataug_tabular::selection::{fill_eq, fill_range_view, SelectionMask};
use feataug_tabular::{AggFunc, CancelToken, Column, Predicate, Table, Value};

use crate::query::PredicateQuery;

/// Hard cap on the worker count [`default_workers`] infers from the machine.
const MAX_DEFAULT_WORKERS: usize = 8;

/// Minimum candidate-pool size per batch worker. Spawning a thread costs more
/// than evaluating a handful of candidates, so the batch entry points size
/// their worker count by pool cost — one worker per `MIN_POOL_PER_WORKER`
/// candidates, capped by the machine's parallelism — instead of always fanning
/// a tiny pool across the flat cap of [`MAX_DEFAULT_WORKERS`].
const MIN_POOL_PER_WORKER: usize = 8;

/// Hard cap on the feature LRU's entry count, and the rough memory budget the
/// default capacity is derived from (each entry is one train-length
/// `Vec<Option<f64>>`, so a flat entry cap would balloon on large tables).
const MAX_FEATURE_CACHE_ENTRIES: usize = 512;
const FEATURE_CACHE_BYTES: usize = 64 << 20;

/// Default feature-LRU capacity for a training table of `train_rows` rows:
/// as many entries as fit the byte budget, clamped to `16..=512`.
fn default_cache_capacity(train_rows: usize) -> usize {
    let bytes_per_entry = train_rows.max(1) * std::mem::size_of::<Option<f64>>();
    (FEATURE_CACHE_BYTES / bytes_per_entry).clamp(16, MAX_FEATURE_CACHE_ENTRIES)
}

/// Parse a `FEATAUG_THREADS`-style override: a positive integer wins, anything
/// else (unset, non-numeric, zero) falls through to auto-detection.
fn env_workers(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n >= 1)
}

/// The machine-derived worker count: available parallelism capped at
/// [`MAX_DEFAULT_WORKERS`].
fn auto_workers() -> usize {
    hardware_parallelism().min(MAX_DEFAULT_WORKERS)
}

/// The machine's available parallelism, probed once and cached (the probe can
/// involve a syscall, and [`fan_out`] consults it on every batch).
fn hardware_parallelism() -> usize {
    static HARDWARE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HARDWARE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker count [`fan_out`] actually runs with: `requested` clamped to
/// `1..=items_len`, collapsed to one — the inline, thread-free serial path —
/// when the machine has a single hardware thread. On a 1-CPU host scoped
/// workers cannot overlap, so spawning them only adds scheduling overhead
/// (the `parallel_transform_speedup < 1` regression); the serial path is
/// bit-identical, so the collapse is free.
fn effective_fan_out_workers(requested: usize, items_len: usize, hardware: usize) -> usize {
    if hardware <= 1 {
        return 1;
    }
    requested.max(1).min(items_len.max(1))
}

/// Groups finalized between [`CancelToken`] polls inside the aggregation
/// loops. Small enough that a deadline preempts a slow kernel mid-request,
/// large enough that the relaxed-load poll is noise per group.
pub(crate) const CANCEL_GROUP_STRIDE: usize = 64;

/// Poll `cancel` at a kernel/gather checkpoint. A request without a token
/// (every search-time evaluation, every deadline-less lookup) returns
/// immediately — the `kernel.cancel` failpoint is only evaluated when a
/// token is actually present, so arming it never perturbs plain traffic.
#[inline]
pub(crate) fn cancel_checkpoint(
    cancel: Option<&CancelToken>,
) -> Result<(), feataug_tabular::Cancelled> {
    let Some(token) = cancel else { return Ok(()) };
    crate::fail_point!("kernel.cancel");
    token.check()
}

/// The worker count batch evaluation uses when none is given explicitly: the
/// `FEATAUG_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism capped at 8.
pub fn default_workers() -> usize {
    if let Some(n) = env_workers(std::env::var("FEATAUG_THREADS").ok().as_deref()) {
        return n;
    }
    auto_workers()
}

/// Pure worker-sizing rule behind [`workers_for_pool`]: the machine-derived
/// worker count, further capped so every worker has at least
/// [`MIN_POOL_PER_WORKER`] candidates to chew on (never below one worker).
fn pool_workers(auto: usize, pool_len: usize) -> usize {
    auto.min(pool_len.div_ceil(MIN_POOL_PER_WORKER)).max(1)
}

/// The worker count a batch evaluation of `pool_len` candidates uses: a
/// positive `FEATAUG_THREADS` stays authoritative (exactly like
/// [`default_workers`]); otherwise the machine-derived count is capped by the
/// pool's cost — `min(default_workers(), ceil(pool_len / 8))` — so a
/// five-candidate pool no longer pays eight thread spawns for five items.
pub fn workers_for_pool(pool_len: usize) -> usize {
    if let Some(n) = env_workers(std::env::var("FEATAUG_THREADS").ok().as_deref()) {
        return n;
    }
    pool_workers(auto_workers(), pool_len)
}

/// How an engine (and everything built on it) holds a table: borrowed from
/// the caller — the zero-copy, search-time shape — or under shared `Arc`
/// ownership, which makes the holder `'static` and free to cross threads or
/// outlive the fitting process entirely (the serving shape).
#[derive(Clone)]
pub enum TableHandle<'a> {
    /// Borrowed for the caller's lifetime.
    Borrowed(&'a Table),
    /// Shared ownership; the handle is `'static`.
    Shared(Arc<Table>),
}

impl std::ops::Deref for TableHandle<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        match self {
            TableHandle::Borrowed(t) => t,
            TableHandle::Shared(t) => t,
        }
    }
}

impl<'a> From<&'a Table> for TableHandle<'a> {
    fn from(table: &'a Table) -> TableHandle<'a> {
        TableHandle::Borrowed(table)
    }
}

impl From<Arc<Table>> for TableHandle<'static> {
    fn from(table: Arc<Table>) -> TableHandle<'static> {
        TableHandle::Shared(table)
    }
}

impl TableHandle<'_> {
    /// Upgrade to shared ownership. A borrowed table is cloned once — the
    /// one-time price of decoupling from the caller's lifetime — while a
    /// shared handle is a refcount bump. The clone carries identical
    /// dictionaries and row order, so artifacts compiled against the
    /// borrowed table stay valid against the upgraded one.
    pub fn into_shared(self) -> TableHandle<'static> {
        match self {
            TableHandle::Borrowed(t) => TableHandle::Shared(Arc::new(t.clone())),
            TableHandle::Shared(t) => TableHandle::Shared(t),
        }
    }
}

/// The typed error of every fallible engine / serving entry point.
///
/// Tabular-layer failures (missing column, key-arity mismatch, malformed
/// query) pass through unchanged; [`EngineError::WorkerPanic`] is new with
/// the robustness layer — a panic inside one worker's evaluation is caught at
/// the fan-out boundary, converted into this variant, and fails **only the
/// affected request** while the rest of the batch completes normally.
#[derive(Debug)]
pub enum EngineError {
    /// A tabular-layer failure, passed through verbatim.
    Tabular(feataug_tabular::TabularError),
    /// A worker panicked mid-request. `context` names the fan-out site (for
    /// operators correlating logs), `message` carries the panic payload.
    WorkerPanic {
        /// The fan-out site the panic escaped from.
        context: &'static str,
        /// The panic payload, rendered.
        message: String,
    },
    /// The request's [`CancelToken`](feataug_tabular::CancelToken) tripped —
    /// a deadline fired or the caller cancelled — and the engine abandoned
    /// the work mid-kernel. Distinct from a failure: the serving tier maps
    /// it onto its graceful-degradation path (all-NULL features).
    Cancelled,
}

/// Result alias of the engine / serving entry points.
pub type EngineResult<T> = Result<T, EngineError>;

impl From<feataug_tabular::TabularError> for EngineError {
    fn from(e: feataug_tabular::TabularError) -> EngineError {
        EngineError::Tabular(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The inner message verbatim: callers match on the tabular
            // error's own wording.
            EngineError::Tabular(e) => write!(f, "{e}"),
            EngineError::WorkerPanic { context, message } => {
                write!(f, "worker panicked in {context}: {message}")
            }
            EngineError::Cancelled => {
                write!(f, "request cancelled by deadline or explicit cancellation")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Tabular(e) => Some(e),
            EngineError::WorkerPanic { .. } | EngineError::Cancelled => None,
        }
    }
}

impl From<feataug_tabular::Cancelled> for EngineError {
    fn from(_: feataug_tabular::Cancelled) -> EngineError {
        EngineError::Cancelled
    }
}

/// Render a caught panic payload into a human-readable message (`panic!`
/// payloads are `&str` or `String` in practice).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Poison-tolerant lock acquisition. A panic while a thread holds one of the
/// engine's locks marks it poisoned, but every artifact behind these locks
/// stays sound across an unwind: the memo maps only ever gain fully-built
/// immutable `Arc`s (a panicked build never inserted), and the scratch pool
/// only holds scratch whose invariants were restored before return (a
/// panicked worker's scratch is dropped, not returned). So the right response
/// to poison is to recover the guard and keep serving — one bad candidate
/// must not brick a shared engine.
pub(crate) fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// See [`read_recover`].
pub(crate) fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// See [`read_recover`].
pub(crate) fn lock_recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The one scoped-worker fan-out loop behind every batch entry point
/// (candidate evaluation, parallel transform, batch lookups). Work is handed
/// out by an atomic cursor — dynamic load balance, since item costs are
/// uneven — each worker builds one `state` for its whole run (a pooled
/// scratch, a reusable buffer) and tears it down through `done`, and every
/// result is scattered back to its input slot, so the output is positionally
/// deterministic regardless of scheduling. `workers` is clamped to
/// `1..=items.len()`; one worker runs the loop inline with no threads.
///
/// **Panic containment.** Each item's `work` call runs under
/// [`catch_unwind`]: a panic fails only that item — its slot becomes
/// [`EngineError::WorkerPanic`] naming `context` — and the worker keeps
/// draining the cursor with a *fresh* `state` (the panicked one may have
/// broken invariants mid-mutation, so it is dropped and never handed to
/// `done`). Should a worker thread die anyway (a panic in `state`/`done`
/// itself), its claimed-but-unreported items degrade to the same typed error
/// instead of crashing the process.
/// One worker's scatter-back: `(input slot, result)` pairs, or the panic
/// message if the worker thread itself died.
type WorkerPart<R> = Result<Vec<(usize, EngineResult<R>)>, String>;

pub(crate) fn fan_out<T, S, R>(
    items: &[T],
    workers: usize,
    context: &'static str,
    state: impl Fn() -> S + Sync,
    done: impl Fn(S) + Sync,
    work: impl Fn(&mut S, &T) -> EngineResult<R> + Sync,
) -> Vec<EngineResult<R>>
where
    T: Sync,
    R: Send,
{
    let workers = effective_fan_out_workers(workers, items.len(), hardware_parallelism());
    let guarded = |s: &mut S, item: &T| -> (EngineResult<R>, bool) {
        match catch_unwind(AssertUnwindSafe(|| work(s, item))) {
            Ok(result) => (result, false),
            Err(payload) => (
                Err(EngineError::WorkerPanic {
                    context,
                    message: panic_message(payload),
                }),
                true,
            ),
        }
    };
    if workers == 1 {
        let mut s = state();
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let (result, panicked) = guarded(&mut s, item);
            if panicked {
                // Drop the possibly-corrupted state, rebuild fresh.
                s = state();
            }
            out.push(result);
        }
        done(s);
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let parts: Vec<WorkerPart<R>> = std::thread::scope(|scope| {
        let (cursor, state, done, guarded) = (&cursor, &state, &done, &guarded);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut s = state();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let (result, panicked) = guarded(&mut s, item);
                        if panicked {
                            s = state();
                        }
                        local.push((i, result));
                    }
                    done(s);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(panic_message))
            .collect()
    });
    let mut out: Vec<Option<EngineResult<R>>> = (0..items.len()).map(|_| None).collect();
    let mut lost: Option<String> = None;
    for part in parts {
        match part {
            Ok(results) => {
                for (i, result) in results {
                    out[i] = Some(result);
                }
            }
            Err(message) => lost = Some(message),
        }
    }
    out.into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(EngineError::WorkerPanic {
                    context,
                    message: match &lost {
                        Some(m) => format!("worker thread died before reaching this item: {m}"),
                        None => "worker thread died before reaching this item".to_string(),
                    },
                })
            })
        })
        .collect()
}

/// A compiled grouping of the relevant table by one group-key subset, plus the
/// gather map aligning train rows with groups. Immutable once built.
#[derive(Debug)]
pub(crate) struct GroupIndex {
    /// Dense group id per relevant row.
    group_of_row: Vec<u32>,
    /// Number of distinct groups (including NULL-key groups).
    n_groups: usize,
    /// For each train row, the group its key maps to (`None`: NULL key,
    /// value absent from the relevant table, or incompatible key types —
    /// exactly the rows the reference left join leaves NULL).
    train_group: Vec<Option<u32>>,
    /// Typed key → group id, in the relevant table's key space. Retained from
    /// index construction so the transform/serve paths can gather per-group
    /// features onto *arbitrary* tables (and answer point lookups) without
    /// regrouping; costs one entry per distinct group.
    key_to_group: HashMap<Vec<KeyAtom>, u32>,
}

impl GroupIndex {
    /// Probe the retained key map with a typed key already translated into
    /// the relevant table's key space (the serving hot path: one hash probe,
    /// no allocation — `Vec<KeyAtom>` borrows as `[KeyAtom]`).
    pub(crate) fn group_of_key(&self, key: &[KeyAtom]) -> Option<u32> {
        self.key_to_group.get(key).copied()
    }
}

/// Sorted row index over one numeric column: row ids ordered by value, NULLs
/// and NaNs excluded (neither ever satisfies a bounded range predicate).
/// Turns a range leaf into two binary searches plus O(matches) bit sets.
struct SortedIndex {
    rows: Vec<u32>,
    vals: Vec<f64>,
}

/// Inverted index over one categorical column: the row ids holding each
/// dictionary code. Turns an equality leaf into O(matches) bit sets. Each
/// code's row list sits behind its own `Arc` so an epoch append clones the
/// outer vector (refcount bumps) and rewrites only the codes the appended
/// rows actually carry.
struct CatIndex {
    rows_by_code: Vec<Arc<Vec<u32>>>,
}

/// Memo key of an [`OrderIndex`]: the aggregation column and the group-key
/// subset it was compiled for.
type OrderKey = (String, Vec<String>);

/// Sorted-group value index over one `(aggregation column, group-key subset)`
/// pair: every group's non-null values pre-sorted by [`f64::total_cmp`]
/// (exactly the order the reference's per-candidate `sort_by(total_cmp)`
/// produces), with the owning row id kept alongside each value. Compiled once
/// and memoized in the engine's shared core; an order-statistic candidate then
/// reads its groups' sorted runs directly (trivial predicate) or merges the
/// selected rows out of them (one mask probe per value), instead of paying a
/// copy + sort per candidate.
struct OrderIndex {
    /// The runs as of the epoch the index was first compiled in, in CSR
    /// form. Shared by `Arc` across epochs — appends never rewrite it.
    base: Arc<OrderBase>,
    /// Per-group delta run of appended values (sorted within itself by
    /// `total_cmp`; every delta row id is greater than every base row id).
    /// Appends merge each touched group's new batch into its delta run;
    /// readers merge base + delta lazily in [`OrderIndex::run`]. Untouched
    /// groups' runs are shared `Arc`s across epochs.
    delta: HashMap<u32, Arc<OrderRun>>,
}

/// The CSR bulk of an [`OrderIndex`].
struct OrderBase {
    /// Per-group run bounds into `rows` / `vals` (`n_groups + 1` entries).
    starts: Vec<u32>,
    /// Row id of each non-null value, grouped by group id, value-sorted
    /// within each group.
    rows: Vec<u32>,
    /// The values, parallel to `rows`.
    vals: Vec<f64>,
}

/// One group's sorted run of appended `(row, value)` entries.
#[derive(Default)]
struct OrderRun {
    rows: Vec<u32>,
    vals: Vec<f64>,
}

impl OrderIndex {
    /// The base-epoch `(rows, vals)` run of group `g` (empty for groups
    /// minted after the index was compiled).
    fn base_run(&self, g: usize) -> (&[u32], &[f64]) {
        if g + 1 >= self.base.starts.len() {
            return (&[], &[]);
        }
        let start = self.base.starts[g] as usize;
        let end = self.base.starts[g + 1] as usize;
        (&self.base.rows[start..end], &self.base.vals[start..end])
    }

    /// Total run length of group `g` (base + delta) — the exact per-group
    /// accounting the merge-vs-scatter cost model reads.
    fn run_len(&self, g: usize) -> usize {
        let (rows, _) = self.base_run(g);
        rows.len() + self.delta.get(&(g as u32)).map_or(0, |d| d.rows.len())
    }

    /// The `(rows, vals)` run of group `g`. Groups without a delta run read
    /// the base CSR in place (zero copy — the common case); touched groups
    /// 2-way merge base + delta into the caller's buffers, preferring the
    /// base side on `total_cmp` ties. Base rows all precede delta rows, and
    /// `total_cmp` equality means bit-identical values, so the merged run
    /// reproduces a from-scratch stable per-group sort exactly.
    fn run<'x>(
        &'x self,
        g: usize,
        rows_buf: &'x mut Vec<u32>,
        vals_buf: &'x mut Vec<f64>,
    ) -> (&'x [u32], &'x [f64]) {
        let (brows, bvals) = self.base_run(g);
        let Some(delta) = self.delta.get(&(g as u32)) else {
            return (brows, bvals);
        };
        rows_buf.clear();
        vals_buf.clear();
        rows_buf.reserve(brows.len() + delta.rows.len());
        vals_buf.reserve(bvals.len() + delta.vals.len());
        let (mut i, mut j) = (0, 0);
        while i < brows.len() && j < delta.rows.len() {
            if bvals[i].total_cmp(&delta.vals[j]) != std::cmp::Ordering::Greater {
                rows_buf.push(brows[i]);
                vals_buf.push(bvals[i]);
                i += 1;
            } else {
                rows_buf.push(delta.rows[j]);
                vals_buf.push(delta.vals[j]);
                j += 1;
            }
        }
        rows_buf.extend_from_slice(&brows[i..]);
        vals_buf.extend_from_slice(&bvals[i..]);
        rows_buf.extend_from_slice(&delta.rows[j..]);
        vals_buf.extend_from_slice(&delta.vals[j..]);
        (rows_buf.as_slice(), vals_buf.as_slice())
    }
}

fn build_order_index(gi: &GroupIndex, view: &[Option<f64>]) -> OrderIndex {
    let n_groups = gi.n_groups;
    let mut starts = vec![0u32; n_groups + 1];
    for (row, v) in view.iter().enumerate() {
        if v.is_some() {
            starts[gi.group_of_row[row] as usize + 1] += 1;
        }
    }
    for g in 0..n_groups {
        starts[g + 1] += starts[g];
    }
    let total = starts[n_groups] as usize;
    let mut cursors: Vec<u32> = starts[..n_groups].to_vec();
    let mut entries: Vec<(f64, u32)> = vec![(0.0, 0); total];
    for (row, v) in view.iter().enumerate() {
        if let Some(x) = v {
            let g = gi.group_of_row[row] as usize;
            entries[cursors[g] as usize] = (*x, row as u32);
            cursors[g] += 1;
        }
    }
    for g in 0..n_groups {
        // Stable sort: bit-equal values keep ascending row order, so the
        // selection merge probes the mask in a deterministic order.
        entries[starts[g] as usize..starts[g + 1] as usize].sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    OrderIndex {
        base: Arc::new(OrderBase {
            starts,
            rows: entries.iter().map(|(_, r)| *r).collect(),
            vals: entries.iter().map(|(v, _)| *v).collect(),
        }),
        delta: HashMap::new(),
    }
}

/// The mutable buffers one evaluation needs. Each worker of a batch (and each
/// serial `evaluate` call) checks one out of the engine's pool, so the shared
/// core stays read-only during evaluation and workers never contend.
#[derive(Default)]
struct EvalScratch {
    /// Predicate result mask, reused across evaluations.
    mask: SelectionMask,
    /// Scratch mask for conjunction terms.
    scratch: SelectionMask,
    /// Selected-row count per group (presence: a group none of whose rows
    /// survive the predicate yields NULL, like the reference join). Kept
    /// all-zero between evaluations; only the groups in `touched` are dirty
    /// during one, and they are re-zeroed on the way out, so per-query cost
    /// scales with the groups actually hit rather than the group universe.
    sel_count: Vec<u32>,
    /// Groups hit by the current evaluation, in first-touch order.
    touched: Vec<u32>,
    /// Non-null aggregated-value count per touched group.
    nonnull: Vec<u32>,
    /// Streaming accumulator per touched group (sum / min / max, then the
    /// group mean between the two moment passes).
    acc: Vec<f64>,
    /// Centred second-power sum per touched group (moment kernels, pass 2).
    m2: Vec<f64>,
    /// Centred fourth-power sum per touched group (kurtosis, pass 2).
    m4: Vec<f64>,
    /// Bucket cursors / offsets for the order-preserving scatter path.
    cursors: Vec<u32>,
    /// Flat per-group value buckets for the scatter path.
    scatter: Vec<f64>,
    /// One group's selected values merged out of its pre-sorted run.
    sorted_buf: Vec<f64>,
    /// Row-id half of one group's lazily-merged base + delta run.
    merge_rows: Vec<u32>,
    /// Value half of one group's lazily-merged base + delta run.
    merge_vals: Vec<f64>,
    /// Deviation scratch for the MAD kernel.
    dev_buf: Vec<f64>,
    /// Dense code-frequency kernel for dictionary-coded aggregation columns.
    freq: CodeFreqKernel,
    /// Per-query remapped view for categorical aggregation columns under a
    /// filtering predicate (see [`remapped_cat_view`]).
    cat_view: Vec<Option<f64>>,
    /// Old-code → re-interned-code scratch for the same path.
    cat_remap: Vec<Option<u32>>,
    /// Final aggregate per touched group.
    group_out: Vec<Option<f64>>,
}

/// A finished feature vector, shared between the cache and callers.
type SharedFeature = Arc<Vec<Option<f64>>>;
/// A memoized per-group feature paired with its group index (transform path).
type SharedGroupFeature = (Arc<GroupIndex>, Arc<Vec<Option<f64>>>);

/// A small LRU over finished feature vectors, keyed by the query's `Debug`
/// rendering — unlike the displayed SQL (whose string literals are not quote
/// escaped), the `Debug` form is structurally unambiguous, so two distinct
/// queries can never share a cache slot. Recency is a monotonic tick;
/// eviction removes the stalest entry.
#[derive(Clone)]
struct FeatureCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (SharedFeature, u64)>,
}

impl FeatureCache {
    fn new(capacity: usize) -> FeatureCache {
        FeatureCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn key(query: &PredicateQuery) -> String {
        format!("{query:?}")
    }

    /// Change the capacity, trimming stalest-first if the cache is over the
    /// new bound (so lowering the capacity actually releases memory).
    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_stalest();
        }
    }

    fn evict_stalest(&mut self) {
        if let Some(stalest) = self
            .map
            .iter()
            .min_by_key(|(_, (_, t))| *t)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&stalest);
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<Vec<Option<f64>>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.1 = tick;
            entry.0.clone()
        })
    }

    fn insert(&mut self, key: String, values: Arc<Vec<Option<f64>>>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.evict_stalest();
        }
        self.tick += 1;
        self.map.insert(key, (values, self.tick));
    }
}

/// A memoized per-group feature (one slot per group of the query's key
/// subset) plus everything `append_relevant` needs to delta-update it: the
/// query itself and — for trivial-predicate streaming families — resumable
/// per-group kernel state.
struct GroupFeature {
    /// The query this feature materialises, retained so the next epoch can
    /// re-derive selection and touched-group membership.
    query: PredicateQuery,
    /// One aggregate per group; `None` = group absent under the predicate or
    /// NULL-valued.
    values: Arc<Vec<Option<f64>>>,
    /// Resumable per-group kernel state.
    state: FeatureState,
}

/// Resumable per-group kernel state of a [`GroupFeature`]. The maps are
/// lazily populated: a group's state is built by one rescan of its rows the
/// first time an append touches it, and every later append just resumes the
/// fold over that group's appended rows.
#[derive(Clone)]
enum FeatureState {
    /// Features whose deltas always rescan the touched groups (non-trivial
    /// predicates, order statistics, categorical aggregation columns).
    None,
    /// Trivial-predicate Stream family: the resumed one-pass fold per group.
    Stream(HashMap<u32, StreamDelta>),
    /// Trivial-predicate Moment family: the resumed pass-1 (count, sum) per
    /// group; pass 2 rescans the touched group with the updated mean.
    Moment(HashMap<u32, MomentDelta>),
}

/// An atomically-swappable versioned slot: the published value plus a
/// monotonically increasing generation counter. Readers [`EpochCell::load`]
/// the current `Arc` (cheap, allocation-free) and keep serving from it even
/// while a writer [`EpochCell::swap`]s in a successor — an `Arc` pin, not a
/// lock hold. The generation lets readers detect staleness with one atomic
/// load. Generalized from the serving tier's whole-model hot-swap cell (PR 6)
/// down to the engine's internal epoch snapshots.
pub struct EpochCell<T> {
    /// The current value. A `Mutex` (not `RwLock`): the critical section is a
    /// refcount bump, and a mutex is smaller and has no writer-starvation
    /// edge.
    current: Mutex<Arc<T>>,
    /// Bumped on every install, *while the slot lock is held*, so a reader
    /// never observes a generation newer than the value it loaded.
    generation: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell holding `value` at generation 0.
    pub fn new(value: Arc<T>) -> EpochCell<T> {
        EpochCell {
            current: Mutex::new(value),
            generation: AtomicU64::new(0),
        }
    }

    /// The current value (an `Arc` clone — the caller's pin on that epoch).
    // lint: hot-path
    pub fn load(&self) -> Arc<T> {
        // lint: allow(alloc): Arc refcount bump, no heap allocation
        lock_recover(&self.current).clone()
    }

    /// Atomically publish `next`, returning the new generation.
    pub fn swap(&self, next: Arc<T>) -> u64 {
        let mut slot = lock_recover(&self.current);
        *slot = next;
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The generation of the currently-published value.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

/// Summary of one applied append, returned by
/// [`QueryEngine::append_relevant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The new epoch number (counts appends since the engine was built).
    pub epoch: u64,
    /// Rows in the appended batch.
    pub appended_rows: usize,
    /// Total relevant-table rows as of this epoch.
    pub total_rows: usize,
    /// Existing groups the batch touched, summed over the compiled key
    /// subsets.
    pub touched_groups: usize,
    /// Groups minted by the batch, summed over the compiled key subsets.
    pub new_groups: usize,
}

/// One copy-on-write epoch of the engine: the relevant table as of this
/// epoch plus every lazily-compiled artifact over it (locks guard only the
/// memo maps — the artifacts themselves are immutable `Arc`s once built).
/// Readers pin a core for the duration of one request, so each request
/// observes exactly one epoch; `append_relevant` builds the successor off to
/// the side — sharing every untouched artifact with this one — and publishes
/// it through the engine's [`EpochCell`].
pub(crate) struct EngineCore<'a> {
    /// How many appends precede this snapshot (0 = the fitted table).
    epoch: u64,
    /// The relevant table as of this epoch.
    relevant: TableHandle<'a>,
    /// `Vec<Option<f64>>` view per relevant column (aggregation targets and
    /// range-predicate operands).
    views: RwLock<HashMap<String, Arc<Vec<Option<f64>>>>>,
    /// Group index per group-key subset, keyed by the exact key list.
    groups: RwLock<HashMap<Vec<String>, Arc<GroupIndex>>>,
    /// Sorted row index per range-predicate column.
    sorted: RwLock<HashMap<String, Arc<SortedIndex>>>,
    /// Inverted row index per categorical equality-predicate column.
    cats: RwLock<HashMap<String, Arc<CatIndex>>>,
    /// Sorted-group value index per `(aggregation column, group-key subset)`
    /// pair, serving the order-statistic kernels.
    order: RwLock<HashMap<OrderKey, Arc<OrderIndex>>>,
    /// Per-group feature of each query the transform/serve path has
    /// materialised, keyed like the feature LRU by the query's structural
    /// `Debug` form. Group-aligned (one slot per group of the query's key
    /// subset), so one aggregation pass serves transforms onto any number of
    /// tables and every point lookup. Never evicted: a fitted plan holds a
    /// few dozen queries at most; appends carry every entry forward
    /// (delta-updated or `Arc`-shared).
    group_feats: RwLock<HashMap<String, Arc<GroupFeature>>>,
    /// Finished train-aligned feature vectors of recent queries. Per-epoch:
    /// cached vectors are frozen against this epoch's relevant table, so the
    /// next epoch starts fresh instead of serving stale features.
    features: Mutex<FeatureCache>,
}

impl<'a> EngineCore<'a> {
    /// An empty core over `relevant` at `epoch`.
    fn fresh(relevant: TableHandle<'a>, epoch: u64, cache_capacity: usize) -> EngineCore<'a> {
        EngineCore {
            epoch,
            relevant,
            views: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
            sorted: RwLock::new(HashMap::new()),
            cats: RwLock::new(HashMap::new()),
            order: RwLock::new(HashMap::new()),
            group_feats: RwLock::new(HashMap::new()),
            features: Mutex::new(FeatureCache::new(cache_capacity)),
        }
    }

    /// The relevant table as of this epoch (for the serving layer's prepared
    /// key translation).
    pub(crate) fn relevant(&self) -> &Table {
        &self.relevant
    }

    /// This snapshot's epoch number.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The state every clone of a [`QueryEngine`] shares: the current epoch's
/// compiled core (behind the swappable [`EpochCell`]), the scratch pool, the
/// cross-epoch counters, and the ingest lock serializing appends.
struct EngineShared<'a> {
    /// The current epoch. Read paths pin it once per request; appends build
    /// the successor off to the side and publish it here.
    core: EpochCell<EngineCore<'a>>,
    /// Lock-free mirror of the feature cache's capacity, so the hot path can
    /// skip the key rendering and the cache lock entirely when caching is
    /// disabled — and so each new epoch's fresh cache inherits it.
    cache_capacity: AtomicUsize,
    /// Reusable evaluation scratch, one entry per concurrently-active worker.
    /// Shared across epochs: per-group buffers only ever grow, and group
    /// counts only grow across appends.
    scratch: Mutex<Vec<EvalScratch>>,
    /// Number of evaluation requests served (cache hits included),
    /// accumulated across epochs.
    evaluations: AtomicUsize,
    /// Number of requests answered from the feature cache, accumulated
    /// across epochs.
    cache_hits: AtomicUsize,
    /// Serializes `append_relevant` calls. Never held by readers — lookups
    /// and transforms pin the published core and proceed regardless.
    ingest: Mutex<()>,
}

/// Cache and throughput counters of a [`QueryEngine`] (for benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Evaluation requests served so far (feature-cache hits included).
    pub evaluations: usize,
    /// Distinct group-key subsets compiled.
    pub group_indexes: usize,
    /// Distinct column views extracted.
    pub column_views: usize,
    /// Distinct `(aggregation column, key subset)` sorted-group value indexes
    /// compiled for the order-statistic kernels.
    pub order_indexes: usize,
    /// Requests answered from the feature LRU without evaluating.
    pub feature_cache_hits: usize,
    /// Distinct per-group feature vectors materialised for the
    /// transform/serve path. Each costs exactly one evaluation; repeat
    /// transforms and point lookups are pure cache reads that move *no*
    /// counter.
    pub group_features: usize,
}

/// A compiled, cache-reusing execution engine for candidate predicate queries
/// over one `(train, relevant)` table pair.
///
/// Cloning an engine is cheap and yields a handle onto the *same* compiled
/// core, feature cache and counters — share one engine per table pair across
/// every component that evaluates candidates against it.
///
/// Tables are held through [`TableHandle`]s: [`QueryEngine::new`] borrows
/// them (the search-time shape), [`QueryEngine::new_shared`] takes
/// `Arc<Table>`s and yields a `QueryEngine<'static>` that is `Send + Sync`
/// and free to live in a long-running serving process, and
/// [`QueryEngine::into_owned`] upgrades a borrowed engine in place — keeping
/// every compiled artifact.
#[derive(Clone)]
pub struct QueryEngine<'a> {
    train: TableHandle<'a>,
    shared: Arc<EngineShared<'a>>,
}

impl<'a> QueryEngine<'a> {
    /// Build an engine over the task's table pair. Compilation is lazy: group
    /// indexes and column views are built on first use and memoized for the
    /// lifetime of the engine (one search).
    pub fn new(train: &'a Table, relevant: &'a Table) -> QueryEngine<'a> {
        QueryEngine::with_handles(train.into(), relevant.into())
    }

    /// Build an engine that co-owns its tables. The result is
    /// `QueryEngine<'static>`: it can be moved across threads and outlive
    /// the code that loaded the tables — the shape a long-running serving
    /// process needs.
    pub fn new_shared(train: Arc<Table>, relevant: Arc<Table>) -> QueryEngine<'static> {
        QueryEngine::with_handles(train.into(), relevant.into())
    }

    /// Build an engine over explicit [`TableHandle`]s (the general form
    /// behind [`QueryEngine::new`] / [`QueryEngine::new_shared`]).
    pub fn with_handles(train: TableHandle<'a>, relevant: TableHandle<'a>) -> QueryEngine<'a> {
        let capacity = default_cache_capacity(train.num_rows());
        QueryEngine {
            train,
            shared: Arc::new(EngineShared {
                core: EpochCell::new(Arc::new(EngineCore::fresh(relevant, 0, capacity))),
                cache_capacity: AtomicUsize::new(capacity),
                scratch: Mutex::new(Vec::new()),
                evaluations: AtomicUsize::new(0),
                cache_hits: AtomicUsize::new(0),
                ingest: Mutex::new(()),
            }),
        }
    }

    /// Upgrade this engine to shared table ownership, keeping the compiled
    /// core: every memoized group index, column view, order index, cached
    /// feature and counter carries over (map clones are `Arc` refcount
    /// bumps; table clones preserve dictionaries and row order, so the
    /// artifacts stay valid). Borrowed tables are cloned once;
    /// already-shared handles are refcount bumps.
    pub fn into_owned(self) -> QueryEngine<'static> {
        let core = self.shared.core.load();
        let owned = EngineCore {
            epoch: core.epoch,
            relevant: core.relevant.clone().into_shared(),
            views: RwLock::new(read_recover(&core.views).clone()),
            groups: RwLock::new(read_recover(&core.groups).clone()),
            sorted: RwLock::new(read_recover(&core.sorted).clone()),
            cats: RwLock::new(read_recover(&core.cats).clone()),
            order: RwLock::new(read_recover(&core.order).clone()),
            group_feats: RwLock::new(read_recover(&core.group_feats).clone()),
            features: Mutex::new(lock_recover(&core.features).clone()),
        };
        QueryEngine {
            train: self.train.into_shared(),
            shared: Arc::new(EngineShared {
                core: EpochCell::new(Arc::new(owned)),
                cache_capacity: AtomicUsize::new(
                    self.shared.cache_capacity.load(Ordering::Relaxed),
                ),
                scratch: Mutex::new(Vec::new()),
                evaluations: AtomicUsize::new(self.shared.evaluations.load(Ordering::Relaxed)),
                cache_hits: AtomicUsize::new(self.shared.cache_hits.load(Ordering::Relaxed)),
                ingest: Mutex::new(()),
            }),
        }
    }

    /// Pin the current epoch: every artifact resolved through the returned
    /// core belongs to one consistent snapshot, no matter how many appends
    /// land while the caller holds it.
    pub(crate) fn core(&self) -> Arc<EngineCore<'a>> {
        self.shared.core.load()
    }

    /// The current epoch number: how many [`QueryEngine::append_relevant`]
    /// batches have been applied (0 = the fitted table).
    pub fn epoch(&self) -> u64 {
        self.core().epoch
    }

    /// Builder-style override of the feature LRU's capacity (entries; the
    /// default is sized from the training table so the cache stays within a
    /// fixed byte budget). `0` disables evaluation-level caching entirely;
    /// lowering the capacity trims existing entries immediately. Later
    /// epochs inherit the override.
    pub fn with_feature_cache_capacity(self, capacity: usize) -> QueryEngine<'a> {
        lock_recover(&self.core().features).set_capacity(capacity);
        self.shared
            .cache_capacity
            .store(capacity, Ordering::Relaxed);
        self
    }

    /// Cache and throughput counters, accumulated across every clone of this
    /// engine. Counter totals are deterministic for serial use; under batch
    /// evaluation the split between `feature_cache_hits` and real evaluations
    /// may vary with scheduling (results never do). Compiled-artifact counts
    /// describe the current epoch's core.
    pub fn stats(&self) -> EngineStats {
        let core = self.core();
        let stats = EngineStats {
            evaluations: self.shared.evaluations.load(Ordering::Relaxed),
            group_indexes: read_recover(&core.groups).len(),
            column_views: read_recover(&core.views).len(),
            order_indexes: read_recover(&core.order).len(),
            feature_cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            group_features: read_recover(&core.group_feats).len(),
        };
        stats
    }

    /// Evaluate `query` and return its feature aligned with the training
    /// table's rows (`None` = SQL NULL), exactly as the reference
    /// execute-then-left-join path would produce.
    pub fn evaluate(&self, query: &PredicateQuery) -> EngineResult<Vec<Option<f64>>> {
        self.evaluate_with(query, None)
    }

    /// [`QueryEngine::evaluate`] under a [`CancelToken`]: the kernel and
    /// gather loops poll the token at their checkpoints (every
    /// [`CANCEL_GROUP_STRIDE`] groups and at phase boundaries) and abandon
    /// the evaluation with [`EngineError::Cancelled`] the moment it trips —
    /// mid-kernel, not at the next batch boundary. Cancelled evaluations are
    /// never cached.
    pub fn evaluate_cancel(
        &self,
        query: &PredicateQuery,
        cancel: &CancelToken,
    ) -> EngineResult<Vec<Option<f64>>> {
        self.evaluate_with(query, Some(cancel))
    }

    fn evaluate_with(
        &self,
        query: &PredicateQuery,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Vec<Option<f64>>> {
        let core = self.core();
        let mut scratch = self.take_scratch();
        let result = self.evaluate_cached(&core, &mut scratch, query, cancel);
        self.put_scratch(scratch);
        result.map(|values| (*values).clone())
    }

    /// Evaluate `query` into the NaN-encoded feature vector the search loops
    /// consume, together with the feature's column name. Mirrors
    /// `feature_vector(&query.augment(train, relevant)?.0, &name)`.
    pub fn feature(&self, query: &PredicateQuery) -> EngineResult<(String, Vec<f64>)> {
        let values = self.evaluate(query)?;
        let encoded = values.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect();
        Ok((query.feature_name(), encoded))
    }

    /// Evaluate a whole candidate pool, fanning it across
    /// [`workers_for_pool`] threads (pool-cost-sized; `FEATAUG_THREADS`
    /// overrides). `results[i]` is query `i`'s outcome; values are
    /// bit-identical to calling [`QueryEngine::evaluate`] serially, at any
    /// worker count.
    pub fn evaluate_batch(
        &self,
        queries: &[PredicateQuery],
    ) -> Vec<EngineResult<Vec<Option<f64>>>> {
        self.evaluate_batch_threads(queries, workers_for_pool(queries.len()))
    }

    /// [`QueryEngine::evaluate_batch`] with an explicit worker count
    /// (clamped to `1..=queries.len()`).
    pub fn evaluate_batch_threads(
        &self,
        queries: &[PredicateQuery],
        workers: usize,
    ) -> Vec<EngineResult<Vec<Option<f64>>>> {
        self.batch_arcs(queries, workers)
            .into_iter()
            .map(|r| r.map(|values| (*values).clone()))
            .collect()
    }

    /// [`QueryEngine::evaluate_batch`] returning shared handles instead of
    /// owned vectors: feature-cache hits cost an `Arc` bump, not an
    /// O(train-rows) copy. Preferred when the caller only reads the values.
    pub fn evaluate_batch_shared(
        &self,
        queries: &[PredicateQuery],
    ) -> Vec<EngineResult<Arc<Vec<Option<f64>>>>> {
        self.batch_arcs(queries, workers_for_pool(queries.len()))
    }

    /// Batch counterpart of [`QueryEngine::feature`]: the candidate pool's
    /// NaN-encoded feature vectors and names, in input order.
    pub fn feature_batch(
        &self,
        queries: &[PredicateQuery],
    ) -> Vec<EngineResult<(String, Vec<f64>)>> {
        self.feature_batch_threads(queries, workers_for_pool(queries.len()))
    }

    /// [`QueryEngine::feature_batch`] with an explicit worker count.
    pub fn feature_batch_threads(
        &self,
        queries: &[PredicateQuery],
        workers: usize,
    ) -> Vec<EngineResult<(String, Vec<f64>)>> {
        self.batch_arcs(queries, workers)
            .into_iter()
            .zip(queries)
            .map(|(result, query)| {
                result.map(|values| {
                    let encoded = values.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
                    (query.feature_name(), encoded)
                })
            })
            .collect()
    }

    /// Fan the pool across the shared [`fan_out`] worker loop; each worker
    /// keeps one scratch for its whole run (order-sensitive aggregates make
    /// query costs uneven, so the dynamic cursor load-balances them).
    fn batch_arcs(
        &self,
        queries: &[PredicateQuery],
        workers: usize,
    ) -> Vec<EngineResult<Arc<Vec<Option<f64>>>>> {
        // Pin one epoch for the whole batch: every query resolves against the
        // same snapshot even if appends land mid-batch.
        let core = self.core();
        fan_out(
            queries,
            workers,
            "batch evaluation",
            || self.take_scratch(),
            |scratch| self.put_scratch(scratch),
            |scratch, query| self.evaluate_cached(&core, scratch, query, None),
        )
    }

    fn take_scratch(&self) -> EvalScratch {
        lock_recover(&self.shared.scratch).pop().unwrap_or_default()
    }

    fn put_scratch(&self, scratch: EvalScratch) {
        lock_recover(&self.shared.scratch).push(scratch);
    }

    /// Serve one request: feature-LRU lookup first, full evaluation on miss.
    /// Only successful evaluations are cached (errors must keep erroring).
    /// With caching disabled the key rendering and cache lock are skipped
    /// entirely.
    fn evaluate_cached(
        &self,
        core: &EngineCore<'a>,
        scratch: &mut EvalScratch,
        query: &PredicateQuery,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Arc<Vec<Option<f64>>>> {
        self.shared.evaluations.fetch_add(1, Ordering::Relaxed);
        if self.shared.cache_capacity.load(Ordering::Relaxed) == 0 {
            return Ok(Arc::new(
                self.evaluate_uncached(core, scratch, query, cancel)?,
            ));
        }
        let key = FeatureCache::key(query);
        if let Some(hit) = lock_recover(&core.features).get(&key) {
            self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let values = Arc::new(self.evaluate_uncached(core, scratch, query, cancel)?);
        lock_recover(&core.features).insert(key, values.clone());
        Ok(values)
    }

    /// The actual evaluation: predicate mask → grouped aggregation → train
    /// gather, all against the shared compiled core plus this worker's
    /// scratch.
    fn evaluate_uncached(
        &self,
        core: &EngineCore<'a>,
        scratch: &mut EvalScratch,
        query: &PredicateQuery,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Vec<Option<f64>>> {
        let gi = core.group_index(&self.train, &query.group_keys)?;
        core.aggregate_into_scratch(scratch, query, &gi, cancel)?;

        // O(train) gather through the precomputed train-row -> group map.
        // `sel_count > 0` guards against reading stale `group_out` slots of
        // groups the current query never touched. NaN results are
        // canonicalized here: IEEE 754 leaves an arithmetic NaN's sign and
        // payload unspecified, and the reference `AggFunc::apply` pins them
        // to the canonical NaN (see `feataug_tabular::aggregate`).
        let mut out = vec![None; self.train.num_rows()];
        for (slot, tg) in out.iter_mut().zip(&gi.train_group) {
            if let Some(g) = tg {
                let g = *g as usize;
                if scratch.sel_count[g] > 0 {
                    *slot = scratch.group_out[g].map(canonical_nan);
                }
            }
        }

        // Restore the all-zero `sel_count` invariant (O(touched groups)).
        for &g in &scratch.touched {
            scratch.sel_count[g as usize] = 0;
        }
        Ok(out)
    }

    /// Fetch (or evaluate once and memoize) `query`'s **per-group** feature:
    /// one slot per group of the query's key subset, `None` for groups the
    /// predicate filtered out entirely or whose aggregate is NULL — exactly
    /// the value a gather delivers to any row carrying that group's key. This
    /// is the transform/serve workhorse: the aggregation runs once per query
    /// per engine, and every later transform (over any table) or point lookup
    /// is a cache read that moves no counter.
    pub(crate) fn group_feature(
        &self,
        core: &EngineCore<'a>,
        query: &PredicateQuery,
    ) -> EngineResult<SharedGroupFeature> {
        self.group_feature_cancel(core, query, None)
    }

    /// [`QueryEngine::group_feature`] under an optional [`CancelToken`]: a
    /// memo hit costs one probe and never polls; a miss runs the aggregation
    /// with the token threaded through the kernel checkpoints, and a
    /// preempted build is not memoized (the next request re-evaluates).
    pub(crate) fn group_feature_cancel(
        &self,
        core: &EngineCore<'a>,
        query: &PredicateQuery,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<SharedGroupFeature> {
        let gi = core.group_index(&self.train, &query.group_keys)?;
        let key = FeatureCache::key(query);
        if let Some(hit) = read_recover(&core.group_feats).get(&key) {
            return Ok((gi, hit.values.clone()));
        }
        self.shared.evaluations.fetch_add(1, Ordering::Relaxed);
        let built = self.materialize_group_feature(core, query, &gi, cancel)?;
        let entry = Arc::new(GroupFeature {
            query: query.clone(),
            values: built,
            state: FeatureState::None,
        });
        let mut map = write_recover(&core.group_feats);
        // A racing worker may have inserted first; keep the canonical Arc.
        Ok((gi, map.entry(key).or_insert(entry).values.clone()))
    }

    /// Evaluate `query`'s per-group feature against `core` (no memo probe, no
    /// counter bump — [`QueryEngine::group_feature`] and the append path wrap
    /// this with their own bookkeeping).
    fn materialize_group_feature(
        &self,
        core: &EngineCore<'a>,
        query: &PredicateQuery,
        gi: &GroupIndex,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Arc<Vec<Option<f64>>>> {
        let mut scratch = self.take_scratch();
        let result = core.aggregate_into_scratch(&mut scratch, query, gi, cancel);
        if let Err(e) = result {
            self.put_scratch(scratch);
            return Err(e);
        }
        // Materialise the touched groups (the only ones with live scratch
        // slots); canonicalize NaNs exactly like the train gather does.
        let mut values: Vec<Option<f64>> = vec![None; gi.n_groups];
        for &g in &scratch.touched {
            let g = g as usize;
            values[g] = scratch.group_out[g].map(canonical_nan);
        }
        for &g in &scratch.touched {
            scratch.sel_count[g as usize] = 0;
        }
        self.put_scratch(scratch);
        Ok(Arc::new(values))
    }

    /// Row → group-id gather map for an **arbitrary** table carrying the
    /// group-key columns, in the relevant table's key space. Built fresh per
    /// call (the table is unknown to the compiled core); the group index it
    /// probes is memoized as usual.
    fn gather_map(
        core: &EngineCore<'a>,
        table: &Table,
        keys: &[String],
        gi: &GroupIndex,
    ) -> feataug_tabular::Result<Vec<Option<u32>>> {
        let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        let mapper = KeyMapper::new(&core.relevant, table, &key_refs, &key_refs)?;
        Ok((0..table.num_rows())
            .map(|row| {
                mapper
                    .key(row)
                    .and_then(|k| gi.key_to_group.get(&k).copied())
            })
            .collect())
    }

    /// Materialise every query of `queries` onto `table` — any table carrying
    /// the group-key columns, not just the training table the engine was
    /// compiled with. Each query's aggregation runs **once per engine**
    /// (memoized per-group features in the shared core); only the O(rows) key
    /// mapping and gather are paid per table, and one key mapping is shared
    /// by every query grouping on the same key subset. `results[i]` is query
    /// `i`'s feature aligned with `table`'s rows (`None` = SQL NULL), with
    /// value semantics identical to [`QueryEngine::evaluate`] run against a
    /// hypothetical engine whose training table were `table`.
    pub fn transform(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        self.transform_threads(queries, table, workers_for_pool(queries.len()))
    }

    /// [`QueryEngine::transform`] with an explicit worker count (clamped to
    /// `1..=queries.len()`). Each query's per-group aggregation (memoized) and
    /// O(rows) gather run independently, so the per-query fan-out is
    /// **bit-identical to the serial path at any worker count** — the
    /// property suites enforce it at 1 / 2 / default workers. One key mapping
    /// per distinct group-key subset is built up front and shared by every
    /// query grouping on it; a table missing a key column therefore errors
    /// before any aggregation work.
    pub fn transform_threads(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
        workers: usize,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        self.transform_threads_cancel(queries, table, workers, None)
    }

    /// [`QueryEngine::transform`] under a [`CancelToken`]: every query's
    /// aggregation (on memo miss) and per-row gather poll the token at the
    /// kernel/gather checkpoints, so one tripped deadline abandons the whole
    /// transform with [`EngineError::Cancelled`] mid-work.
    pub fn transform_cancel(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
        cancel: &CancelToken,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        self.transform_threads_cancel(
            queries,
            table,
            workers_for_pool(queries.len()),
            Some(cancel),
        )
    }

    fn transform_threads_cancel(
        &self,
        queries: &[PredicateQuery],
        table: &Table,
        workers: usize,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Vec<Vec<Option<f64>>>> {
        // Pin one epoch for the whole transform: gather maps, group indexes
        // and per-group features all resolve against the same snapshot even
        // if appends land mid-call.
        let core = self.core();
        let mut maps: HashMap<&[String], Arc<Vec<Option<u32>>>> = HashMap::new();
        for query in queries {
            if !maps.contains_key(query.group_keys.as_slice()) {
                cancel_checkpoint(cancel)?;
                let gi = core.group_index(&self.train, &query.group_keys)?;
                let built = Arc::new(Self::gather_map(&core, table, &query.group_keys, &gi)?);
                maps.insert(query.group_keys.as_slice(), built);
            }
        }
        // The shared fan-out loop scatters every result back to its input
        // slot, so collecting in order surfaces the first error in *input*
        // order — exactly like the serial path.
        fan_out(
            queries,
            workers,
            "transform",
            || (),
            |()| (),
            |_, query| -> EngineResult<Vec<Option<f64>>> {
                crate::fail_point!("exec.gather");
                let (_, feats) = self.group_feature_cancel(&core, query, cancel)?;
                let map = &maps[query.group_keys.as_slice()];
                cancel_checkpoint(cancel)?;
                Ok(map
                    .iter()
                    .map(|g| g.and_then(|g| feats[g as usize]))
                    .collect())
            },
        )
        .into_iter()
        .collect()
    }

    /// Answer a single-key request from the cached per-group features: the
    /// feature `query` assigns to a row whose group-key values are
    /// `key_values` (aligned with `query.group_keys`). `None` when the key is
    /// absent from the relevant table, filtered out by the predicate, NULL, or
    /// type-incompatible with the key column — the same rows a transform
    /// leaves NULL. The first lookup of a query pays its one aggregation;
    /// every later lookup is two hash probes.
    pub fn lookup(
        &self,
        query: &PredicateQuery,
        key_values: &[Value],
    ) -> EngineResult<Option<f64>> {
        self.lookup_pinned(&self.core(), query, key_values)
    }

    /// [`QueryEngine::lookup`] under a [`CancelToken`]: the first lookup of a
    /// query pays its aggregation with the token threaded through the kernel
    /// checkpoints, so a deadline preempts it mid-kernel with
    /// [`EngineError::Cancelled`]; warm lookups stay two hash probes.
    pub fn lookup_cancel(
        &self,
        query: &PredicateQuery,
        key_values: &[Value],
        cancel: &CancelToken,
    ) -> EngineResult<Option<f64>> {
        self.lookup_pinned_cancel(&self.core(), query, key_values, Some(cancel))
    }

    /// [`QueryEngine::lookup`] against an explicitly pinned epoch — the form
    /// the serving layer and [`crate::pipeline::AugModel::serve`] use so a
    /// multi-query request observes one consistent snapshot.
    pub(crate) fn lookup_pinned(
        &self,
        core: &EngineCore<'a>,
        query: &PredicateQuery,
        key_values: &[Value],
    ) -> EngineResult<Option<f64>> {
        self.lookup_pinned_cancel(core, query, key_values, None)
    }

    pub(crate) fn lookup_pinned_cancel(
        &self,
        core: &EngineCore<'a>,
        query: &PredicateQuery,
        key_values: &[Value],
        cancel: Option<&CancelToken>,
    ) -> EngineResult<Option<f64>> {
        if key_values.len() != query.group_keys.len() {
            return Err(feataug_tabular::TabularError::InvalidArgument(format!(
                "lookup key has {} values for {} group-key columns",
                key_values.len(),
                query.group_keys.len()
            ))
            .into());
        }
        let (gi, feats) = self.group_feature_cancel(core, query, cancel)?;
        let mut key = Vec::with_capacity(key_values.len());
        for (column, value) in query.group_keys.iter().zip(key_values) {
            match core.serve_atom(column, value)? {
                Some(atom) => key.push(atom),
                // NULL / unseen / type-mismatched components never match,
                // exactly like the KeyMapper-driven gather.
                None => return Ok(None),
            }
        }
        Ok(gi.key_to_group.get(&key).and_then(|&g| feats[g as usize]))
    }

    /// Ingest a batch of new relevant-table rows, publishing the next epoch.
    ///
    /// The successor core is built entirely off to the side: every reader
    /// keeps serving the currently-published epoch throughout (lookups never
    /// block behind ingestion) and observes the append atomically at the
    /// final swap. Cost is O(appended rows + touched groups' rows + compiled
    /// column views), not O(compiled artifacts × table): untouched group
    /// runs, inverted lists and per-group features are shared with the prior
    /// epoch by `Arc`, trivial-predicate streaming features resume their
    /// per-group fold, and order-stat indexes merge the batch as a lazy
    /// per-group sorted run. Results after the swap are bit-identical to a
    /// full refit over the concatenated table (property-tested).
    ///
    /// A panic mid-build (or a schema mismatch) leaves the published epoch
    /// untouched — the swap is the last step — and surfaces as
    /// [`EngineError::WorkerPanic`] / [`EngineError::Tabular`]. Appends are
    /// serialized by an internal ingest lock readers never take.
    pub fn append_relevant(&self, rows: &Table) -> EngineResult<Epoch> {
        let _ingest = lock_recover(&self.shared.ingest);
        let old = self.core();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.build_next_core(&old, rows)
        })) {
            Ok(Ok((core, info))) => {
                self.shared.core.swap(Arc::new(core));
                Ok(info)
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => Err(EngineError::WorkerPanic {
                context: "append_relevant",
                message: panic_message(payload),
            }),
        }
    }

    /// Assemble the successor of `old` with `rows` appended. Runs entirely
    /// before the publish swap; nothing here is observable by readers.
    fn build_next_core(
        &self,
        old: &EngineCore<'a>,
        rows: &Table,
    ) -> EngineResult<(EngineCore<'a>, Epoch)> {
        crate::fail_point!("exec.ingest.build");
        let base = old.relevant.num_rows();
        let appended_rows = rows.num_rows();
        // Absorb the batch's categorical dictionaries up front (identical to
        // a plain concat for push-built batches): sharded ingestion cuts
        // sub-batches with `take_with_dict`, and absorbing their full batch
        // dictionary keeps every shard's code assignment globally aligned.
        let relevant = TableHandle::from(Arc::new(old.relevant.concat_absorbing(rows)?));
        let total = relevant.num_rows();
        let core = EngineCore::fresh(
            relevant,
            old.epoch + 1,
            self.shared.cache_capacity.load(Ordering::Relaxed),
        );

        // Column views: re-extracted per compiled column — a branch-free
        // O(table) memcpy pass, the same extraction a fresh engine pays once
        // and the only whole-table copy an append makes.
        {
            let mut views = write_recover(&core.views);
            for name in read_recover(&old.views).keys() {
                views.insert(
                    name.clone(),
                    Arc::new(core.relevant.column(name)?.to_f64_vec()),
                );
            }
        }

        // Group indexes: extended per compiled subset. Group ids are stable
        // (first-appearance order is append-only), so every group-aligned
        // artifact downstream can be delta-updated in place.
        let mut deltas: HashMap<Vec<String>, SubsetDelta> = HashMap::new();
        {
            let mut groups = write_recover(&core.groups);
            for (keys, gi) in read_recover(&old.groups).iter() {
                let delta = extend_group_index(gi, &core.relevant, &self.train, keys, base)?;
                groups.insert(keys.clone(), delta.gi.clone());
                deltas.insert(keys.clone(), delta);
            }
        }

        // Sorted range indexes: merge the batch's (value, row) pairs into the
        // ascending run. Ties prefer the old run — old rows precede appended
        // ones, reproducing the stable full-rebuild sort.
        for (name, idx) in read_recover(&old.sorted).iter() {
            let view = core.view(name)?;
            let mut add: Vec<(f64, u32)> = (base..total)
                .filter_map(|row| match view[row] {
                    Some(x) if !x.is_nan() => Some((x, row as u32)),
                    _ => None,
                })
                .collect();
            if add.is_empty() {
                write_recover(&core.sorted).insert(name.clone(), idx.clone());
                continue;
            }
            // lint: allow(panic): the filter_map above drops every NaN, so partial_cmp is total here
            add.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaNs excluded"));
            let mut vals = Vec::with_capacity(idx.vals.len() + add.len());
            let mut rows_out = Vec::with_capacity(idx.rows.len() + add.len());
            let (mut i, mut j) = (0, 0);
            while i < idx.vals.len() && j < add.len() {
                if idx.vals[i] <= add[j].0 {
                    vals.push(idx.vals[i]);
                    rows_out.push(idx.rows[i]);
                    i += 1;
                } else {
                    vals.push(add[j].0);
                    rows_out.push(add[j].1);
                    j += 1;
                }
            }
            vals.extend_from_slice(&idx.vals[i..]);
            rows_out.extend_from_slice(&idx.rows[i..]);
            for &(v, r) in &add[j..] {
                vals.push(v);
                rows_out.push(r);
            }
            write_recover(&core.sorted).insert(
                name.clone(),
                Arc::new(SortedIndex {
                    vals,
                    rows: rows_out,
                }),
            );
        }

        // Inverted categorical indexes: the outer clone is per-code `Arc`
        // bumps; only codes the batch actually carries are rewritten.
        for (name, idx) in read_recover(&old.cats).iter() {
            let Column::Cat(cat) = core.relevant.column(name)? else {
                continue;
            };
            let mut rows_by_code = idx.rows_by_code.clone();
            rows_by_code.resize_with(cat.cardinality(), || Arc::new(Vec::new()));
            let codes = cat.codes();
            for (row, code) in codes.iter().enumerate().take(total).skip(base) {
                if let Some(c) = code {
                    Arc::make_mut(&mut rows_by_code[*c as usize]).push(row as u32);
                }
            }
            write_recover(&core.cats).insert(name.clone(), Arc::new(CatIndex { rows_by_code }));
        }

        // Order-stat indexes: the immutable base CSR is shared by `Arc`; the
        // batch becomes (or merges into) a lazy per-group sorted delta run.
        // Untouched groups' runs carry over as refcount bumps.
        for (okey, idx) in read_recover(&old.order).iter() {
            let (column, keys) = okey;
            let Some(delta_info) = deltas.get(keys) else {
                write_recover(&core.order).insert(okey.clone(), idx.clone());
                continue;
            };
            let view = core.view(column)?;
            let mut delta_map = idx.delta.clone();
            for (&g, rows_of_g) in &delta_info.appended {
                let mut batch: Vec<(f64, u32)> = rows_of_g
                    .iter()
                    .filter_map(|&r| view[r as usize].map(|v| (v, r)))
                    .collect();
                if batch.is_empty() {
                    continue;
                }
                batch.sort_by(|a, b| a.0.total_cmp(&b.0));
                let merged = match delta_map.get(&g) {
                    None => OrderRun {
                        rows: batch.iter().map(|&(_, r)| r).collect(),
                        vals: batch.iter().map(|&(v, _)| v).collect(),
                    },
                    // Merge into the existing delta run, preferring it on
                    // ties (its rows are older).
                    Some(run) => {
                        let mut rows_m = Vec::with_capacity(run.rows.len() + batch.len());
                        let mut vals_m = Vec::with_capacity(run.vals.len() + batch.len());
                        let (mut i, mut j) = (0, 0);
                        while i < run.vals.len() && j < batch.len() {
                            if run.vals[i].total_cmp(&batch[j].0) != std::cmp::Ordering::Greater {
                                vals_m.push(run.vals[i]);
                                rows_m.push(run.rows[i]);
                                i += 1;
                            } else {
                                vals_m.push(batch[j].0);
                                rows_m.push(batch[j].1);
                                j += 1;
                            }
                        }
                        vals_m.extend_from_slice(&run.vals[i..]);
                        rows_m.extend_from_slice(&run.rows[i..]);
                        for &(v, r) in &batch[j..] {
                            vals_m.push(v);
                            rows_m.push(r);
                        }
                        OrderRun {
                            rows: rows_m,
                            vals: vals_m,
                        }
                    }
                };
                delta_map.insert(g, Arc::new(merged));
            }
            write_recover(&core.order).insert(
                okey.clone(),
                Arc::new(OrderIndex {
                    base: idx.base.clone(),
                    delta: delta_map,
                }),
            );
        }

        // Per-group features: every memoized entry is carried into the new
        // epoch — untouched ones as `Arc` shares, touched ones delta-updated
        // — so post-append lookups and transforms stay pure cache reads.
        for (key, gf) in read_recover(&old.group_feats).iter() {
            let entry = match deltas.get(&gf.query.group_keys) {
                Some(d) => self.delta_group_feature(&core, gf, d, base)?,
                None => {
                    let gi = core.group_index(&self.train, &gf.query.group_keys)?;
                    Arc::new(GroupFeature {
                        query: gf.query.clone(),
                        values: self.materialize_group_feature(&core, &gf.query, &gi, None)?,
                        state: FeatureState::None,
                    })
                }
            };
            write_recover(&core.group_feats).insert(key.clone(), entry);
        }

        let mut touched_groups = 0;
        let mut new_groups = 0;
        for d in deltas.values() {
            touched_groups += d.appended.len() - d.new_groups;
            new_groups += d.new_groups;
        }
        crate::fail_point!("exec.ingest.publish");
        Ok((
            core,
            Epoch {
                epoch: old.epoch + 1,
                appended_rows,
                total_rows: total,
                touched_groups,
                new_groups,
            },
        ))
    }

    /// Carry one memoized per-group feature into the next epoch.
    ///
    /// Fast paths, in order: categorical aggregation columns under a
    /// filtering predicate recompute outright (the reference re-interns
    /// dictionary codes by first appearance among *selected* rows, so one
    /// appended row can renumber every group's view); untouched features
    /// share the prior epoch's `Arc`; trivial-predicate Stream features
    /// resume their one-pass fold per touched group ([`StreamDelta`]);
    /// trivial-predicate Moment features resume pass 1 and rescan only the
    /// touched groups for pass 2 ([`MomentDelta`] — centred power sums are
    /// not mergeable bit-identically); everything else rescans the touched
    /// groups end to end through [`apply_kernel`]. Every path is
    /// bit-identical to a full refit by construction: folds visit the same
    /// values in the same order the engine's own kernels would.
    fn delta_group_feature(
        &self,
        core: &EngineCore<'a>,
        old_gf: &GroupFeature,
        delta: &SubsetDelta,
        base: usize,
    ) -> EngineResult<Arc<GroupFeature>> {
        let query = &old_gf.query;
        let agg = query.agg;
        let gi = &delta.gi;
        let trivial = query.predicate.is_trivial();

        if !trivial && matches!(core.relevant.column(&query.agg_column)?, Column::Cat(_)) {
            let values = self.materialize_group_feature(core, query, gi, None)?;
            return Ok(Arc::new(GroupFeature {
                query: query.clone(),
                values,
                state: FeatureState::None,
            }));
        }

        // Which appended rows survive the predicate, per group (ascending row
        // order within each group, matching the engine's visit order).
        let mut selected: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&g, rows_of_g) in &delta.appended {
            for &r in rows_of_g {
                if trivial || core.row_matches(&query.predicate, r as usize)? {
                    selected.entry(g).or_default().push(r);
                }
            }
        }

        if selected.is_empty() && gi.n_groups == old_gf.values.len() {
            // Untouched: the prior epoch's feature is this epoch's feature.
            return Ok(Arc::new(GroupFeature {
                query: query.clone(),
                values: old_gf.values.clone(),
                state: old_gf.state.clone(),
            }));
        }

        let view = core.view(&query.agg_column)?;
        let mut values = (*old_gf.values).clone();
        values.resize(gi.n_groups, None);
        let family = KernelFamily::of(agg);

        let state = if trivial && family == KernelFamily::Stream {
            let mut state = match &old_gf.state {
                FeatureState::Stream(m) => m.clone(),
                _ => HashMap::new(),
            };
            // First touch of a group: fold its historical rows once to seed
            // the resumable state; later appends skip straight to the resume.
            let need: Vec<u32> = selected
                .keys()
                .filter(|g| !state.contains_key(g))
                .copied()
                .collect();
            if !need.is_empty() {
                let mut hist: HashMap<u32, StreamDelta> =
                    need.iter().map(|&g| (g, StreamDelta::new(agg))).collect();
                for (row, &g) in gi.group_of_row[..base].iter().enumerate() {
                    if let Some(d) = hist.get_mut(&g) {
                        d.observe(agg, view[row]);
                    }
                }
                state.extend(hist);
            }
            for (&g, rows_sel) in &selected {
                // lint: allow(panic): the `need` pass seeded every selected group into `state`
                let d = state.get_mut(&g).expect("state seeded above");
                for &r in rows_sel {
                    d.observe(agg, view[r as usize]);
                }
                values[g as usize] = d.finalize(agg);
            }
            FeatureState::Stream(state)
        } else if trivial && family == KernelFamily::Moment {
            let mut state = match &old_gf.state {
                FeatureState::Moment(m) => m.clone(),
                _ => HashMap::new(),
            };
            let need: Vec<u32> = selected
                .keys()
                .filter(|g| !state.contains_key(g))
                .copied()
                .collect();
            if !need.is_empty() {
                let mut hist: HashMap<u32, MomentDelta> =
                    need.iter().map(|&g| (g, MomentDelta::new())).collect();
                for (row, &g) in gi.group_of_row[..base].iter().enumerate() {
                    if let Some(d) = hist.get_mut(&g) {
                        d.observe(view[row]);
                    }
                }
                state.extend(hist);
            }
            // Resume pass 1 over the appended rows …
            for (&g, rows_sel) in &selected {
                // lint: allow(panic): the `need` pass seeded every selected group into `state`
                let d = state.get_mut(&g).expect("state seeded above");
                for &r in rows_sel {
                    d.observe(view[r as usize]);
                }
            }
            // … then pass 2 rescans each touched group with the new mean.
            let wants_m4 = agg == AggFunc::Kurtosis;
            let mut m2: HashMap<u32, f64> = selected.keys().map(|&g| (g, 0.0)).collect();
            let mut m4: HashMap<u32, f64> = selected.keys().map(|&g| (g, 0.0)).collect();
            for (row, &g) in gi.group_of_row.iter().enumerate() {
                let Some(slot) = m2.get_mut(&g) else { continue };
                if let Some(v) = view[row] {
                    let mean = state[&g].mean();
                    accumulate_m2(slot, v, mean);
                    if wants_m4 {
                        // lint: allow(panic): m2 and m4 are built from the same `selected` key set
                        accumulate_m4(m4.get_mut(&g).expect("same keys as m2"), v, mean);
                    }
                }
            }
            for (g, d) in &state {
                if !m2.contains_key(g) {
                    continue;
                }
                values[*g as usize] = if d.sel == 0 {
                    None
                } else {
                    moment_finalize(agg, d.nonnull as usize, m2[g], m4[g])
                };
            }
            FeatureState::Moment(state)
        } else {
            // Universal fallback: rescan each touched group end to end and
            // apply the slice kernel — the reference semantics by definition.
            let mut sel: HashMap<u32, u64> = selected.keys().map(|&g| (g, 0)).collect();
            let mut vals: HashMap<u32, Vec<f64>> =
                selected.keys().map(|&g| (g, Vec::new())).collect();
            for (row, &g) in gi.group_of_row.iter().enumerate() {
                let Some(count) = sel.get_mut(&g) else {
                    continue;
                };
                if trivial || core.row_matches(&query.predicate, row)? {
                    *count += 1;
                    if let Some(v) = view[row] {
                        // lint: allow(panic): sel and vals are built from the same `selected` key set
                        vals.get_mut(&g).expect("same keys as sel").push(v);
                    }
                }
            }
            for (g, count) in &sel {
                values[*g as usize] = if *count == 0 {
                    None
                } else {
                    apply_kernel(agg, &vals[g])
                };
            }
            FeatureState::None
        };

        Ok(Arc::new(GroupFeature {
            query: query.clone(),
            values: Arc::new(values),
            state,
        }))
    }
}

/// Per-key-subset outcome of extending a group index with one append batch.
struct SubsetDelta {
    /// The extended index (old group ids are stable; new keys get the next
    /// dense ids).
    gi: Arc<GroupIndex>,
    /// Appended row ids per group that received any, in ascending row order.
    appended: HashMap<u32, Vec<u32>>,
    /// How many of those groups were minted by this batch.
    new_groups: usize,
}

/// Extend `old_gi` over `relevant` (the concatenated table) with the rows at
/// `base..`. Existing keys keep their group ids; new keys continue the dense
/// first-appearance numbering, so the result is exactly what
/// [`build_group_index`] would produce from scratch — at O(appended) cost
/// unless the batch mints a key (which forces one train-side rescan of the
/// previously-unmatched rows).
fn extend_group_index(
    old_gi: &GroupIndex,
    relevant: &Table,
    train: &Table,
    keys: &[String],
    base: usize,
) -> feataug_tabular::Result<SubsetDelta> {
    let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
    let cols: Vec<&feataug_tabular::Column> = key_refs
        .iter()
        .map(|k| relevant.column(k))
        .collect::<feataug_tabular::Result<_>>()?;

    let mut key_to_group = old_gi.key_to_group.clone();
    let mut group_of_row = old_gi.group_of_row.clone();
    group_of_row.reserve(relevant.num_rows() - base);
    let mut appended: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut new_keys: HashMap<Vec<KeyAtom>, u32> = HashMap::new();
    let mut key_buf: Vec<KeyAtom> = Vec::with_capacity(cols.len());
    for row in base..relevant.num_rows() {
        key_buf.clear();
        key_buf.extend(cols.iter().map(|c| key_atom(c, row)));
        let id = match key_to_group.get(key_buf.as_slice()) {
            Some(&id) => id,
            None => {
                let id = key_to_group.len() as u32;
                key_to_group.insert(key_buf.clone(), id);
                new_keys.insert(key_buf.clone(), id);
                id
            }
        };
        group_of_row.push(id);
        appended.entry(id).or_default().push(row as u32);
    }
    let n_groups = key_to_group.len();

    // Train rows that already matched keep their ids (ids are stable). Only
    // previously-unmatched rows can newly match a key minted by this batch —
    // including via dictionary codes the append interned.
    let train_group = if new_keys.is_empty() {
        old_gi.train_group.clone()
    } else {
        let mapper = KeyMapper::new(relevant, train, &key_refs, &key_refs)?;
        old_gi
            .train_group
            .iter()
            .enumerate()
            .map(|(row, tg)| tg.or_else(|| mapper.key(row).and_then(|k| new_keys.get(&k).copied())))
            .collect()
    };

    let new_groups = new_keys.len();
    Ok(SubsetDelta {
        gi: Arc::new(GroupIndex {
            group_of_row,
            n_groups,
            train_group,
            key_to_group,
        }),
        appended,
        new_groups,
    })
}

impl<'a> EngineCore<'a> {
    /// Translate one key value into the relevant table's key space, mirroring
    /// [`KeyMapper`]'s rules: categorical strings resolve through the
    /// dictionary, every other type must match the column's dtype exactly
    /// (ints never match datetimes), and NULL never matches. `Ok(None)` means
    /// "can never match any group"; `Err` means the key column is missing.
    fn serve_atom(&self, column: &str, value: &Value) -> feataug_tabular::Result<Option<KeyAtom>> {
        let col = self.relevant.column(column)?;
        Ok(match (col, value) {
            (Column::Cat(c), Value::Str(s)) => c.code_of(s).map(KeyAtom::Code),
            (Column::Int(_), Value::Int(i)) => Some(KeyAtom::Int(*i)),
            (Column::DateTime(_), Value::DateTime(t)) => Some(KeyAtom::Int(*t)),
            (Column::Float(_), Value::Float(f)) => Some(KeyAtom::Bits(f.to_bits())),
            (Column::Bool(_), Value::Bool(b)) => Some(KeyAtom::Bool(*b)),
            _ => None,
        })
    }

    /// Fetch (or build and memoize) the numeric view of a relevant-table
    /// column. The artifact is immutable; the lock guards only the memo map.
    fn view(&self, column: &str) -> feataug_tabular::Result<Arc<Vec<Option<f64>>>> {
        if let Some(v) = read_recover(&self.views).get(column) {
            return Ok(v.clone());
        }
        let built = Arc::new(self.relevant.column(column)?.to_f64_vec());
        let mut map = write_recover(&self.views);
        // A racing worker may have inserted first; keep the canonical Arc.
        Ok(map.entry(column.to_string()).or_insert(built).clone())
    }

    /// Fetch (or build and memoize) the group index for one group-key subset.
    /// `train` is the gather side (the engine's training table — the core
    /// holds only the relevant side).
    fn group_index(
        &self,
        train: &Table,
        keys: &[String],
    ) -> feataug_tabular::Result<Arc<GroupIndex>> {
        if let Some(gi) = read_recover(&self.groups).get(keys) {
            return Ok(gi.clone());
        }
        let built = Arc::new(build_group_index(train, &self.relevant, keys)?);
        let mut map = write_recover(&self.groups);
        // A panic here unwinds with the write guard held and poisons the
        // lock; `read_recover`/`write_recover` keep the engine serving (the
        // map is never left mid-mutation — the failpoint fires before the
        // insert, and `HashMap::insert` of an already-built Arc is the only
        // mutation). Chaos tests force exactly this.
        crate::fail_point!("exec.index.insert");
        Ok(map.entry(keys.to_vec()).or_insert(built).clone())
    }

    /// The memoized order index for `query`'s `(aggregation column, key
    /// subset)` pair — when its aggregate is an order statistic *and* the
    /// selection is dense enough for the run merge to win. `None` routes the
    /// query to the scatter-bucket kernels instead.
    ///
    /// Cost model: the merge scans every touched group's whole run (up to all
    /// non-null rows) at one mask probe per value, while the scatter path
    /// costs O(selected rows) plus a sort of each small bucket. With the
    /// index already compiled the decision is **exact per-group run-length
    /// accounting**: sum the touched groups' run lengths (base + lazy delta)
    /// and merge only when the total stays within 4× the selected rows —
    /// epoch deltas can concentrate huge runs in a few groups, which a global
    /// row-count heuristic cannot see. When the index is not yet built, the
    /// run lengths don't exist either, so a global `4 × selected ≥ rows`
    /// density gate decides whether building it is worth amortizing — an
    /// all-sparse workload never pays the compilation.
    fn agg_order_index(
        &self,
        query: &PredicateQuery,
        gi: &GroupIndex,
        view: &[Option<f64>],
        mask: Option<&SelectionMask>,
    ) -> Option<Arc<OrderIndex>> {
        if KernelFamily::of(query.agg) != KernelFamily::OrderStat {
            return None;
        }
        // `None` mask = trivial predicate: every group's run is read in
        // place, zero copies — always a win.
        let Some(m) = mask else {
            return Some(self.order_index(&query.agg_column, &query.group_keys, gi, view));
        };
        // The popcount runs only for order-statistic queries — the streaming
        // / moment families bail out above without touching the mask.
        let selected = m.count_ones();
        let memo_key = (query.agg_column.clone(), query.group_keys.clone());
        let existing = read_recover(&self.order).get(&memo_key).cloned();
        match existing {
            Some(idx) => {
                let budget = selected.saturating_mul(4);
                let mut run_total = 0usize;
                let mut seen: HashSet<u32> = HashSet::new();
                for row in 0..self.relevant.num_rows() {
                    if !m.get(row) {
                        continue;
                    }
                    let g = gi.group_of_row[row];
                    if seen.insert(g) {
                        run_total += idx.run_len(g as usize);
                        if run_total > budget {
                            return None;
                        }
                    }
                }
                Some(idx)
            }
            None => (selected.saturating_mul(4) >= self.relevant.num_rows())
                .then(|| self.order_index(&query.agg_column, &query.group_keys, gi, view)),
        }
    }

    /// Fetch (or build and memoize) the sorted-group value index for one
    /// `(aggregation column, group-key subset)` pair. The artifact is
    /// immutable; the lock guards only the memo map.
    fn order_index(
        &self,
        column: &str,
        keys: &[String],
        gi: &GroupIndex,
        view: &[Option<f64>],
    ) -> Arc<OrderIndex> {
        if let Some(idx) = read_recover(&self.order).get(&(column.to_string(), keys.to_vec())) {
            return idx.clone();
        }
        let built = Arc::new(build_order_index(gi, view));
        let mut map = write_recover(&self.order);
        map.entry((column.to_string(), keys.to_vec()))
            .or_insert(built)
            .clone()
    }

    /// Fetch (or build and memoize) the sorted row index for a range column.
    fn sorted_index(&self, column: &str) -> feataug_tabular::Result<Arc<SortedIndex>> {
        if let Some(idx) = read_recover(&self.sorted).get(column) {
            return Ok(idx.clone());
        }
        let view = self.view(column)?;
        let mut pairs: Vec<(f64, u32)> = view
            .iter()
            .enumerate()
            .filter_map(|(row, v)| match v {
                Some(x) if !x.is_nan() => Some((*x, row as u32)),
                _ => None,
            })
            .collect();
        // lint: allow(panic): the filter_map above drops every NaN, so partial_cmp is total here
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaNs excluded"));
        let built = Arc::new(SortedIndex {
            vals: pairs.iter().map(|(v, _)| *v).collect(),
            rows: pairs.iter().map(|(_, r)| *r).collect(),
        });
        let mut map = write_recover(&self.sorted);
        Ok(map.entry(column.to_string()).or_insert(built).clone())
    }

    /// Fetch (or build and memoize) the inverted index for a categorical
    /// column.
    fn cat_index(&self, cat: &feataug_tabular::column::CatColumn, column: &str) -> Arc<CatIndex> {
        if let Some(idx) = read_recover(&self.cats).get(column) {
            return idx.clone();
        }
        let mut lists = vec![Vec::new(); cat.cardinality()];
        for (row, code) in cat.codes().iter().enumerate() {
            if let Some(c) = code {
                lists[*c as usize].push(row as u32);
            }
        }
        let built = Arc::new(CatIndex {
            rows_by_code: lists.into_iter().map(Arc::new).collect(),
        });
        let mut map = write_recover(&self.cats);
        map.entry(column.to_string()).or_insert(built).clone()
    }

    /// Evaluate a non-trivial predicate into `mask`, using `tmp` for
    /// conjunction terms.
    fn predicate_mask(
        &self,
        predicate: &Predicate,
        mask: &mut SelectionMask,
        tmp: &mut SelectionMask,
    ) -> feataug_tabular::Result<()> {
        match predicate {
            Predicate::And(parts) => {
                mask.reset(self.relevant.num_rows(), true);
                for part in parts {
                    self.leaf_mask(part, tmp)?;
                    mask.and_assign(tmp);
                }
                Ok(())
            }
            leaf => self.leaf_mask(leaf, mask),
        }
    }

    /// Evaluate one predicate leaf into `out` through the column indexes: an
    /// equality or bounded range costs O(matching rows) bit sets instead of a
    /// full-column scan. Mask membership is identical to the reference
    /// [`Predicate::evaluate`] leaves, so downstream aggregation is
    /// unaffected. Recurses for (rare, already-flattened-away) nested `And`s.
    fn leaf_mask(
        &self,
        predicate: &Predicate,
        out: &mut SelectionMask,
    ) -> feataug_tabular::Result<()> {
        let n = self.relevant.num_rows();
        match predicate {
            Predicate::True => {
                out.reset(n, true);
                Ok(())
            }
            Predicate::Eq { column, value } => {
                let col = self.relevant.column(column)?;
                match (col, value) {
                    (Column::Cat(c), Value::Str(s)) => {
                        let idx = self.cat_index(c, column);
                        out.reset(n, false);
                        if let Some(code) = c.code_of(s) {
                            for &row in idx.rows_by_code[code as usize].iter() {
                                out.set(row as usize, true);
                            }
                        }
                    }
                    // Equality on non-categorical operands (bools, odd manual
                    // queries) is rare: fall back to the reference scan.
                    _ => fill_eq(col, value, out),
                }
                Ok(())
            }
            Predicate::Range { column, low, high } => {
                let lo = low.as_ref().and_then(|v| v.as_f64());
                let hi = high.as_ref().and_then(|v| v.as_f64());
                if lo.is_none() && hi.is_none() {
                    // Unbounded range keeps every non-null row *including
                    // NaNs*, which the sorted index deliberately drops: use
                    // the view.
                    let view = self.view(column)?;
                    fill_range_view(&view, None, None, out);
                    return Ok(());
                }
                let idx = self.sorted_index(column)?;
                // `v < lo` / `v <= hi` are prefix-true over the ascending
                // values, and a NaN bound satisfies neither (empty
                // selection), matching the reference comparisons exactly.
                let start = match lo {
                    Some(l) => idx.vals.partition_point(|v| *v < l),
                    None => 0,
                };
                let end = match hi {
                    Some(h) => idx.vals.partition_point(|v| *v <= h),
                    None => idx.vals.len(),
                };
                out.reset(n, false);
                if let Some(rows) = idx.rows.get(start..end) {
                    for &row in rows {
                        out.set(row as usize, true);
                    }
                }
                Ok(())
            }
            Predicate::And(parts) => {
                out.reset(n, true);
                let mut tmp = SelectionMask::new();
                for part in parts {
                    self.leaf_mask(part, &mut tmp)?;
                    out.and_assign(&tmp);
                }
                Ok(())
            }
        }
    }

    /// Does `row` of the relevant table satisfy `predicate`? Point form of
    /// the mask builders above, with identical membership: equality mirrors
    /// [`fill_eq`] (NULL operands and NULL cells never match), ranges mirror
    /// the sorted-index partitions (NULL never matches; an unbounded range
    /// keeps NaNs, a bounded one drops them, a NaN bound matches nothing).
    /// The append path uses this to classify single appended rows without
    /// building full-table masks.
    fn row_matches(&self, predicate: &Predicate, row: usize) -> feataug_tabular::Result<bool> {
        match predicate {
            Predicate::True => Ok(true),
            Predicate::And(parts) => {
                for part in parts {
                    if !self.row_matches(part, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Eq { column, value } => {
                let col = self.relevant.column(column)?;
                Ok(match (col, value) {
                    (Column::Cat(c), Value::Str(s)) => match (c.codes()[row], c.code_of(s)) {
                        (Some(rc), Some(t)) => rc == t,
                        _ => false,
                    },
                    _ => {
                        if value.is_null() {
                            false
                        } else {
                            let v = col.get(row);
                            !v.is_null() && v.total_cmp(value) == std::cmp::Ordering::Equal
                        }
                    }
                })
            }
            Predicate::Range { column, low, high } => {
                let lo = low.as_ref().and_then(|v| v.as_f64());
                let hi = high.as_ref().and_then(|v| v.as_f64());
                let view = self.view(column)?;
                Ok(match view[row] {
                    None => false,
                    // An unbounded side passes; a NaN cell fails any bounded
                    // comparison (and a NaN bound fails every cell), matching
                    // the mask builders.
                    Some(x) => lo.is_none_or(|l| x >= l) && hi.is_none_or(|h| x <= h),
                })
            }
        }
    }

    /// Run `query`'s predicate mask + grouped aggregation against this
    /// core, leaving the per-group results in `scratch`
    /// (`group_out` / `sel_count` / `touched`). The caller reads the touched
    /// groups and MUST re-zero `sel_count` over `touched` afterwards to
    /// restore the scratch invariant.
    fn aggregate_into_scratch(
        &self,
        scratch: &mut EvalScratch,
        query: &PredicateQuery,
        gi: &GroupIndex,
        cancel: Option<&CancelToken>,
    ) -> EngineResult<()> {
        crate::fail_point!("exec.kernel");
        cancel_checkpoint(cancel)?;
        let view = self.view(&query.agg_column)?;
        let trivial = query.predicate.is_trivial();
        if !trivial {
            let EvalScratch {
                mask, scratch: tmp, ..
            } = scratch;
            self.predicate_mask(&query.predicate, mask, tmp)?;
            cancel_checkpoint(cancel)?;
        }

        // The reference path materialises the filtered table, and
        // `CatColumn::take` re-interns the dictionary — so a categorical
        // aggregation column's numeric view (its codes) is renumbered by
        // first appearance among the *surviving* rows. Reproduce that here;
        // for trivial predicates the reference borrows the unfiltered table
        // and the cached view (and the order index built over it) already
        // match.
        if !trivial {
            if let Column::Cat(cat) = self.relevant.column(&query.agg_column)? {
                let EvalScratch {
                    mask,
                    cat_view,
                    cat_remap,
                    ..
                } = scratch;
                remapped_cat_view(cat, mask, cat_view, cat_remap);
                let cat_view = std::mem::take(&mut scratch.cat_view);
                // Re-interned codes are query-local, so the memoized order
                // index does not apply; the dictionary-code frequency kernel
                // (and a per-bucket sort for MEDIAN/MAD) covers this path.
                let result = aggregate_groups(
                    scratch, gi, &cat_view, query.agg, trivial, None, true, cancel,
                );
                scratch.cat_view = cat_view;
                result?;
            } else {
                let order = self.agg_order_index(query, gi, &view, Some(&scratch.mask));
                aggregate_groups(
                    scratch,
                    gi,
                    &view,
                    query.agg,
                    trivial,
                    order.as_deref(),
                    false,
                    cancel,
                )?;
            }
        } else {
            let order = self.agg_order_index(query, gi, &view, None);
            aggregate_groups(
                scratch,
                gi,
                &view,
                query.agg,
                trivial,
                order.as_deref(),
                false,
                cancel,
            )?;
        }
        Ok(())
    }
}

fn build_group_index(
    train: &Table,
    relevant: &Table,
    keys: &[String],
) -> feataug_tabular::Result<GroupIndex> {
    crate::fail_point!("exec.index.build");
    let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
    if key_refs.is_empty() {
        return Err(feataug_tabular::TabularError::InvalidArgument(
            "group-by needs at least one key".into(),
        ));
    }
    let cols: Vec<&feataug_tabular::Column> = key_refs
        .iter()
        .map(|k| relevant.column(k))
        .collect::<feataug_tabular::Result<_>>()?;

    // Dense group ids over the relevant table, in first-appearance order
    // (NULL atoms form their own groups, matching the group-by semantics).
    let mut index: HashMap<Vec<KeyAtom>, u32> = HashMap::new();
    let mut group_of_row = Vec::with_capacity(relevant.num_rows());
    let mut key_buf: Vec<KeyAtom> = Vec::with_capacity(cols.len());
    for row in 0..relevant.num_rows() {
        key_buf.clear();
        key_buf.extend(cols.iter().map(|c| key_atom(c, row)));
        let id = match index.get(key_buf.as_slice()) {
            Some(&id) => id,
            None => {
                let id = index.len() as u32;
                index.insert(key_buf.clone(), id);
                id
            }
        };
        group_of_row.push(id);
    }
    let n_groups = index.len();

    // Gather map: each train row's key translated into the relevant table's
    // key space (NULL / unseen / type-mismatched keys never match, exactly
    // like the reference left join).
    let mapper = KeyMapper::new(relevant, train, &key_refs, &key_refs)?;
    let train_group = (0..train.num_rows())
        .map(|row| mapper.key(row).and_then(|k| index.get(&k).copied()))
        .collect();

    Ok(GroupIndex {
        group_of_row,
        n_groups,
        train_group,
        key_to_group: index,
    })
}

/// Rebuild the numeric view of a categorical aggregation column the way the
/// reference path sees it after filtering: `CatColumn::take` re-interns the
/// dictionary, so codes are renumbered by first appearance among the selected
/// rows. Only the selected rows' slots are meaningful; aggregation never
/// reads the rest.
fn remapped_cat_view(
    cat: &feataug_tabular::column::CatColumn,
    mask: &SelectionMask,
    out: &mut Vec<Option<f64>>,
    remap: &mut Vec<Option<u32>>,
) {
    out.clear();
    out.resize(cat.len(), None);
    remap.clear();
    remap.resize(cat.cardinality(), None);
    let mut next = 0u32;
    let codes = cat.codes();
    mask.for_each_set(|row| {
        if let Some(code) = codes[row] {
            let slot = &mut remap[code as usize];
            let new_code = match slot {
                Some(c) => *c,
                None => {
                    let c = next;
                    *slot = Some(c);
                    next += 1;
                    c
                }
            };
            out[row] = Some(new_code as f64);
        }
    });
}

/// Aggregate the selected rows' values into `scratch.group_out` (one
/// `Option<f64>` per touched group), `scratch.sel_count` (selected rows per
/// group) and `scratch.touched` (the groups hit, in first-touch order),
/// through the kernel family of `agg`:
///
/// * **Stream** — one pass, O(1) state per group;
/// * **Moment** — two streaming passes (sum → centred power sums), no value
///   buffers;
/// * **OrderStat** — the memoized [`OrderIndex`] when the selection is dense
///   (a trivial predicate reads each group's pre-sorted run in place, a
///   filtering one merges the selected rows out of it at one mask probe per
///   value). When `order` is `None` — a sparse selection, or query-local
///   re-interned dictionary codes — values are scattered into per-group
///   buckets instead and evaluated by the dictionary-code frequency kernel
///   (`codes` views) or a per-bucket sort feeding the same sorted-run
///   kernels.
///
/// Per-group scratch is initialised lazily on first touch, so a selective
/// query costs O(selected rows + touched groups) regardless of how many
/// groups the index holds; the caller re-zeroes `sel_count` afterwards.
/// Values are visited in ascending row order (streaming) or ascending value
/// order (the order the reference's sort produces), so every kernel output
/// matches `AggFunc::apply` over the same group bit for bit — the property
/// suites enforce it.
///
/// `cancel` (if any) is polled between visit passes and every
/// [`CANCEL_GROUP_STRIDE`] groups inside the finalize loops — the visit
/// closures run under `for_each_set` and cannot early-exit, so phase
/// boundaries plus per-group finalize strides are the preemption points. On
/// `Err(Cancelled)` the scratch invariant (`sel_count` all-zero) is restored
/// before returning, so a preempted worker's scratch can be pooled again.
// The kernel dispatcher's natural signature: scratch + index + view + the
// dispatch flags + the cancel token. Bundling them into a struct would be
// built and torn down per query for no reader benefit.
#[allow(clippy::too_many_arguments)]
fn aggregate_groups(
    scratch: &mut EvalScratch,
    gi: &GroupIndex,
    view: &[Option<f64>],
    agg: AggFunc,
    trivial: bool,
    order: Option<&OrderIndex>,
    codes: bool,
    cancel: Option<&CancelToken>,
) -> Result<(), feataug_tabular::Cancelled> {
    let result = aggregate_groups_inner(scratch, gi, view, agg, trivial, order, codes, cancel);
    if result.is_err() {
        // A preempted aggregation abandoned its partial results; re-zero
        // `sel_count` over the touched groups so the scratch invariant holds.
        for &g in scratch.touched.iter() {
            scratch.sel_count[g as usize] = 0;
        }
        scratch.touched.clear();
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn aggregate_groups_inner(
    scratch: &mut EvalScratch,
    gi: &GroupIndex,
    view: &[Option<f64>],
    agg: AggFunc,
    trivial: bool,
    order: Option<&OrderIndex>,
    codes: bool,
    cancel: Option<&CancelToken>,
) -> Result<(), feataug_tabular::Cancelled> {
    let n_groups = gi.n_groups;
    let EvalScratch {
        mask,
        sel_count,
        touched,
        nonnull,
        acc,
        m2,
        m4,
        cursors,
        scatter,
        sorted_buf,
        merge_rows,
        merge_vals,
        dev_buf,
        freq,
        group_out,
        ..
    } = scratch;
    // Grow (never shrink) the per-group scratch; `sel_count` is all-zero here
    // by invariant, the rest holds stale values that lazy init overwrites.
    if sel_count.len() < n_groups {
        sel_count.resize(n_groups, 0);
        nonnull.resize(n_groups, 0);
        acc.resize(n_groups, 0.0);
        m2.resize(n_groups, 0.0);
        m4.resize(n_groups, 0.0);
        cursors.resize(n_groups, 0);
        group_out.resize(n_groups, None);
    }
    touched.clear();
    let group_of_row = &gi.group_of_row;

    match KernelFamily::of(agg) {
        KernelFamily::Stream => {
            let init = match agg {
                AggFunc::Min => f64::INFINITY,
                AggFunc::Max => f64::NEG_INFINITY,
                // -0.0 is IEEE addition's identity and the neutral element
                // `Iterator::sum::<f64>` folds from: starting at +0.0 would
                // turn an all-(-0.0) group's sum into +0.0 and diverge from
                // the reference.
                _ => -0.0,
            };
            let mut visit = |row: usize| {
                let g = group_of_row[row] as usize;
                if sel_count[g] == 0 {
                    touched.push(g as u32);
                    nonnull[g] = 0;
                    acc[g] = init;
                }
                sel_count[g] += 1;
                if let Some(v) = view[row] {
                    match agg {
                        AggFunc::Sum | AggFunc::Avg => {
                            nonnull[g] += 1;
                            acc[g] += v;
                        }
                        AggFunc::Count => nonnull[g] += 1,
                        // MIN/MAX ignore NaNs; `nonnull` counts only the
                        // values that participate, so an all-NaN group
                        // finalizes to NULL like the (fixed) reference.
                        AggFunc::Min => {
                            if !v.is_nan() {
                                nonnull[g] += 1;
                                acc[g] = acc[g].min(v);
                            }
                        }
                        AggFunc::Max => {
                            if !v.is_nan() {
                                nonnull[g] += 1;
                                acc[g] = acc[g].max(v);
                            }
                        }
                        // lint: allow(panic): KernelFamily::of routes only the five cheap functions here
                        _ => unreachable!("streaming path covers only the five cheap functions"),
                    }
                }
            };
            cancel_checkpoint(cancel)?;
            if trivial {
                (0..group_of_row.len()).for_each(&mut visit);
            } else {
                mask.for_each_set(&mut visit);
            }
            for (i, &g) in touched.iter().enumerate() {
                if i % CANCEL_GROUP_STRIDE == 0 {
                    cancel_checkpoint(cancel)?;
                }
                let g = g as usize;
                let n = nonnull[g];
                group_out[g] = match agg {
                    AggFunc::Count => Some(n as f64),
                    _ if n == 0 => None,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => Some(acc[g]),
                    AggFunc::Avg => Some(acc[g] / n as f64),
                    // lint: allow(panic): KernelFamily::of routes only the five cheap functions here
                    _ => unreachable!("streaming path covers only the five cheap functions"),
                };
            }
        }
        KernelFamily::Moment => {
            // Pass 1: per-group sum and non-null count, in row order (the
            // order the reference's `values.iter().sum()` adds in).
            let mut sum_visit = |row: usize| {
                let g = group_of_row[row] as usize;
                if sel_count[g] == 0 {
                    touched.push(g as u32);
                    nonnull[g] = 0;
                    // -0.0: `Iterator::sum`'s neutral element (see the
                    // streaming path).
                    acc[g] = -0.0;
                }
                sel_count[g] += 1;
                if let Some(v) = view[row] {
                    nonnull[g] += 1;
                    acc[g] += v;
                }
            };
            cancel_checkpoint(cancel)?;
            if trivial {
                (0..group_of_row.len()).for_each(&mut sum_visit);
            } else {
                mask.for_each_set(&mut sum_visit);
            }
            // Between the passes: turn each sum into the group mean and zero
            // the centred power sums.
            for &g in touched.iter() {
                let g = g as usize;
                if nonnull[g] > 0 {
                    acc[g] /= nonnull[g] as f64;
                }
                m2[g] = 0.0;
                m4[g] = 0.0;
            }
            // Pass 2: centred power sums, same row order.
            cancel_checkpoint(cancel)?;
            let wants_m4 = agg == AggFunc::Kurtosis;
            let mut dev_visit = |row: usize| {
                if let Some(v) = view[row] {
                    let g = group_of_row[row] as usize;
                    accumulate_m2(&mut m2[g], v, acc[g]);
                    if wants_m4 {
                        accumulate_m4(&mut m4[g], v, acc[g]);
                    }
                }
            };
            if trivial {
                (0..group_of_row.len()).for_each(&mut dev_visit);
            } else {
                mask.for_each_set(&mut dev_visit);
            }
            for (i, &g) in touched.iter().enumerate() {
                if i % CANCEL_GROUP_STRIDE == 0 {
                    cancel_checkpoint(cancel)?;
                }
                let g = g as usize;
                group_out[g] = moment_finalize(agg, nonnull[g] as usize, m2[g], m4[g]);
            }
        }
        KernelFamily::OrderStat => {
            // Presence pass: which groups have selected rows at all.
            let mut presence_visit = |row: usize| {
                let g = group_of_row[row] as usize;
                if sel_count[g] == 0 {
                    touched.push(g as u32);
                    nonnull[g] = 0;
                }
                sel_count[g] += 1;
                if view[row].is_some() {
                    nonnull[g] += 1;
                }
            };
            cancel_checkpoint(cancel)?;
            if trivial {
                (0..group_of_row.len()).for_each(&mut presence_visit);
            } else {
                mask.for_each_set(&mut presence_visit);
            }

            if let Some(order) = order {
                // Selection-aware merge over the pre-sorted group runs.
                for (i, &g) in touched.iter().enumerate() {
                    if i % CANCEL_GROUP_STRIDE == 0 {
                        cancel_checkpoint(cancel)?;
                    }
                    let g = g as usize;
                    let (rows, vals) = order.run(g, merge_rows, merge_vals);
                    let selected: &[f64] = if trivial {
                        vals
                    } else {
                        sorted_buf.clear();
                        for (i, &row) in rows.iter().enumerate() {
                            if mask.get(row as usize) {
                                sorted_buf.push(vals[i]);
                            }
                        }
                        sorted_buf
                    };
                    group_out[g] = order_stat_value(agg, selected, dev_buf);
                }
                return Ok(());
            }

            // No precompiled runs (sparse selection, or query-local
            // re-interned codes): bucket the values per group, then run the
            // dictionary-code frequency kernel or sort the bucket.
            let mut total = 0u32;
            for &g in touched.iter() {
                cursors[g as usize] = total;
                total += nonnull[g as usize];
            }
            scatter.clear();
            scatter.resize(total as usize, 0.0);
            let mut scatter_visit = |row: usize| {
                if let Some(v) = view[row] {
                    let g = group_of_row[row] as usize;
                    scatter[cursors[g] as usize] = v;
                    cursors[g] += 1;
                }
            };
            cancel_checkpoint(cancel)?;
            if trivial {
                (0..group_of_row.len()).for_each(&mut scatter_visit);
            } else {
                mask.for_each_set(&mut scatter_visit);
            }
            // cursors[g] now points one past group g's bucket.
            for (i, &g) in touched.iter().enumerate() {
                if i % CANCEL_GROUP_STRIDE == 0 {
                    cancel_checkpoint(cancel)?;
                }
                let g = g as usize;
                let end = cursors[g] as usize;
                let bucket = &mut scatter[end - nonnull[g] as usize..end];
                group_out[g] = match agg {
                    // Dictionary codes: dense frequency counting, no sort.
                    AggFunc::CountDistinct | AggFunc::Mode | AggFunc::Entropy if codes => {
                        for &code in bucket.iter() {
                            freq.add(code);
                        }
                        let value = match agg {
                            AggFunc::CountDistinct => Some(freq.count_distinct()),
                            _ if freq.is_empty() => None,
                            AggFunc::Mode => Some(freq.mode()),
                            AggFunc::Entropy => Some(freq.entropy()),
                            // lint: allow(panic): the outer match arm admits only the three aggs above
                            _ => unreachable!(),
                        };
                        freq.reset();
                        value
                    }
                    _ => {
                        bucket.sort_by(|a, b| a.total_cmp(b));
                        order_stat_value(agg, bucket, dev_buf)
                    }
                };
            }
        }
    }
    Ok(())
}

/// Evaluate an order-statistic aggregate over one group's selected values,
/// already sorted by `total_cmp`. Empty-group semantics mirror
/// [`AggFunc::apply`]: `COUNT_DISTINCT` yields 0, everything else NULL.
fn order_stat_value(agg: AggFunc, sorted: &[f64], dev_buf: &mut Vec<f64>) -> Option<f64> {
    if agg == AggFunc::CountDistinct {
        return Some(count_distinct_sorted(sorted));
    }
    if sorted.is_empty() {
        return None;
    }
    Some(match agg {
        AggFunc::Median => median_sorted(sorted),
        AggFunc::Mad => mad_sorted(sorted, dev_buf),
        AggFunc::Mode => mode_sorted(sorted),
        AggFunc::Entropy => entropy_sorted(sorted),
        // lint: allow(panic): KernelFamily::of routes only order statistics here
        other => unreachable!("{other:?} is not an order statistic"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::feature_vector;
    use feataug_tabular::{Column, Value};

    fn train() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m2", "m9"]))
            .unwrap();
        t.add_column("label", Column::from_i64s(&[0, 1, 0]))
            .unwrap();
        t
    }

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
            .unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m1", "m2", "m2"]))
            .unwrap();
        t.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        t.add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
            .unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400]))
            .unwrap();
        t
    }

    fn query(agg: AggFunc, predicate: Predicate, keys: &[&str]) -> PredicateQuery {
        PredicateQuery {
            agg,
            agg_column: "pprice".into(),
            predicate,
            group_keys: keys.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The engine and the reference path must agree bit for bit.
    fn assert_matches_naive(q: &PredicateQuery, train: &Table, relevant: &Table) {
        let engine = QueryEngine::new(train, relevant);
        let (engine_name, engine_vals) = engine.feature(q).unwrap();
        let (augmented, name) = q.augment(train, relevant).unwrap();
        let naive_vals = feature_vector(&augmented, &name);
        assert_eq!(engine_name, name);
        assert_eq!(engine_vals.len(), naive_vals.len());
        for (i, (e, n)) in engine_vals.iter().zip(&naive_vals).enumerate() {
            assert_eq!(
                e.to_bits(),
                n.to_bits(),
                "row {i} of {}: {e} vs {n}",
                q.to_sql("R")
            );
        }
    }

    #[test]
    fn matches_naive_across_aggregates_and_predicates() {
        let (train, relevant) = (train(), relevant());
        let predicates = [
            Predicate::True,
            Predicate::eq("department", "E"),
            Predicate::eq("department", "ZZZ"),
            Predicate::ge("ts", 250),
            Predicate::between("pprice", 15.0, 35.0),
            Predicate::and(vec![
                Predicate::eq("department", "E"),
                Predicate::le("ts", 350),
            ]),
        ];
        for agg in AggFunc::all() {
            for predicate in &predicates {
                for keys in [&["cname"][..], &["cname", "mid"][..], &["mid"][..]] {
                    assert_matches_naive(&query(*agg, predicate.clone(), keys), &train, &relevant);
                }
            }
        }
    }

    #[test]
    fn fully_filtered_group_yields_null_not_zero_count() {
        let (train, relevant) = (train(), relevant());
        // Rows 0,1 (cname=a) are all filtered out; group "a" must go NULL
        // even for COUNT, because the reference feature table simply lacks
        // that key after filtering.
        let q = query(AggFunc::Count, Predicate::ge("ts", 250), &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        let values = engine.evaluate(&q).unwrap();
        assert_eq!(values, vec![None, Some(2.0), None]);
        assert_matches_naive(&q, &train, &relevant);
    }

    #[test]
    fn group_with_only_null_values_counts_zero() {
        let mut relevant = Table::new("logs");
        relevant
            .add_column("cname", Column::from_strs(&["a", "b"]))
            .unwrap();
        relevant
            .add_column("mid", Column::from_strs(&["m1", "m2"]))
            .unwrap();
        relevant
            .add_column("pprice", Column::from_opt_f64s(&[None, Some(1.0)]))
            .unwrap();
        let train = train();
        let q = query(AggFunc::Count, Predicate::True, &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        // Group "a" is present (one selected row) but has no non-null value:
        // COUNT = 0, unlike an absent group.
        assert_eq!(
            engine.evaluate(&q).unwrap(),
            vec![Some(0.0), Some(1.0), None]
        );
        assert_matches_naive(&q, &train, &relevant);
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![None, Some(1.0), None]);
    }

    #[test]
    fn key_subsets_build_separate_cached_indexes() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        for keys in [&["cname"][..], &["cname", "mid"][..], &["cname"][..]] {
            engine
                .evaluate(&query(AggFunc::Sum, Predicate::True, keys))
                .unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 3);
        assert_eq!(
            stats.group_indexes, 2,
            "repeat key subset must hit the cache"
        );
        assert_eq!(stats.column_views, 1);
        assert_eq!(
            stats.feature_cache_hits, 1,
            "the repeated query must hit the feature LRU"
        );
    }

    #[test]
    fn feature_cache_hits_return_identical_values_and_errors_are_not_cached() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(
            AggFunc::Median,
            Predicate::eq("department", "E"),
            &["cname"],
        );
        let first = engine.evaluate(&q).unwrap();
        let second = engine.evaluate(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().feature_cache_hits, 1);

        let mut bad = q.clone();
        bad.agg_column = "nope".into();
        assert!(engine.evaluate(&bad).is_err());
        assert!(
            engine.evaluate(&bad).is_err(),
            "errors must keep erroring, not be cached"
        );
    }

    #[test]
    fn feature_cache_evicts_stalest_entry_at_capacity() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant).with_feature_cache_capacity(2);
        let a = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let b = query(AggFunc::Avg, Predicate::True, &["cname"]);
        let c = query(AggFunc::Max, Predicate::True, &["cname"]);
        engine.evaluate(&a).unwrap(); // cache: {a}
        engine.evaluate(&b).unwrap(); // cache: {a, b}
        engine.evaluate(&a).unwrap(); // hit; a is now fresher than b
        engine.evaluate(&c).unwrap(); // evicts b
        engine.evaluate(&a).unwrap(); // hit
        engine.evaluate(&b).unwrap(); // miss: was evicted
        let stats = engine.stats();
        assert_eq!(stats.feature_cache_hits, 2);
        assert_eq!(stats.evaluations, 6);
    }

    /// Regression, two layers deep. Historically the displayed SQL did not
    /// escape quotes inside string literals, so two *structurally different*
    /// queries could render to the same text — the literal below used to
    /// read exactly like the two-leaf conjunction. Literals are SQL-escaped
    /// now (quotes doubled), making the rendering injective again; and the
    /// feature cache keys on structure regardless, so neither layer can
    /// alias one query's vector to the other.
    #[test]
    fn textually_tricky_queries_render_distinct_sql_and_cache_separately() {
        let (train, relevant) = (train(), relevant());
        let tricky = query(
            AggFunc::Sum,
            Predicate::eq("department", "E' AND mid = 'm1"),
            &["cname"],
        );
        let conjunction = query(
            AggFunc::Sum,
            Predicate::and(vec![
                Predicate::eq("department", "E"),
                Predicate::eq("mid", "m1"),
            ]),
            &["cname"],
        );
        assert_ne!(
            tricky.to_sql("R"),
            conjunction.to_sql("R"),
            "escaped literals must render structurally different queries differently"
        );
        assert!(
            tricky.to_sql("R").contains("E'' AND mid = ''m1"),
            "the embedded quotes must be doubled: {}",
            tricky.to_sql("R")
        );
        assert_ne!(
            tricky.feature_name(),
            conjunction.feature_name(),
            "distinct SQL means distinct feature names"
        );
        let engine = QueryEngine::new(&train, &relevant);
        // No department is literally named "E' AND mid = 'm1": every group is
        // filtered away.
        assert_eq!(engine.evaluate(&tricky).unwrap(), vec![None, None, None]);
        // The conjunction matches row 0 only (cname=a, dept=E, mid=m1).
        assert_eq!(
            engine.evaluate(&conjunction).unwrap(),
            vec![Some(10.0), None, None]
        );
        assert_eq!(engine.stats().feature_cache_hits, 0);
        assert_matches_naive(&conjunction, &train, &relevant);
    }

    #[test]
    fn lowering_cache_capacity_trims_existing_entries() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let a = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let b = query(AggFunc::Avg, Predicate::True, &["cname"]);
        let c = query(AggFunc::Max, Predicate::True, &["cname"]);
        engine.evaluate(&a).unwrap();
        engine.evaluate(&b).unwrap();
        engine.evaluate(&c).unwrap(); // c is the freshest entry
        let engine = engine.with_feature_cache_capacity(1);
        assert_eq!(
            lock_recover(&engine.core().features).map.len(),
            1,
            "shrinking the capacity must release the trimmed entries"
        );
        engine.evaluate(&c).unwrap();
        assert_eq!(
            engine.stats().feature_cache_hits,
            1,
            "the freshest entry must survive"
        );
        engine.evaluate(&a).unwrap();
        assert_eq!(
            engine.stats().feature_cache_hits,
            1,
            "stale entries must be gone"
        );
    }

    #[test]
    fn default_cache_capacity_scales_down_for_large_tables() {
        assert_eq!(
            super::default_cache_capacity(100),
            MAX_FEATURE_CACHE_ENTRIES
        );
        // 1M rows x 16 B = 16 MB per entry: the byte budget allows only 4,
        // the floor of 16 entries wins (a cache smaller than that is useless).
        assert_eq!(super::default_cache_capacity(1_000_000), 16);
        // 100k rows x 16 B = 1.6 MB per entry -> 40 fit the 64 MB budget.
        let mid = super::default_cache_capacity(100_000);
        assert!((16..MAX_FEATURE_CACHE_ENTRIES).contains(&mid));
        assert!(
            mid * 100_000 * std::mem::size_of::<Option<f64>>() <= super::FEATURE_CACHE_BYTES,
            "within the clamp, the default capacity must respect the byte budget"
        );
        assert!(super::default_cache_capacity(0) >= 16);
    }

    #[test]
    fn env_workers_honours_positive_integers_only() {
        assert_eq!(super::env_workers(Some("4")), Some(4));
        assert_eq!(super::env_workers(Some("1")), Some(1));
        assert_eq!(
            super::env_workers(Some("0")),
            None,
            "zero workers is nonsense"
        );
        assert_eq!(super::env_workers(Some("two")), None);
        assert_eq!(super::env_workers(Some("")), None);
        assert_eq!(super::env_workers(None), None);
    }

    #[test]
    fn zero_capacity_disables_the_feature_cache() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant).with_feature_cache_capacity(0);
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let first = engine.evaluate(&q).unwrap();
        assert_eq!(engine.evaluate(&q).unwrap(), first);
        assert_eq!(engine.stats().feature_cache_hits, 0);
    }

    #[test]
    fn clones_share_compiled_core_and_counters() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let clone = engine.clone();
        engine
            .evaluate(&query(AggFunc::Sum, Predicate::True, &["cname"]))
            .unwrap();
        clone
            .evaluate(&query(AggFunc::Sum, Predicate::True, &["cname"]))
            .unwrap();
        let stats = engine.stats();
        assert_eq!(
            stats.evaluations, 2,
            "clones must report combined throughput"
        );
        assert_eq!(
            stats.group_indexes, 1,
            "clones must reuse the same compiled group index"
        );
        assert_eq!(
            stats.feature_cache_hits, 1,
            "clones must share the feature LRU"
        );
        assert_eq!(engine.stats(), clone.stats());
    }

    #[test]
    fn batch_is_bit_identical_to_serial_at_every_worker_count() {
        let (train, relevant) = (train(), relevant());
        let mut pool = Vec::new();
        let predicates = [
            Predicate::True,
            Predicate::eq("department", "E"),
            Predicate::ge("ts", 250),
            Predicate::between("pprice", 15.0, 35.0),
        ];
        for agg in AggFunc::all() {
            for predicate in &predicates {
                pool.push(query(*agg, predicate.clone(), &["cname"]));
                pool.push(query(*agg, predicate.clone(), &["cname", "mid"]));
            }
        }
        let serial_engine = QueryEngine::new(&train, &relevant);
        let serial: Vec<_> = pool
            .iter()
            .map(|q| serial_engine.evaluate(q).unwrap())
            .collect();
        for workers in [1, 2, 5, 16] {
            let engine = QueryEngine::new(&train, &relevant);
            let batch = engine.evaluate_batch_threads(&pool, workers);
            assert_eq!(batch.len(), pool.len());
            for ((got, want), q) in batch.iter().zip(&serial).zip(&pool) {
                let got = got.as_ref().unwrap();
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(
                        g.map(f64::to_bits),
                        w.map(f64::to_bits),
                        "workers={workers}: {}",
                        q.to_sql("R")
                    );
                }
            }
        }
    }

    #[test]
    fn batch_keeps_input_order_and_reports_per_slot_errors() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let mut bad = query(AggFunc::Sum, Predicate::True, &["cname"]);
        bad.agg_column = "nope".into();
        let pool = vec![
            query(AggFunc::Sum, Predicate::True, &["cname"]),
            bad,
            query(AggFunc::Avg, Predicate::True, &["cname"]),
        ];
        let results = engine.feature_batch_threads(&pool, 3);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(
            results[1].is_err(),
            "the failing query's slot must carry its error"
        );
        assert!(results[2].is_ok());
        assert_eq!(results[0].as_ref().unwrap().0, pool[0].feature_name());
        assert_eq!(results[2].as_ref().unwrap().0, pool[2].feature_name());
    }

    #[test]
    fn default_workers_is_positive_and_env_overridable() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn unmatched_and_untranslatable_train_keys_are_null() {
        let mut train = Table::new("users");
        // "zz" never appears in the relevant table; NULL keys never match.
        train
            .add_column(
                "cname",
                Column::from_opt_strs(&[Some("a"), Some("zz"), None]),
            )
            .unwrap();
        let mut relevant = Table::new("logs");
        relevant
            .add_column("cname", Column::from_strs(&["a", "a"]))
            .unwrap();
        relevant
            .add_column("pprice", Column::from_f64s(&[1.5, 2.5]))
            .unwrap();
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(4.0), None, None]);
        assert_matches_naive(&q, &train, &relevant);
    }

    #[test]
    fn missing_columns_error_like_the_reference_path() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let mut q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        q.agg_column = "nope".into();
        assert!(engine.evaluate(&q).is_err());
        let q2 = query(AggFunc::Sum, Predicate::eq("nope", "x"), &["cname"]);
        assert!(engine.evaluate(&q2).is_err());
        let q3 = query(AggFunc::Sum, Predicate::True, &["nope"]);
        assert!(engine.evaluate(&q3).is_err());
    }

    #[test]
    fn feature_encodes_null_as_nan_and_names_match() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(
            AggFunc::Avg,
            Predicate::eq("department", "E"),
            &["cname", "mid"],
        );
        let (name, values) = engine.feature(&q).unwrap();
        assert_eq!(name, q.feature_name());
        assert_eq!(values.len(), train.num_rows());
        assert!(values[2].is_nan()); // cname=c has no relevant rows
        assert_eq!(values[0], 10.0);
    }

    #[test]
    fn agrees_with_naive_on_a_generated_dataset_pool() {
        use crate::query::QueryCodec;
        use crate::template::QueryTemplate;
        use feataug_datagen::{tmall, GenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = tmall::generate(&GenConfig::tiny());
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            ds.agg_columns.clone(),
            ds.predicate_attrs.clone(),
            ds.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
        let engine = QueryEngine::new(&ds.train, &ds.relevant);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let config = codec.space().sample(&mut rng);
            let q = codec.decode(&config);
            assert_matches_naive(&q, &ds.train, &ds.relevant);
            // Also exercise the cached path a second time.
            let first = engine.evaluate(&q).unwrap();
            let second = engine.evaluate(&q).unwrap();
            assert_eq!(first, second);
        }
        assert!(
            engine.stats().group_indexes <= 4,
            "K has 2 attributes -> at most 3 subsets"
        );
        assert!(
            engine.stats().feature_cache_hits >= 60,
            "every repeat evaluation must be served from the feature LRU"
        );
    }

    #[test]
    fn null_relevant_keys_group_but_never_match_train() {
        let mut relevant = Table::new("logs");
        relevant
            .add_column("cname", Column::from_opt_strs(&[Some("a"), None, None]))
            .unwrap();
        relevant
            .add_column("pprice", Column::from_f64s(&[1.0, 2.0, 3.0]))
            .unwrap();
        let train = train();
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        assert_matches_naive(&q, &train, &relevant);
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(1.0), None, None]);
    }

    #[test]
    fn categorical_agg_column_reinterning_matches_reference() {
        // The reference path filters first, and CatColumn::take re-interns
        // the dictionary — so code-valued aggregations (MODE, MIN, ...) see
        // renumbered codes. Regression test: relevant codes ["b"=0, "a"=1],
        // predicate drops the "b" row, reference re-interns "a" to 0.
        let mut train = Table::new("users");
        train.add_column("k", Column::from_strs(&["u"])).unwrap();
        let mut relevant = Table::new("logs");
        relevant
            .add_column("k", Column::from_strs(&["u", "u"]))
            .unwrap();
        relevant
            .add_column("c", Column::from_strs(&["b", "a"]))
            .unwrap();
        relevant
            .add_column("sel", Column::from_i64s(&[0, 1]))
            .unwrap();
        let q = PredicateQuery {
            agg: AggFunc::Mode,
            agg_column: "c".into(),
            predicate: Predicate::ge("sel", 1),
            group_keys: vec!["k".into()],
        };
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(0.0)]);
        assert_matches_naive(&q, &train, &relevant);
        // All aggregates over a categorical column, filtered and not.
        for agg in AggFunc::all() {
            for pred in [
                Predicate::True,
                Predicate::ge("sel", 1),
                Predicate::eq("c", "a"),
            ] {
                let q = PredicateQuery {
                    agg: *agg,
                    agg_column: "c".into(),
                    predicate: pred,
                    group_keys: vec!["k".into()],
                };
                assert_matches_naive(&q, &train, &relevant);
            }
        }
    }

    #[test]
    fn order_index_is_memoized_per_column_and_key_subset() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        engine
            .evaluate(&query(AggFunc::Median, Predicate::True, &["cname"]))
            .unwrap();
        // Same (column, keys) pair: MAD must reuse MEDIAN's runs.
        engine
            .evaluate(&query(
                AggFunc::Mad,
                Predicate::eq("department", "E"),
                &["cname"],
            ))
            .unwrap();
        assert_eq!(
            engine.stats().order_indexes,
            1,
            "same pair must share one order index"
        );
        // A different key subset compiles its own runs.
        engine
            .evaluate(&query(AggFunc::Mode, Predicate::True, &["cname", "mid"]))
            .unwrap();
        assert_eq!(engine.stats().order_indexes, 2);
        // Streaming / moment aggregates never build order indexes.
        engine
            .evaluate(&query(AggFunc::Var, Predicate::True, &["mid"]))
            .unwrap();
        engine
            .evaluate(&query(AggFunc::Sum, Predicate::True, &["mid"]))
            .unwrap();
        assert_eq!(engine.stats().order_indexes, 2);
    }

    /// Signed zeros, NaNs (both payload signs), infinities, all-NaN groups and
    /// single-element groups must flow through every kernel family with the
    /// reference path's exact bits.
    #[test]
    fn adversarial_floats_match_naive_for_all_aggregates() {
        let mut train = Table::new("users");
        train
            .add_column("k", Column::from_strs(&["a", "b", "c", "d", "e"]))
            .unwrap();
        let mut relevant = Table::new("logs");
        relevant
            .add_column(
                "k",
                Column::from_strs(&["a", "a", "a", "a", "b", "b", "c", "d", "d"]),
            )
            .unwrap();
        relevant
            .add_column(
                "v",
                Column::from_opt_f64s(&[
                    Some(0.0),
                    Some(-0.0),
                    Some(f64::NAN),
                    Some(-f64::NAN),
                    Some(f64::NAN), // group b: all NaN
                    Some(f64::NAN),
                    Some(-0.0), // group c: single element
                    Some(f64::INFINITY),
                    None,
                ]),
            )
            .unwrap();
        relevant
            .add_column("sel", Column::from_i64s(&[0, 1, 2, 3, 4, 5, 6, 7, 8]))
            .unwrap();
        for agg in AggFunc::all() {
            for predicate in [
                Predicate::True,
                Predicate::ge("sel", 2),
                Predicate::le("sel", 6),
            ] {
                let q = PredicateQuery {
                    agg: *agg,
                    agg_column: "v".into(),
                    predicate,
                    group_keys: vec!["k".into()],
                };
                assert_matches_naive(&q, &train, &relevant);
            }
        }
        // Spot-check the fixed semantics end to end: group b is all-NaN, so
        // MIN must be NULL (NaN-encoded), not -INFINITY; and group a's MODE
        // canonicalizes -0.0/0.0 into one value.
        let engine = QueryEngine::new(&train, &relevant);
        let min = engine
            .evaluate(&PredicateQuery {
                agg: AggFunc::Min,
                agg_column: "v".into(),
                predicate: Predicate::True,
                group_keys: vec!["k".into()],
            })
            .unwrap();
        assert_eq!(
            min[1], None,
            "all-NaN group must be NULL, not an infinite sentinel"
        );
        let distinct = engine
            .evaluate(&PredicateQuery {
                agg: AggFunc::CountDistinct,
                agg_column: "v".into(),
                predicate: Predicate::True,
                group_keys: vec!["k".into()],
            })
            .unwrap();
        assert_eq!(
            distinct[0],
            Some(2.0),
            "group a holds two values: 0.0 and NaN"
        );
    }

    #[test]
    fn pool_workers_scale_with_pool_cost() {
        // Small pools don't spawn idle workers…
        assert_eq!(super::pool_workers(8, 0), 1);
        assert_eq!(super::pool_workers(8, 1), 1);
        assert_eq!(super::pool_workers(8, 8), 1);
        assert_eq!(super::pool_workers(8, 9), 2);
        assert_eq!(super::pool_workers(8, 40), 5);
        // …and big pools still cap at the machine-derived count.
        assert_eq!(super::pool_workers(8, 1000), 8);
        assert_eq!(super::pool_workers(2, 1000), 2);
        assert_eq!(super::pool_workers(1, 9), 1);
    }

    #[test]
    fn evaluate_cancel_preempts_and_untripped_token_is_bit_identical() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let queries = [
            query(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            query(AggFunc::Median, Predicate::ge("ts", 250), &["cname", "mid"]),
            query(AggFunc::Var, Predicate::True, &["mid"]),
        ];
        for q in &queries {
            // A tripped token preempts before any result; nothing is cached,
            // so a later plain evaluate still works and matches an untripped
            // cancel-aware evaluate bit for bit.
            let tripped = CancelToken::new();
            tripped.cancel();
            assert!(matches!(
                engine.evaluate_cancel(q, &tripped),
                Err(EngineError::Cancelled)
            ));
            let live = CancelToken::new();
            let with_token = engine.evaluate_cancel(q, &live).unwrap();
            let plain = engine.evaluate(q).unwrap();
            assert_eq!(with_token, plain, "{}", q.to_sql("R"));
        }
        // lookup_cancel: preempted cold, correct warm.
        let q = &queries[0];
        let tripped = CancelToken::new();
        tripped.cancel();
        let fresh = QueryEngine::new(&train, &relevant);
        assert!(matches!(
            fresh.lookup_cancel(q, &[Value::Str("a".into())], &tripped),
            Err(EngineError::Cancelled)
        ));
        let live = CancelToken::new();
        assert_eq!(
            fresh
                .lookup_cancel(q, &[Value::Str("a".into())], &live)
                .unwrap(),
            fresh.lookup(q, &[Value::Str("a".into())]).unwrap()
        );
        // transform_cancel matches transform on the same pinned epoch.
        let live = CancelToken::new();
        assert_eq!(
            fresh.transform_cancel(&queries, &train, &live).unwrap(),
            fresh.transform(&queries, &train).unwrap()
        );
    }

    #[test]
    fn effective_fan_out_workers_short_circuits_on_one_cpu() {
        // A 1-CPU host collapses every request to the inline serial path.
        assert_eq!(super::effective_fan_out_workers(2, 16, 1), 1);
        assert_eq!(super::effective_fan_out_workers(8, 1000, 1), 1);
        // Multi-CPU hosts keep the old clamp semantics.
        assert_eq!(super::effective_fan_out_workers(2, 16, 4), 2);
        assert_eq!(super::effective_fan_out_workers(1, 16, 8), 1);
        assert_eq!(super::effective_fan_out_workers(4, 2, 8), 2);
        assert_eq!(super::effective_fan_out_workers(0, 0, 8), 1);
    }

    #[test]
    fn workers_for_pool_is_positive_and_capped_by_default() {
        let n = super::workers_for_pool(1_000_000);
        assert!(n >= 1);
        // With FEATAUG_THREADS unset this is the auto cap; with it set, the
        // override is authoritative — either way never zero.
        let small = super::workers_for_pool(1);
        assert!(small >= 1);
        if std::env::var("FEATAUG_THREADS").is_err() {
            assert!(small <= n);
        }
    }

    #[test]
    fn transform_on_train_table_matches_evaluate() {
        let (train, relevant) = (train(), relevant());
        let pool = vec![
            query(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            query(AggFunc::Median, Predicate::ge("ts", 250), &["cname", "mid"]),
            query(AggFunc::Count, Predicate::True, &["mid"]),
            query(AggFunc::Var, Predicate::le("ts", 350), &["cname"]),
        ];
        let reference = QueryEngine::new(&train, &relevant);
        let expected: Vec<Vec<Option<f64>>> = pool
            .iter()
            .map(|q| reference.evaluate(q).unwrap())
            .collect();
        let engine = QueryEngine::new(&train, &relevant);
        let got = engine.transform(&pool, &train).unwrap();
        for ((g, e), q) in got.iter().zip(&expected).zip(&pool) {
            assert_eq!(
                g.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                e.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                "transform must match evaluate for {}",
                q.to_sql("R")
            );
        }
    }

    #[test]
    fn second_transform_reuses_cached_group_features() {
        let (train, relevant) = (train(), relevant());
        let pool = vec![
            query(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            query(AggFunc::Avg, Predicate::True, &["cname", "mid"]),
        ];
        let engine = QueryEngine::new(&train, &relevant);
        engine.transform(&pool, &train).unwrap();
        let after_first = engine.stats();
        assert_eq!(after_first.group_features, 2);
        assert_eq!(after_first.evaluations, 2);

        // A different table: fresh gather, zero new aggregation work.
        let mut other = Table::new("serving");
        other
            .add_column("cname", Column::from_strs(&["b", "a", "zz"]))
            .unwrap();
        other
            .add_column("mid", Column::from_strs(&["m2", "m1", "m1"]))
            .unwrap();
        let out = engine.transform(&pool, &other).unwrap();
        assert_eq!(out[0].len(), 3);
        assert_eq!(
            engine.stats(),
            after_first,
            "repeat transform must be a pure cache read"
        );
        // Row values follow the new table's keys: cname=b rows of the SUM
        // query (dept=E keeps ts rows 2,3: 30+40), unseen key -> NULL.
        assert_eq!(out[0], vec![Some(70.0), Some(10.0), None]);
        assert_eq!(out[1][2], None);
    }

    #[test]
    fn transform_leaves_unseen_and_null_keys_null() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let mut held_out = Table::new("held_out");
        held_out
            .add_column(
                "cname",
                Column::from_opt_strs(&[Some("a"), Some("never_seen"), None]),
            )
            .unwrap();
        let out = engine.transform(&[q], &held_out).unwrap();
        assert_eq!(out[0], vec![Some(30.0), None, None]);
    }

    #[test]
    fn transform_errors_when_key_columns_are_missing() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let keyless = Table::new("empty");
        assert!(engine.transform(&[q], &keyless).is_err());
    }

    #[test]
    fn lookup_answers_point_requests_from_cached_features() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]);
        assert_eq!(
            engine.lookup(&q, &[Value::Str("a".into())]).unwrap(),
            Some(10.0)
        );
        assert_eq!(
            engine.lookup(&q, &[Value::Str("b".into())]).unwrap(),
            Some(70.0)
        );
        // Unseen, NULL and type-mismatched keys never match.
        assert_eq!(engine.lookup(&q, &[Value::Str("zz".into())]).unwrap(), None);
        assert_eq!(engine.lookup(&q, &[Value::Null]).unwrap(), None);
        assert_eq!(engine.lookup(&q, &[Value::Int(7)]).unwrap(), None);
        // Arity mismatch is an error, not a silent miss.
        assert!(engine.lookup(&q, &[]).is_err());
        // All lookups above cost exactly one aggregation.
        assert_eq!(engine.stats().evaluations, 1);
        assert_eq!(engine.stats().group_features, 1);
    }

    #[test]
    fn lookup_multi_key_subset() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Avg, Predicate::True, &["cname", "mid"]);
        assert_eq!(
            engine
                .lookup(&q, &[Value::Str("b".into()), Value::Str("m2".into())])
                .unwrap(),
            Some(35.0)
        );
        assert_eq!(
            engine
                .lookup(&q, &[Value::Str("b".into()), Value::Str("m1".into())])
                .unwrap(),
            None
        );
    }

    #[test]
    fn into_owned_keeps_the_compiled_core_and_is_send_static() {
        fn assert_send_sync_static<T: Send + Sync + 'static>(_: &T) {}
        let (train, relevant) = (train(), relevant());
        let borrowed = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]);
        let before = borrowed.evaluate(&q).unwrap();
        let stats_before = borrowed.stats();
        assert!(stats_before.group_indexes >= 1);

        let owned = borrowed.into_owned();
        assert_send_sync_static(&owned);
        assert_eq!(
            owned.stats(),
            stats_before,
            "upgrading must keep every compiled artifact and counter"
        );
        // Tables can be dropped now; the owned engine keeps serving.
        drop((train, relevant));
        let after = owned.evaluate(&q).unwrap();
        assert_eq!(
            before
                .iter()
                .map(|v| v.map(f64::to_bits))
                .collect::<Vec<_>>(),
            after
                .iter()
                .map(|v| v.map(f64::to_bits))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            owned.stats().feature_cache_hits,
            stats_before.feature_cache_hits + 1,
            "the repeat evaluation must hit the carried-over feature LRU"
        );
        // And it crosses threads.
        let q2 = query(AggFunc::Avg, Predicate::True, &["cname", "mid"]);
        let from_thread = std::thread::spawn(move || owned.evaluate(&q2).unwrap())
            .join()
            .unwrap();
        assert_eq!(from_thread.len(), 3);
    }

    #[test]
    fn new_shared_engine_co_owns_its_tables() {
        let (train, relevant) = (Arc::new(train()), Arc::new(relevant()));
        let engine = QueryEngine::new_shared(train.clone(), relevant.clone());
        drop((train, relevant));
        let q = query(AggFunc::Count, Predicate::True, &["cname"]);
        assert_eq!(
            engine.evaluate(&q).unwrap(),
            vec![Some(2.0), Some(2.0), None]
        );
    }

    #[test]
    fn parallel_transform_is_bit_identical_to_serial_at_every_worker_count() {
        let (train, relevant) = (train(), relevant());
        let mut pool = Vec::new();
        let predicates = [
            Predicate::True,
            Predicate::eq("department", "E"),
            Predicate::ge("ts", 250),
        ];
        for agg in AggFunc::all() {
            for predicate in &predicates {
                pool.push(query(*agg, predicate.clone(), &["cname"]));
                pool.push(query(*agg, predicate.clone(), &["cname", "mid"]));
                pool.push(query(*agg, predicate.clone(), &["mid"]));
            }
        }
        let serial_engine = QueryEngine::new(&train, &relevant);
        let serial = serial_engine.transform_threads(&pool, &train, 1).unwrap();
        for workers in [2, 3, 8, 64] {
            let engine = QueryEngine::new(&train, &relevant);
            let parallel = engine.transform_threads(&pool, &train, workers).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for ((got, want), q) in parallel.iter().zip(&serial).zip(&pool) {
                assert_eq!(
                    got.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                    want.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                    "workers={workers}: {}",
                    q.to_sql("R")
                );
            }
        }
    }

    #[test]
    fn parallel_transform_reports_the_first_error_in_input_order() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let mut bad = query(AggFunc::Sum, Predicate::True, &["cname"]);
        bad.agg_column = "nope".into();
        let pool = vec![
            query(AggFunc::Sum, Predicate::True, &["cname"]),
            bad,
            query(AggFunc::Avg, Predicate::True, &["cname"]),
        ];
        for workers in [1, 3] {
            let err = engine
                .transform_threads(&pool, &train, workers)
                .unwrap_err();
            assert!(
                err.to_string().contains("nope"),
                "workers={workers}: expected the bad column's error, got {err}"
            );
        }
    }

    #[test]
    fn datetime_predicate_values_match() {
        let (train, relevant) = (train(), relevant());
        let q = query(
            AggFunc::Sum,
            Predicate::Range {
                column: "ts".into(),
                low: Some(Value::DateTime(150)),
                high: Some(Value::DateTime(350)),
            },
            &["cname"],
        );
        assert_matches_naive(&q, &train, &relevant);
    }
}
