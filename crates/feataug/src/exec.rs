//! The query execution engine: compiled, cache-reusing candidate evaluation.
//!
//! Both search components evaluate thousands of candidate queries against the
//! *same* relevant table. The reference path
//! ([`PredicateQuery::execute`] / [`PredicateQuery::augment`]) pays, per
//! candidate, for: materialising the filtered table, rebuilding the group-by
//! hash index from scratch, rendering join keys, and re-hashing them during
//! the left join. [`QueryEngine`] compiles the `(train, relevant)` pair once
//! per search and amortises all of that:
//!
//! * **memoized group indexes** — for every group-by key subset `k ⊆ K`
//!   encountered, a dense `group_id` per relevant row plus a precomputed
//!   train-row → group-id gather map (categorical dictionary codes are
//!   translated between the two tables once per distinct value, via
//!   [`feataug_tabular::join::KeyMapper`]), so attaching a feature is an O(n)
//!   gather with no join and no string keys;
//! * **cached numeric views** — each aggregated / range-predicate column's
//!   `Vec<Option<f64>>` view is extracted once;
//! * **selection bitmask** — predicates evaluate into a reusable
//!   [`SelectionMask`] ([`feataug_tabular::selection`]); nothing is cloned or
//!   materialised, and trivial predicates skip masking entirely;
//! * **single-pass streaming aggregation** — `SUM/MIN/MAX/COUNT/AVG` stream
//!   through per-group accumulators; the order-sensitive remainder
//!   (`MEDIAN`, `MODE`, ...) bucket their group values in row order and apply
//!   the same [`AggFunc::apply`] the reference path uses.
//!
//! The engine's output is **bit-for-bit identical** to the reference path's
//! `feature_vector(&query.augment(train, relevant)?, &name)`: accumulation
//! visits values in the same ascending row order, presence/NULL semantics
//! mirror group-by + left-join exactly, and the equivalence is enforced by a
//! property test over randomized query pools (`tests/proptests.rs`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use feataug_tabular::groupby::{key_atom, KeyAtom};
use feataug_tabular::join::KeyMapper;
use feataug_tabular::selection::{fill_eq, fill_range_view, SelectionMask};
use feataug_tabular::{AggFunc, Column, Predicate, Table, Value};

use crate::query::PredicateQuery;

/// A compiled grouping of the relevant table by one group-key subset, plus the
/// gather map aligning train rows with groups.
#[derive(Debug)]
struct GroupIndex {
    /// Dense group id per relevant row.
    group_of_row: Vec<u32>,
    /// Number of distinct groups (including NULL-key groups).
    n_groups: usize,
    /// For each train row, the group its key maps to (`None`: NULL key,
    /// value absent from the relevant table, or incompatible key types —
    /// exactly the rows the reference left join leaves NULL).
    train_group: Vec<Option<u32>>,
}

/// Sorted row index over one numeric column: row ids ordered by value, NULLs
/// and NaNs excluded (neither ever satisfies a bounded range predicate).
/// Turns a range leaf into two binary searches plus O(matches) bit sets.
struct SortedIndex {
    rows: Vec<u32>,
    vals: Vec<f64>,
}

/// Inverted index over one categorical column: the row ids holding each
/// dictionary code. Turns an equality leaf into O(matches) bit sets.
struct CatIndex {
    rows_by_code: Vec<Vec<u32>>,
}

/// Reusable, lazily grown evaluation state (interior-mutable so the engine
/// can be shared immutably by the search loops).
#[derive(Default)]
struct EngineState {
    /// `Vec<Option<f64>>` view per relevant column (aggregation targets and
    /// range-predicate operands).
    views: HashMap<String, Rc<Vec<Option<f64>>>>,
    /// Group index per group-key subset, keyed by the exact key list.
    groups: HashMap<Vec<String>, Rc<GroupIndex>>,
    /// Sorted row index per range-predicate column.
    sorted: HashMap<String, Rc<SortedIndex>>,
    /// Inverted row index per categorical equality-predicate column.
    cats: HashMap<String, Rc<CatIndex>>,
    /// Predicate result mask, reused across evaluations.
    mask: SelectionMask,
    /// Scratch mask for conjunction terms.
    scratch: SelectionMask,
    /// Selected-row count per group (presence: a group none of whose rows
    /// survive the predicate yields NULL, like the reference join). Kept
    /// all-zero between evaluations; only the groups in `touched` are dirty
    /// during one, and they are re-zeroed on the way out, so per-query cost
    /// scales with the groups actually hit rather than the group universe.
    sel_count: Vec<u32>,
    /// Groups hit by the current evaluation, in first-touch order.
    touched: Vec<u32>,
    /// Non-null aggregated-value count per touched group.
    nonnull: Vec<u32>,
    /// Streaming accumulator per touched group (sum / min / max).
    acc: Vec<f64>,
    /// Bucket cursors / offsets for the order-preserving slow path.
    cursors: Vec<u32>,
    /// Flat per-group value buckets for the slow path.
    scatter: Vec<f64>,
    /// Per-query remapped view for categorical aggregation columns under a
    /// filtering predicate (see [`remapped_cat_view`]).
    cat_view: Vec<Option<f64>>,
    /// Old-code → re-interned-code scratch for the same path.
    cat_remap: Vec<Option<u32>>,
    /// Final aggregate per touched group.
    group_out: Vec<Option<f64>>,
    /// Number of `evaluate` calls served.
    evaluations: usize,
}

/// Cache and throughput counters of a [`QueryEngine`] (for benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries evaluated so far.
    pub evaluations: usize,
    /// Distinct group-key subsets compiled.
    pub group_indexes: usize,
    /// Distinct column views extracted.
    pub column_views: usize,
}

/// A compiled, cache-reusing execution engine for candidate predicate queries
/// over one `(train, relevant)` table pair.
pub struct QueryEngine<'a> {
    train: &'a Table,
    relevant: &'a Table,
    state: RefCell<EngineState>,
}

impl<'a> QueryEngine<'a> {
    /// Build an engine over the task's table pair. Compilation is lazy: group
    /// indexes and column views are built on first use and memoized for the
    /// lifetime of the engine (one search).
    pub fn new(train: &'a Table, relevant: &'a Table) -> QueryEngine<'a> {
        QueryEngine { train, relevant, state: RefCell::new(EngineState::default()) }
    }

    /// Cache and throughput counters.
    pub fn stats(&self) -> EngineStats {
        let st = self.state.borrow();
        EngineStats {
            evaluations: st.evaluations,
            group_indexes: st.groups.len(),
            column_views: st.views.len(),
        }
    }

    /// Evaluate `query` and return its feature aligned with the training
    /// table's rows (`None` = SQL NULL), exactly as the reference
    /// execute-then-left-join path would produce.
    pub fn evaluate(&self, query: &PredicateQuery) -> feataug_tabular::Result<Vec<Option<f64>>> {
        let st = &mut *self.state.borrow_mut();
        st.evaluations += 1;

        let gi = group_index_cached(st, self.train, self.relevant, &query.group_keys)?;
        let view = view_cached(st, self.relevant, &query.agg_column)?;
        let trivial = query.predicate.is_trivial();
        if !trivial {
            predicate_mask(st, self.relevant, &query.predicate)?;
        }

        // The reference path materialises the filtered table, and
        // `CatColumn::take` re-interns the dictionary — so a categorical
        // aggregation column's numeric view (its codes) is renumbered by
        // first appearance among the *surviving* rows. Reproduce that here;
        // for trivial predicates the reference borrows the unfiltered table
        // and the cached view already matches.
        if !trivial {
            if let Column::Cat(cat) = self.relevant.column(&query.agg_column)? {
                let EngineState { mask, cat_view, cat_remap, .. } = st;
                remapped_cat_view(cat, mask, cat_view, cat_remap);
                let cat_view = std::mem::take(&mut st.cat_view);
                aggregate_groups(st, &gi, &cat_view, query.agg, trivial);
                st.cat_view = cat_view;
            } else {
                aggregate_groups(st, &gi, &view, query.agg, trivial);
            }
        } else {
            aggregate_groups(st, &gi, &view, query.agg, trivial);
        }

        // O(train) gather through the precomputed train-row -> group map.
        // `sel_count > 0` guards against reading stale `group_out` slots of
        // groups the current query never touched.
        let mut out = vec![None; self.train.num_rows()];
        for (slot, tg) in out.iter_mut().zip(&gi.train_group) {
            if let Some(g) = tg {
                let g = *g as usize;
                if st.sel_count[g] > 0 {
                    *slot = st.group_out[g];
                }
            }
        }

        // Restore the all-zero `sel_count` invariant (O(touched groups)).
        for &g in &st.touched {
            st.sel_count[g as usize] = 0;
        }
        Ok(out)
    }

    /// Evaluate `query` into the NaN-encoded feature vector the search loops
    /// consume, together with the feature's column name. Mirrors
    /// `feature_vector(&query.augment(train, relevant)?.0, &name)`.
    pub fn feature(&self, query: &PredicateQuery) -> feataug_tabular::Result<(String, Vec<f64>)> {
        let values = self.evaluate(query)?;
        let encoded = values.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect();
        Ok((query.feature_name(), encoded))
    }
}

/// Fetch (or build and memoize) the numeric view of a relevant-table column.
fn view_cached(
    st: &mut EngineState,
    table: &Table,
    column: &str,
) -> feataug_tabular::Result<Rc<Vec<Option<f64>>>> {
    if let Some(v) = st.views.get(column) {
        return Ok(v.clone());
    }
    let view = Rc::new(table.column(column)?.to_f64_vec());
    st.views.insert(column.to_string(), view.clone());
    Ok(view)
}

/// Fetch (or build and memoize) the group index for one group-key subset.
fn group_index_cached(
    st: &mut EngineState,
    train: &Table,
    relevant: &Table,
    keys: &[String],
) -> feataug_tabular::Result<Rc<GroupIndex>> {
    if let Some(gi) = st.groups.get(keys) {
        return Ok(gi.clone());
    }
    let gi = Rc::new(build_group_index(train, relevant, keys)?);
    st.groups.insert(keys.to_vec(), gi.clone());
    Ok(gi)
}

fn build_group_index(
    train: &Table,
    relevant: &Table,
    keys: &[String],
) -> feataug_tabular::Result<GroupIndex> {
    let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
    if key_refs.is_empty() {
        return Err(feataug_tabular::TabularError::InvalidArgument(
            "group-by needs at least one key".into(),
        ));
    }
    let cols: Vec<&feataug_tabular::Column> =
        key_refs.iter().map(|k| relevant.column(k)).collect::<feataug_tabular::Result<_>>()?;

    // Dense group ids over the relevant table, in first-appearance order
    // (NULL atoms form their own groups, matching the group-by semantics).
    let mut index: HashMap<Vec<KeyAtom>, u32> = HashMap::new();
    let mut group_of_row = Vec::with_capacity(relevant.num_rows());
    let mut key_buf: Vec<KeyAtom> = Vec::with_capacity(cols.len());
    for row in 0..relevant.num_rows() {
        key_buf.clear();
        key_buf.extend(cols.iter().map(|c| key_atom(c, row)));
        let id = match index.get(key_buf.as_slice()) {
            Some(&id) => id,
            None => {
                let id = index.len() as u32;
                index.insert(key_buf.clone(), id);
                id
            }
        };
        group_of_row.push(id);
    }
    let n_groups = index.len();

    // Gather map: each train row's key translated into the relevant table's
    // key space (NULL / unseen / type-mismatched keys never match, exactly
    // like the reference left join).
    let mapper = KeyMapper::new(relevant, train, &key_refs, &key_refs)?;
    let train_group = (0..train.num_rows())
        .map(|row| mapper.key(row).and_then(|k| index.get(&k).copied()))
        .collect();

    Ok(GroupIndex { group_of_row, n_groups, train_group })
}

/// Evaluate a non-trivial predicate into `st.mask`.
fn predicate_mask(
    st: &mut EngineState,
    relevant: &Table,
    predicate: &Predicate,
) -> feataug_tabular::Result<()> {
    let EngineState { views, sorted, cats, mask, scratch, .. } = st;
    match predicate {
        Predicate::And(parts) => {
            mask.reset(relevant.num_rows(), true);
            for part in parts {
                leaf_mask(views, sorted, cats, relevant, part, scratch)?;
                mask.and_assign(scratch);
            }
            Ok(())
        }
        leaf => leaf_mask(views, sorted, cats, relevant, leaf, mask),
    }
}

/// Fetch (or build and memoize) the sorted row index for a range column.
fn sorted_index(
    sorted: &mut HashMap<String, Rc<SortedIndex>>,
    views: &mut HashMap<String, Rc<Vec<Option<f64>>>>,
    relevant: &Table,
    column: &str,
) -> feataug_tabular::Result<Rc<SortedIndex>> {
    if let Some(idx) = sorted.get(column) {
        return Ok(idx.clone());
    }
    let view = match views.get(column) {
        Some(v) => v.clone(),
        None => {
            let v = Rc::new(relevant.column(column)?.to_f64_vec());
            views.insert(column.to_string(), v.clone());
            v
        }
    };
    let mut pairs: Vec<(f64, u32)> = view
        .iter()
        .enumerate()
        .filter_map(|(row, v)| match v {
            Some(x) if !x.is_nan() => Some((*x, row as u32)),
            _ => None,
        })
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaNs excluded"));
    let idx = Rc::new(SortedIndex {
        vals: pairs.iter().map(|(v, _)| *v).collect(),
        rows: pairs.iter().map(|(_, r)| *r).collect(),
    });
    sorted.insert(column.to_string(), idx.clone());
    Ok(idx)
}

/// Fetch (or build and memoize) the inverted index for a categorical column.
fn cat_index(
    cats: &mut HashMap<String, Rc<CatIndex>>,
    cat: &feataug_tabular::column::CatColumn,
    column: &str,
) -> Rc<CatIndex> {
    if let Some(idx) = cats.get(column) {
        return idx.clone();
    }
    let mut rows_by_code = vec![Vec::new(); cat.cardinality()];
    for (row, code) in cat.codes().iter().enumerate() {
        if let Some(c) = code {
            rows_by_code[*c as usize].push(row as u32);
        }
    }
    let idx = Rc::new(CatIndex { rows_by_code });
    cats.insert(column.to_string(), idx.clone());
    idx
}

/// Evaluate one predicate leaf into `out` through the column indexes: an
/// equality or bounded range costs O(matching rows) bit sets instead of a
/// full-column scan. Mask membership is identical to the reference
/// [`Predicate::evaluate`] leaves, so downstream aggregation is unaffected.
/// Recurses for (rare, already-flattened-away) nested `And`s.
fn leaf_mask(
    views: &mut HashMap<String, Rc<Vec<Option<f64>>>>,
    sorted: &mut HashMap<String, Rc<SortedIndex>>,
    cats: &mut HashMap<String, Rc<CatIndex>>,
    relevant: &Table,
    predicate: &Predicate,
    out: &mut SelectionMask,
) -> feataug_tabular::Result<()> {
    let n = relevant.num_rows();
    match predicate {
        Predicate::True => {
            out.reset(n, true);
            Ok(())
        }
        Predicate::Eq { column, value } => {
            let col = relevant.column(column)?;
            match (col, value) {
                (Column::Cat(c), Value::Str(s)) => {
                    let idx = cat_index(cats, c, column);
                    out.reset(n, false);
                    if let Some(code) = c.code_of(s) {
                        for &row in &idx.rows_by_code[code as usize] {
                            out.set(row as usize, true);
                        }
                    }
                }
                // Equality on non-categorical operands (bools, odd manual
                // queries) is rare: fall back to the reference scan.
                _ => fill_eq(col, value, out),
            }
            Ok(())
        }
        Predicate::Range { column, low, high } => {
            let lo = low.as_ref().and_then(|v| v.as_f64());
            let hi = high.as_ref().and_then(|v| v.as_f64());
            if lo.is_none() && hi.is_none() {
                // Unbounded range keeps every non-null row *including NaNs*,
                // which the sorted index deliberately drops: use the view.
                let view = match views.get(column) {
                    Some(v) => v.clone(),
                    None => {
                        let v = Rc::new(relevant.column(column)?.to_f64_vec());
                        views.insert(column.clone(), v.clone());
                        v
                    }
                };
                fill_range_view(&view, None, None, out);
                return Ok(());
            }
            let idx = sorted_index(sorted, views, relevant, column)?;
            // `v < lo` / `v <= hi` are prefix-true over the ascending values,
            // and a NaN bound satisfies neither (empty selection), matching
            // the reference comparisons exactly.
            let start = match lo {
                Some(l) => idx.vals.partition_point(|v| *v < l),
                None => 0,
            };
            let end = match hi {
                Some(h) => idx.vals.partition_point(|v| *v <= h),
                None => idx.vals.len(),
            };
            out.reset(n, false);
            if let Some(rows) = idx.rows.get(start..end) {
                for &row in rows {
                    out.set(row as usize, true);
                }
            }
            Ok(())
        }
        Predicate::And(parts) => {
            out.reset(n, true);
            let mut tmp = SelectionMask::new();
            for part in parts {
                leaf_mask(views, sorted, cats, relevant, part, &mut tmp)?;
                out.and_assign(&tmp);
            }
            Ok(())
        }
    }
}

/// Rebuild the numeric view of a categorical aggregation column the way the
/// reference path sees it after filtering: `CatColumn::take` re-interns the
/// dictionary, so codes are renumbered by first appearance among the selected
/// rows. Only the selected rows' slots are meaningful; aggregation never
/// reads the rest.
fn remapped_cat_view(
    cat: &feataug_tabular::column::CatColumn,
    mask: &SelectionMask,
    out: &mut Vec<Option<f64>>,
    remap: &mut Vec<Option<u32>>,
) {
    out.clear();
    out.resize(cat.len(), None);
    remap.clear();
    remap.resize(cat.cardinality(), None);
    let mut next = 0u32;
    let codes = cat.codes();
    mask.for_each_set(|row| {
        if let Some(code) = codes[row] {
            let slot = &mut remap[code as usize];
            let new_code = match slot {
                Some(c) => *c,
                None => {
                    let c = next;
                    *slot = Some(c);
                    next += 1;
                    c
                }
            };
            out[row] = Some(new_code as f64);
        }
    });
}

/// Aggregate the selected rows' values into `st.group_out` (one
/// `Option<f64>` per touched group), `st.sel_count` (selected rows per
/// group) and `st.touched` (the groups hit, in first-touch order).
///
/// Per-group scratch is initialised lazily on first touch, so a selective
/// query costs O(selected rows + touched groups) regardless of how many
/// groups the index holds; the caller re-zeroes `sel_count` afterwards.
/// Values are visited in ascending row order on every path, so
/// floating-point accumulation matches the reference path bit for bit.
fn aggregate_groups(
    st: &mut EngineState,
    gi: &GroupIndex,
    view: &[Option<f64>],
    agg: AggFunc,
    trivial: bool,
) {
    let n_groups = gi.n_groups;
    let EngineState { mask, sel_count, touched, nonnull, acc, cursors, scatter, group_out, .. } =
        st;
    // Grow (never shrink) the per-group scratch; `sel_count` is all-zero here
    // by invariant, the rest holds stale values that lazy init overwrites.
    if sel_count.len() < n_groups {
        sel_count.resize(n_groups, 0);
        nonnull.resize(n_groups, 0);
        acc.resize(n_groups, 0.0);
        cursors.resize(n_groups, 0);
        group_out.resize(n_groups, None);
    }
    touched.clear();
    let group_of_row = &gi.group_of_row;

    let streaming_init = match agg {
        AggFunc::Sum | AggFunc::Avg => Some(0.0),
        AggFunc::Min => Some(f64::INFINITY),
        AggFunc::Max => Some(f64::NEG_INFINITY),
        AggFunc::Count => Some(0.0),
        _ => None,
    };

    if let Some(init) = streaming_init {
        let mut visit = |row: usize| {
            let g = group_of_row[row] as usize;
            if sel_count[g] == 0 {
                touched.push(g as u32);
                nonnull[g] = 0;
                acc[g] = init;
            }
            sel_count[g] += 1;
            if let Some(v) = view[row] {
                nonnull[g] += 1;
                match agg {
                    AggFunc::Sum | AggFunc::Avg => acc[g] += v,
                    AggFunc::Min => acc[g] = acc[g].min(v),
                    AggFunc::Max => acc[g] = acc[g].max(v),
                    AggFunc::Count => {}
                    _ => unreachable!("streaming path covers only the five cheap functions"),
                }
            }
        };
        if trivial {
            (0..group_of_row.len()).for_each(&mut visit);
        } else {
            mask.for_each_set(&mut visit);
        }
        for &g in touched.iter() {
            let g = g as usize;
            let n = nonnull[g];
            group_out[g] = match agg {
                AggFunc::Count => Some(n as f64),
                _ if n == 0 => None,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => Some(acc[g]),
                AggFunc::Avg => Some(acc[g] / n as f64),
                _ => unreachable!("streaming path covers only the five cheap functions"),
            };
        }
        return;
    }

    // Slow path: bucket each group's non-null values in row order, then apply
    // the same AggFunc::apply the reference group-by uses.
    // Pass 1: count selected / non-null rows per group.
    let mut count_visit = |row: usize| {
        let g = group_of_row[row] as usize;
        if sel_count[g] == 0 {
            touched.push(g as u32);
            nonnull[g] = 0;
        }
        sel_count[g] += 1;
        if view[row].is_some() {
            nonnull[g] += 1;
        }
    };
    if trivial {
        (0..group_of_row.len()).for_each(&mut count_visit);
    } else {
        mask.for_each_set(&mut count_visit);
    }

    // Prefix sums over the touched groups -> bucket cursors.
    let mut total = 0u32;
    for &g in touched.iter() {
        cursors[g as usize] = total;
        total += nonnull[g as usize];
    }
    scatter.clear();
    scatter.resize(total as usize, 0.0);

    // Pass 2: scatter values (ascending row order => ascending within bucket).
    let mut scatter_visit = |row: usize| {
        if let Some(v) = view[row] {
            let g = group_of_row[row] as usize;
            scatter[cursors[g] as usize] = v;
            cursors[g] += 1;
        }
    };
    if trivial {
        (0..group_of_row.len()).for_each(&mut scatter_visit);
    } else {
        mask.for_each_set(&mut scatter_visit);
    }

    // cursors[g] now points one past group g's bucket.
    for &g in touched.iter() {
        let g = g as usize;
        let end = cursors[g] as usize;
        let start = end - nonnull[g] as usize;
        group_out[g] = agg.apply(&scatter[start..end]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::feature_vector;
    use feataug_tabular::{Column, Value};

    fn train() -> Table {
        let mut t = Table::new("users");
        t.add_column("cname", Column::from_strs(&["a", "b", "c"])).unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m2", "m9"])).unwrap();
        t.add_column("label", Column::from_i64s(&[0, 1, 0])).unwrap();
        t
    }

    fn relevant() -> Table {
        let mut t = Table::new("logs");
        t.add_column("cname", Column::from_strs(&["a", "a", "b", "b"])).unwrap();
        t.add_column("mid", Column::from_strs(&["m1", "m1", "m2", "m2"])).unwrap();
        t.add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0])).unwrap();
        t.add_column("department", Column::from_strs(&["E", "H", "E", "E"])).unwrap();
        t.add_column("ts", Column::from_datetimes(&[100, 200, 300, 400])).unwrap();
        t
    }

    fn query(agg: AggFunc, predicate: Predicate, keys: &[&str]) -> PredicateQuery {
        PredicateQuery {
            agg,
            agg_column: "pprice".into(),
            predicate,
            group_keys: keys.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The engine and the reference path must agree bit for bit.
    fn assert_matches_naive(q: &PredicateQuery, train: &Table, relevant: &Table) {
        let engine = QueryEngine::new(train, relevant);
        let (engine_name, engine_vals) = engine.feature(q).unwrap();
        let (augmented, name) = q.augment(train, relevant).unwrap();
        let naive_vals = feature_vector(&augmented, &name);
        assert_eq!(engine_name, name);
        assert_eq!(engine_vals.len(), naive_vals.len());
        for (i, (e, n)) in engine_vals.iter().zip(&naive_vals).enumerate() {
            assert_eq!(e.to_bits(), n.to_bits(), "row {i} of {}: {e} vs {n}", q.to_sql("R"));
        }
    }

    #[test]
    fn matches_naive_across_aggregates_and_predicates() {
        let (train, relevant) = (train(), relevant());
        let predicates = [
            Predicate::True,
            Predicate::eq("department", "E"),
            Predicate::eq("department", "ZZZ"),
            Predicate::ge("ts", 250),
            Predicate::between("pprice", 15.0, 35.0),
            Predicate::and(vec![Predicate::eq("department", "E"), Predicate::le("ts", 350)]),
        ];
        for agg in AggFunc::all() {
            for predicate in &predicates {
                for keys in [&["cname"][..], &["cname", "mid"][..], &["mid"][..]] {
                    assert_matches_naive(&query(*agg, predicate.clone(), keys), &train, &relevant);
                }
            }
        }
    }

    #[test]
    fn fully_filtered_group_yields_null_not_zero_count() {
        let (train, relevant) = (train(), relevant());
        // Rows 0,1 (cname=a) are all filtered out; group "a" must go NULL
        // even for COUNT, because the reference feature table simply lacks
        // that key after filtering.
        let q = query(AggFunc::Count, Predicate::ge("ts", 250), &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        let values = engine.evaluate(&q).unwrap();
        assert_eq!(values, vec![None, Some(2.0), None]);
        assert_matches_naive(&q, &train, &relevant);
    }

    #[test]
    fn group_with_only_null_values_counts_zero() {
        let mut relevant = Table::new("logs");
        relevant.add_column("cname", Column::from_strs(&["a", "b"])).unwrap();
        relevant.add_column("mid", Column::from_strs(&["m1", "m2"])).unwrap();
        relevant
            .add_column("pprice", Column::from_opt_f64s(&[None, Some(1.0)]))
            .unwrap();
        let train = train();
        let q = query(AggFunc::Count, Predicate::True, &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        // Group "a" is present (one selected row) but has no non-null value:
        // COUNT = 0, unlike an absent group.
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(0.0), Some(1.0), None]);
        assert_matches_naive(&q, &train, &relevant);
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![None, Some(1.0), None]);
    }

    #[test]
    fn key_subsets_build_separate_cached_indexes() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        for keys in [&["cname"][..], &["cname", "mid"][..], &["cname"][..]] {
            engine.evaluate(&query(AggFunc::Sum, Predicate::True, keys)).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.evaluations, 3);
        assert_eq!(stats.group_indexes, 2, "repeat key subset must hit the cache");
        assert_eq!(stats.column_views, 1);
    }

    #[test]
    fn unmatched_and_untranslatable_train_keys_are_null() {
        let mut train = Table::new("users");
        // "zz" never appears in the relevant table; NULL keys never match.
        train
            .add_column("cname", Column::from_opt_strs(&[Some("a"), Some("zz"), None]))
            .unwrap();
        let mut relevant = Table::new("logs");
        relevant.add_column("cname", Column::from_strs(&["a", "a"])).unwrap();
        relevant.add_column("pprice", Column::from_f64s(&[1.5, 2.5])).unwrap();
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(4.0), None, None]);
        assert_matches_naive(&q, &train, &relevant);
    }

    #[test]
    fn missing_columns_error_like_the_reference_path() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let mut q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        q.agg_column = "nope".into();
        assert!(engine.evaluate(&q).is_err());
        let q2 = query(AggFunc::Sum, Predicate::eq("nope", "x"), &["cname"]);
        assert!(engine.evaluate(&q2).is_err());
        let q3 = query(AggFunc::Sum, Predicate::True, &["nope"]);
        assert!(engine.evaluate(&q3).is_err());
    }

    #[test]
    fn feature_encodes_null_as_nan_and_names_match() {
        let (train, relevant) = (train(), relevant());
        let engine = QueryEngine::new(&train, &relevant);
        let q = query(AggFunc::Avg, Predicate::eq("department", "E"), &["cname", "mid"]);
        let (name, values) = engine.feature(&q).unwrap();
        assert_eq!(name, q.feature_name());
        assert_eq!(values.len(), train.num_rows());
        assert!(values[2].is_nan()); // cname=c has no relevant rows
        assert_eq!(values[0], 10.0);
    }

    #[test]
    fn agrees_with_naive_on_a_generated_dataset_pool() {
        use crate::query::QueryCodec;
        use crate::template::QueryTemplate;
        use feataug_datagen::{tmall, GenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = tmall::generate(&GenConfig::tiny());
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            ds.agg_columns.clone(),
            ds.predicate_attrs.clone(),
            ds.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
        let engine = QueryEngine::new(&ds.train, &ds.relevant);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let config = codec.space().sample(&mut rng);
            let q = codec.decode(&config);
            assert_matches_naive(&q, &ds.train, &ds.relevant);
            // Also exercise the cached path a second time.
            let first = engine.evaluate(&q).unwrap();
            let second = engine.evaluate(&q).unwrap();
            assert_eq!(first, second);
        }
        assert!(engine.stats().group_indexes <= 4, "K has 2 attributes -> at most 3 subsets");
    }

    #[test]
    fn null_relevant_keys_group_but_never_match_train() {
        let mut relevant = Table::new("logs");
        relevant
            .add_column("cname", Column::from_opt_strs(&[Some("a"), None, None]))
            .unwrap();
        relevant.add_column("pprice", Column::from_f64s(&[1.0, 2.0, 3.0])).unwrap();
        let train = train();
        let q = query(AggFunc::Sum, Predicate::True, &["cname"]);
        assert_matches_naive(&q, &train, &relevant);
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(1.0), None, None]);
    }

    #[test]
    fn categorical_agg_column_reinterning_matches_reference() {
        // The reference path filters first, and CatColumn::take re-interns
        // the dictionary — so code-valued aggregations (MODE, MIN, ...) see
        // renumbered codes. Regression test: relevant codes ["b"=0, "a"=1],
        // predicate drops the "b" row, reference re-interns "a" to 0.
        let mut train = Table::new("users");
        train.add_column("k", Column::from_strs(&["u"])).unwrap();
        let mut relevant = Table::new("logs");
        relevant.add_column("k", Column::from_strs(&["u", "u"])).unwrap();
        relevant.add_column("c", Column::from_strs(&["b", "a"])).unwrap();
        relevant.add_column("sel", Column::from_i64s(&[0, 1])).unwrap();
        let q = PredicateQuery {
            agg: AggFunc::Mode,
            agg_column: "c".into(),
            predicate: Predicate::ge("sel", 1),
            group_keys: vec!["k".into()],
        };
        let engine = QueryEngine::new(&train, &relevant);
        assert_eq!(engine.evaluate(&q).unwrap(), vec![Some(0.0)]);
        assert_matches_naive(&q, &train, &relevant);
        // All aggregates over a categorical column, filtered and not.
        for agg in AggFunc::all() {
            for pred in [Predicate::True, Predicate::ge("sel", 1), Predicate::eq("c", "a")] {
                let q = PredicateQuery {
                    agg: *agg,
                    agg_column: "c".into(),
                    predicate: pred,
                    group_keys: vec!["k".into()],
                };
                assert_matches_naive(&q, &train, &relevant);
            }
        }
    }

    #[test]
    fn datetime_predicate_values_match() {
        let (train, relevant) = (train(), relevant());
        let q = query(
            AggFunc::Sum,
            Predicate::Range {
                column: "ts".into(),
                low: Some(Value::DateTime(150)),
                high: Some(Value::DateTime(350)),
            },
            &["cname"],
        );
        assert_matches_naive(&q, &train, &relevant);
    }
}
