//! # feataug
//!
//! A Rust reproduction of **FeatAug** (Qi, Zheng, Wang — ICDE 2024): automatic feature
//! augmentation from one-to-many relationship tables via predicate-aware SQL query generation.
//!
//! Given a training table `D`, a relevant table `R` with a foreign key into `D`, and a
//! downstream ML model, FeatAug searches for group-by aggregation queries *with predicates*
//!
//! ```sql
//! SELECT k, agg(a) AS feature FROM R
//! WHERE pred(p1) AND ... AND pred(pw)
//! GROUP BY k
//! ```
//!
//! whose result, left-joined onto `D`, most improves the model's validation performance.
//!
//! The crate is organised around the paper's two components:
//!
//! * [`generation`] — **SQL Query Generation** (paper Section V): the query pool of a fixed
//!   [`template::QueryTemplate`] is encoded as a hyperparameter space ([`query::QueryCodec`])
//!   and searched with TPE, warm-started from a low-cost proxy ([`proxy::LowCostProxy`]).
//! * [`template_id`] — **Query Template Identification** (paper Section VI): beam search over
//!   attribute combinations for the `WHERE` clause, accelerated by the proxy (Optimization 1)
//!   and a learned template-performance predictor (Optimization 2).
//!
//! [`pipeline::FeatAug`] glues the two together into the end-to-end system evaluated in the
//! paper, and [`baselines`] contains the comparison methods (Featuretools + selectors, Random,
//! ARDA-style, AutoFeature-style).
//!
//! ## The query execution engine
//!
//! Both search components funnel every candidate through **one shared** [`exec::QueryEngine`]
//! per `(train, relevant)` pair — a compiled, cache-reusing, thread-parallel evaluator. Its
//! immutable compiled core (shared by every handle and worker thread):
//!
//! * a **group index per group-key subset** `k ⊆ K` — dense group ids over the relevant table
//!   plus a train-row → group gather map with categorical dictionary codes translated between
//!   the tables once (no joins, no string keys at evaluation time);
//! * a **numeric view per column** touched by aggregations or range predicates, plus sorted /
//!   inverted predicate indexes;
//! * an **evaluation-level feature LRU**: TPE's near-duplicate resamples skip whole
//!   evaluations.
//!
//! Per-worker scratch (selection bitmasks, aggregation buffers) lives in a pool, and
//! [`exec::QueryEngine::evaluate_batch`] fans candidate pools across a
//! [`std::thread::scope`]-based worker pool. The engine is `Clone` — clones are cheap handles
//! onto the same caches, which is how the pipeline shares one engine across QTI, generation and
//! the baselines. Output is bit-for-bit identical to the reference path
//! ([`query::PredicateQuery::augment`]) at any thread count; the reference stays in place as
//! the semantic specification and the equivalence is enforced by property tests over randomized
//! query pools at several worker counts.
//!
//! ## Quickstart
//!
//! ```no_run
//! use feataug::pipeline::{FeatAug, FeatAugConfig};
//! use feataug::problem::AugTask;
//! use feataug_ml::{ModelKind, Task};
//!
//! # fn get_tables() -> (feataug_tabular::Table, feataug_tabular::Table) { unimplemented!() }
//! let (train, relevant) = get_tables();
//! let task = AugTask::new(train, relevant, vec!["user_id".into()], "label", Task::BinaryClassification)
//!     .with_agg_columns(vec!["pprice".into()])
//!     .with_predicate_attrs(vec!["department".into(), "timestamp".into()]);
//! let result = FeatAug::new(FeatAugConfig::fast(ModelKind::Linear)).augment(&task);
//! println!("augmented table has {} columns", result.augmented_train.num_columns());
//! ```

pub mod baselines;
pub mod encoding;
pub mod evaluation;
pub mod exec;
pub mod generation;
pub mod multi;
pub mod pipeline;
pub mod problem;
pub mod proxy;
pub mod query;
pub mod template;
pub mod template_id;

pub use exec::{default_workers, EngineStats, QueryEngine};
pub use pipeline::{FeatAug, FeatAugConfig, FeatAugResult};
pub use problem::AugTask;
pub use proxy::LowCostProxy;
pub use query::{PredicateQuery, QueryCodec};
pub use template::QueryTemplate;
