//! # feataug
//!
//! A Rust reproduction of **FeatAug** (Qi, Zheng, Wang — ICDE 2024): automatic feature
//! augmentation from one-to-many relationship tables via predicate-aware SQL query generation.
//!
//! Given a training table `D`, a relevant table `R` with a foreign key into `D`, and a
//! downstream ML model, FeatAug searches for group-by aggregation queries *with predicates*
//!
//! ```sql
//! SELECT k, agg(a) AS feature FROM R
//! WHERE pred(p1) AND ... AND pred(pw)
//! GROUP BY k
//! ```
//!
//! whose result, left-joined onto `D`, most improves the model's validation performance.
//!
//! The crate is organised around the paper's two components:
//!
//! * [`generation`] — **SQL Query Generation** (paper Section V): the query pool of a fixed
//!   [`template::QueryTemplate`] is encoded as a hyperparameter space ([`query::QueryCodec`])
//!   and searched with TPE, warm-started from a low-cost proxy ([`proxy::LowCostProxy`]).
//! * [`template_id`] — **Query Template Identification** (paper Section VI): beam search over
//!   attribute combinations for the `WHERE` clause, accelerated by the proxy (Optimization 1)
//!   and a learned template-performance predictor (Optimization 2).
//!
//! [`pipeline::FeatAug`] glues the two together into the end-to-end system evaluated in the
//! paper, and [`baselines`] contains the comparison methods (Featuretools + selectors, Random,
//! ARDA-style, AutoFeature-style).
//!
//! ## The query execution engine
//!
//! Both search components funnel every candidate through **one shared** [`exec::QueryEngine`]
//! per `(train, relevant)` pair — a compiled, cache-reusing, thread-parallel evaluator. Its
//! immutable compiled core (shared by every handle and worker thread):
//!
//! * a **group index per group-key subset** `k ⊆ K` — dense group ids over the relevant table
//!   plus a train-row → group gather map with categorical dictionary codes translated between
//!   the tables once (no joins, no string keys at evaluation time);
//! * a **numeric view per column** touched by aggregations or range predicates, plus sorted /
//!   inverted predicate indexes;
//! * an **evaluation-level feature LRU**: TPE's near-duplicate resamples skip whole
//!   evaluations.
//!
//! Per-worker scratch (selection bitmasks, aggregation buffers) lives in a pool, and
//! [`exec::QueryEngine::evaluate_batch`] fans candidate pools across a
//! [`std::thread::scope`]-based worker pool sized by pool cost
//! ([`exec::workers_for_pool`]; `FEATAUG_THREADS` overrides). The engine is `Clone` — clones
//! are cheap handles onto the same caches, which is how the pipeline shares one engine across
//! QTI, generation and the baselines. Output is bit-for-bit identical to the reference path
//! ([`query::PredicateQuery::augment`]) at any thread count; the reference stays in place as
//! the semantic specification and the equivalence is enforced by property tests over randomized
//! query pools at several worker counts.
//!
//! ## Fit / transform / serve
//!
//! Discovery is the expensive, offline half; applying the discovered queries
//! to *unseen* rows is where they earn their keep. The top-level API splits
//! accordingly:
//!
//! * [`pipeline::FeatAug::fit`] validates the task ([`problem::AugTask::validate`] — a
//!   malformed task returns an [`problem::AugTaskError`] instead of panicking mid-search),
//!   runs QTI + generation, and returns an [`pipeline::AugModel`];
//! * [`pipeline::AugModel::transform`] materialises every planned feature onto **any** table
//!   carrying the key columns (train, test split, live batch) — each query's aggregation runs
//!   once per model, memoized per-group in the engine core, so N tables pay N gathers and one
//!   aggregation;
//! * [`pipeline::AugModel::serve`] answers single-key point lookups from the same cached
//!   per-group features — the online half of offline→online;
//! * [`pipeline::AugModel::prepare`] builds a [`serving::ServingHandle`] — the production
//!   form of `serve`: every planned query resolved to an interned feature slot, every key
//!   subset to a pre-built key→group probe, so the warm lookup path is hash probes plus a
//!   slice copy with **zero heap allocation** (and `lookup_batch` fans across the worker
//!   pool);
//! * [`pipeline::FeatAug::fit_owned`] / [`pipeline::AugModel::compile_shared`] /
//!   [`pipeline::AugModel::into_owned`] produce an [`pipeline::OwnedAugModel`]
//!   (`Arc`-backed tables, `Send + Sync + 'static`) that can live in a long-running
//!   serving process — no caller-held tables, no `sub_tasks` vector for
//!   [`multi::fit_multi_owned`];
//! * [`query::AugPlan`] is the portable artifact in between: plain-data queries, renderable to
//!   SQL ([`query::AugPlan::to_sql`]) and round-trippable through a hand-rolled text format
//!   ([`query::AugPlan::to_plan_text`] / [`query::AugPlan::from_plan_text`]), recompiled into
//!   a serving model by [`pipeline::AugModel::compile`];
//! * [`pipeline::FeatAug::augment`] survives as a thin `fit` + `transform(train)` wrapper,
//!   bit-identical to the historical one-shot pipeline.
//!
//! ## Live ingestion: epoch-versioned engine core
//!
//! The engine core is a **copy-on-write epoch**:
//! [`exec::QueryEngine::append_relevant`] ingests a batch of new
//! relevant-table rows by building the next epoch off to the side — only the
//! touched groups are recomputed (streaming aggregates resume per-group delta
//! accumulators, order-stat indexes merge the batch as lazy per-group sorted
//! runs, untouched artifacts are shared with the prior epoch by `Arc`) — and
//! publishing it with one atomic swap. Readers never block behind ingestion:
//! every lookup/transform/batch pins one epoch, in-flight work finishes on
//! the epoch it pinned, and the next request observes the append atomically.
//! Prepared [`serving::ServingHandle`]s follow the epochs by themselves, and
//! results after an append are property-tested bit-identical to a full refit
//! over the concatenated table.
//!
//! ## Multi-hop schemas: join-path search over a table graph
//!
//! Real warehouses rarely hand FeatAug its one relevant table; the signal
//! may sit two joins away. [`schema::SchemaGraph`] is the catalog: register
//! every table once, declare foreign-key edges (arity- and type-checked),
//! or let [`schema::SchemaGraph::infer_edges`] propose joinability edges
//! from key-name/type agreement plus value-containment sampling. From
//! there, [`schema::enumerate_paths`] walks acyclic [`schema::JoinPath`]s
//! to a hop cap, and [`schema::fit_schema`] runs the FeatNavigator/ARDA-
//! style budget: every candidate path gets a low-cost proxy score, only
//! the top `path_budget` paths are promoted to a full TPE search. A
//! promoted path is compiled by composing per-hop gather maps into one
//! virtual relevant view — bit-identical to the eagerly pre-joined table,
//! property-tested — which the existing [`exec::QueryEngine`] consumes
//! unchanged. [`multi::fit_multi`] is the degenerate depth-1 case. Fitted
//! plans carry their hops through the versioned plan text (`AUGPLAN 2`)
//! and recompile against a registered graph on the serving side via
//! [`schema::SchemaGraph::compile`].
//!
//! ## Invariants as static analysis
//!
//! The conventions the serving stack relies on — no panics reachable from a
//! lookup, poison-tolerant lock access in a declared order, zero allocation
//! on the warm path, `catch_unwind` around every worker closure, failpoint
//! names in sync with the chaos suite — are enforced statically by the
//! workspace's own lint pass (`cargo run -p feataug-lint -- --deny`; CI's
//! `invariants` job). The lints, the `// lint: allow(...)` suppression
//! grammar, and the invariant each encodes are documented in
//! `crates/lint/README.md`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use feataug::pipeline::{AugModel, FeatAug, FeatAugConfig};
//! use feataug::problem::AugTask;
//! use feataug::query::AugPlan;
//! use feataug_ml::{ModelKind, Task};
//! use feataug_tabular::Value;
//!
//! # fn get_tables() -> (feataug_tabular::Table, feataug_tabular::Table, feataug_tabular::Table) { unimplemented!() }
//! let (train, test, relevant) = get_tables();
//! let task = AugTask::new(train, relevant, vec!["user_id".into()], "label", Task::BinaryClassification)
//!     .with_agg_columns(vec!["pprice".into()])
//!     .with_predicate_attrs(vec!["department".into(), "timestamp".into()]);
//!
//! // Offline: discover predicate-aware aggregation queries once.
//! let model = FeatAug::new(FeatAugConfig::fast(ModelKind::Linear)).fit(&task)?;
//! for sql in model.plan().to_sql() {
//!     println!("{sql}");
//! }
//!
//! // Apply them to the training table AND to unseen rows.
//! let augmented_train = model.transform(&task.train)?;
//! let augmented_test = model.transform(&test)?;
//!
//! // Online: point lookups straight from the cached per-group features.
//! let features = model.serve(&[Value::Str("alice".into())])?;
//!
//! // Production serving: the fitted model is already owned (`Arc`-backed,
//! // Send + Sync + 'static) — prepare the allocation-free lookup handle.
//! let handle = model.prepare()?;
//! let mut out = Vec::new();
//! handle.lookup(&[Value::Str("alice".into())], &mut out)?; // zero-alloc warm path
//!
//! // Live ingestion: append new relevant rows as one atomic epoch. Only the
//! // touched groups are recomputed; concurrent lookups never block, and the
//! // prepared handle serves the new epoch on its next request.
//! # fn get_new_rows() -> feataug_tabular::Table { unimplemented!() }
//! let epoch = model.append_relevant(&get_new_rows())?;
//! println!("epoch {}: +{} rows, {} groups touched", epoch.epoch, epoch.appended_rows, epoch.touched_groups);
//! handle.lookup(&[Value::Str("alice".into())], &mut out)?; // sees the appended rows
//!
//! // Survivable serving: an admission-controlled tier in front of the handle
//! // (bounded queue, deadlines, load shedding, graceful degradation) that
//! // also supports atomic hot-swap of a recompiled model.
//! let tier = feataug::ServingTier::new(std::sync::Arc::new(handle), feataug::TierConfig::default());
//! let features = tier.lookup(&[Value::Str("alice".into())])?;
//!
//! // Ship the plan as text; recompile it elsewhere (borrowed or Arc-owned).
//! let text = model.plan().to_plan_text();
//! let plan = AugPlan::from_plan_text(&text).unwrap();
//! let serving = AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())?;
//! let swapped_in = serving.prepare()?;
//! tier.install(std::sync::Arc::new(swapped_in)); // atomic hot-swap; warm lookups never block
//! std::thread::spawn(move || serving.serve(&[Value::Str("alice".into())])); // Send + 'static
//!
//! // Key-sharded serving: partition the relevant table by a hash of the
//! // task's key columns into N independent shard engines behind one router.
//! // Routed lookups are bit-identical to the unsharded path; appends split
//! // by the same hash, each shard publishing its own epochs under a single
//! // router generation. The tier accepts the sharded handle unchanged, and
//! // per-request deadlines preempt a slow lookup *mid-kernel* through
//! // cancellation checkpoints (surfacing as the same all-NULL degradation
//! // as a deadline observed at a batch boundary).
//! use feataug::{ShardRouter, ShardedServingHandle};
//! let plan = model.plan().clone();
//! let router = ShardRouter::build_for_plan(task.train.clone(), &task.relevant, &plan, 4)?;
//! let sharded = ShardedServingHandle::prepare(&router, &plan)?;
//! let shard_tier = feataug::ServingTier::new(sharded, feataug::TierConfig::default());
//! let row = shard_tier.lookup_deadline(
//!     &[Value::Str("alice".into())],
//!     std::time::Duration::from_micros(250),
//! )?;
//! router.append_relevant(&get_new_rows())?; // hash-split across shards; handles follow live
//!
//! // Multi-hop: register the whole schema (declared foreign keys, plus
//! // sampled joinability inference) and let budgeted path search decide
//! // which join paths earn a full search. Promoted paths fit through a
//! // composed gather-map view; their plans carry the hops and recompile
//! // against a registered graph on the serving side.
//! use feataug::schema::{SchemaGraph, SchemaTask};
//! # fn get_more_tables() -> (feataug_tabular::Table, feataug_tabular::Table) { unimplemented!() }
//! let (order_items, products) = get_more_tables();
//! let mut graph = SchemaGraph::new();
//! graph.register(task.train.clone())?; // the training table, named "train"
//! graph.register(task.relevant.clone())?; // one hop away: "orders"
//! graph.register(order_items)?; // two hops away
//! graph.register(products)?; // three hops away
//! graph.declare_edge("train", "orders", &["user_id"], &["user_id"])?;
//! graph.declare_edge("orders", "order_items", &["order_id"], &["order_id"])?;
//! graph.infer_edges(&Default::default())?; // e.g. order_items.product_id ⊆ products.product_id
//! let schema_task = SchemaTask::new(graph, "train", "label", Task::BinaryClassification)
//!     .with_max_hops(2)
//!     .with_path_budget(2);
//! let fitted = feataug::fit_schema(&FeatAugConfig::fast(ModelKind::Linear), &schema_task)?;
//! println!("{} paths enumerated, {} promoted", fitted.stats().candidates, fitted.stats().promoted);
//! let augmented = fitted.transform(&task.train)?; // union of every promoted path's features
//! for plan in fitted.plans() {
//!     let text = plan.to_plan_text(); // `AUGPLAN 2`, one `hop` line per join
//!     let served = schema_task.graph.compile("train", AugPlan::from_plan_text(&text).unwrap())?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baselines;
pub mod encoding;
pub mod evaluation;
pub mod exec;
#[cfg(any(test, feature = "failpoints"))]
pub mod failpoint;
pub mod generation;
pub mod multi;
pub mod pipeline;
pub mod problem;
pub mod proxy;
pub mod query;
pub mod schema;
pub mod serving;
pub mod template;
pub mod template_id;

pub use exec::{
    default_workers, workers_for_pool, EngineError, EngineResult, EngineStats, Epoch, EpochCell,
    QueryEngine, TableHandle,
};
pub use pipeline::{AugModel, FeatAug, FeatAugConfig, FeatAugResult, OwnedAugModel};
pub use problem::{AugTask, AugTaskError};
pub use proxy::LowCostProxy;
pub use query::{
    AugPlan, PlanAnalysisError, PlanHop, PlanParseError, PlanParseErrorKind, PlannedQuery,
    PredicateQuery, QueryCodec,
};
pub use schema::{fit_schema, JoinPath, SchemaAugModel, SchemaError, SchemaGraph, SchemaTask};
pub use serving::shard::{ShardEpoch, ShardRouter, ShardedServingHandle};
pub use serving::tier::{ServingModel, ServingTier, TierConfig, TierError, TierStats};
pub use serving::ServingHandle;
pub use template::QueryTemplate;

/// Evaluate a named failpoint (see [`failpoint`]). Expands to nothing unless
/// the build carries the `failpoints` feature or is the crate's own test
/// build, so production binaries pay zero cost at every site.
#[cfg(any(test, feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::failpoint::eval($name)
    };
}

/// No-op form of [`fail_point!`] for builds without the fault-injection
/// harness.
#[cfg(not(any(test, feature = "failpoints")))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
}
