//! Fault-injection harness: named failpoints the chaos tests arm to force
//! panics and delays at chosen spots inside the engine and the serving tier.
//!
//! Compiled only under `cfg(any(test, feature = "failpoints"))`; a production
//! build's [`crate::fail_point!`] call sites expand to nothing. Even with the
//! feature on, an unarmed process pays one atomic load per site — the
//! registry is an [`OnceLock`] that is never initialised until a test calls
//! [`set`], so the serving hot path stays allocation-free.
//!
//! The registered sites:
//!
//! | name                | fires in                                          |
//! |---------------------|---------------------------------------------------|
//! | `exec.index.build`  | group-index compilation (outside any engine lock) |
//! | `exec.index.insert` | group-index memoization, **write lock held** — a  |
//! |                     | `Panic` here genuinely poisons the memo map       |
//! | `exec.kernel`       | per-candidate aggregation (batch worker bodies)   |
//! | `exec.gather`       | the transform path's per-query gather             |
//! | `exec.ingest.build` | start of `append_relevant`'s next-epoch build,    |
//! |                     | inside the panic-contained region                 |
//! | `exec.ingest.publish` | end of the epoch build, just before the swap    |
//! |                     | publishes it (still panic-contained)              |
//! | `kernel.cancel`     | every cancellation checkpoint (kernel strides,    |
//! |                     | gather loops, serving probes) — but **only** when |
//! |                     | the work runs under a `CancelToken`; plain        |
//! |                     | traffic never evaluates it                        |
//! | `serving.lookup`    | [`crate::serving::ServingHandle::lookup`]         |
//! | `shard.route`       | the shard router's per-request owning-shard probe |
//! |                     | and per-shard transform fan-out (panic-contained) |
//! | `shard.append`      | start of a router-level sharded append, before    |
//! |                     | any shard's sub-batch dispatches                  |
//! | `tier.batch`        | the serving tier's worker loop, once per batch    |
//!
//! Failpoints are process-global; tests sharing a binary must serialize on a
//! lock and [`reset`] when done.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when its site is reached.
#[derive(Clone, Debug)]
pub enum Action {
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep for the given duration (simulates a stalled worker).
    Delay(Duration),
}

struct FailPoint {
    action: Action,
    /// `Some(n)`: fire `n` more times, then fall dormant (hit counting
    /// continues). `None`: fire on every visit.
    remaining: Option<usize>,
    /// Visits that actually fired.
    hits: usize,
}

static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, FailPoint>> {
    // The registry itself is never poisoned — `eval` releases the guard
    // before panicking — but a panicking *test* thread could still hold it.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `name` to perform `action` on every visit until [`clear`]ed.
pub fn set(name: &str, action: Action) {
    lock().insert(
        name.to_string(),
        FailPoint {
            action,
            remaining: None,
            hits: 0,
        },
    );
}

/// Arm `name` to perform `action` on the next `times` visits only.
pub fn set_times(name: &str, action: Action, times: usize) {
    lock().insert(
        name.to_string(),
        FailPoint {
            action,
            remaining: Some(times),
            hits: 0,
        },
    );
}

/// Disarm `name` (a no-op if it was never armed).
pub fn clear(name: &str) {
    lock().remove(name);
}

/// Disarm every failpoint.
pub fn reset() {
    if let Some(registry) = REGISTRY.get() {
        registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// How many times the failpoint named `name` has fired since it was armed.
pub fn hits(name: &str) -> usize {
    lock().get(name).map_or(0, |fp| fp.hits)
}

/// Evaluate the failpoint named `name` — the function behind
/// [`crate::fail_point!`]. Returns immediately (one atomic load, no lock, no
/// allocation) unless some test has initialised the registry.
pub fn eval(name: &str) {
    let Some(registry) = REGISTRY.get() else {
        return;
    };
    let action = {
        let mut map = registry.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(fp) = map.get_mut(name) else { return };
        match &mut fp.remaining {
            Some(0) => return,
            Some(n) => *n -= 1,
            None => {}
        }
        fp.hits += 1;
        fp.action.clone()
    };
    // Act only after the registry guard is dropped, so a forced panic can
    // never poison the harness itself.
    match action {
        Action::Panic => panic!("failpoint {name} forced a panic"),
        Action::Delay(d) => std::thread::sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests here use names no engine site evaluates, so they can run in
    // parallel with the rest of the crate's suite.

    #[test]
    fn unarmed_failpoints_do_nothing() {
        eval("failpoint.test.unarmed");
        assert_eq!(hits("failpoint.test.unarmed"), 0);
    }

    #[test]
    fn set_times_fires_exactly_n_times() {
        set_times("failpoint.test.count", Action::Delay(Duration::ZERO), 2);
        for _ in 0..5 {
            eval("failpoint.test.count");
        }
        assert_eq!(hits("failpoint.test.count"), 2);
        clear("failpoint.test.count");
    }

    #[test]
    fn panic_action_panics_with_the_failpoint_name() {
        set_times("failpoint.test.panic", Action::Panic, 1);
        let result = std::panic::catch_unwind(|| eval("failpoint.test.panic"));
        let payload = result.expect_err("armed failpoint must panic");
        let message = crate::exec::panic_message(payload);
        assert!(message.contains("failpoint.test.panic"), "got: {message}");
        // The panic consumed the single armed shot; the site is dormant now.
        eval("failpoint.test.panic");
        assert_eq!(hits("failpoint.test.panic"), 1);
        clear("failpoint.test.panic");
    }
}
