//! Multiple relevant tables and deep-layer relationships.
//!
//! The paper's problem statement (Section III) defines FeatAug for one training table and one
//! relevant table, and notes that the richer real-world scenarios reduce to it:
//!
//! * **multiple relevant tables** — run the one-table problem once per relevant table and take
//!   the union of the generated features ([`MultiAugTask`] / [`augment_multi`]);
//! * **deep-layer relationships** (a relevant table that itself points at further tables, e.g.
//!   orders → products → departments) — pre-join the chain into a single relevant table
//!   ([`flatten_chain`]), exactly as the paper's Tmall / Instacart / Merchant preparation does.
//!
//! [`crate::schema::fit_schema`] generalises both reductions: it *discovers*
//! the chains as join paths over a registered [`crate::schema::SchemaGraph`]
//! (instead of taking a hand-flattened table), proxy-scores every candidate
//! path, and fits only the budgeted best. [`fit_multi`] is its degenerate
//! depth-1 case — every path exactly one declared edge long, no budget gate.
//!
//! Each source's pipeline run compiles **one** shared [`crate::exec::QueryEngine`] for its
//! `(train, relevant)` pair — QTI and generation both evaluate through it — and reports the
//! engine's cache counters in its [`FeatAugResult::engine_stats`]. Engines are per-pair by
//! construction, so distinct sources (distinct relevant tables) get distinct engines.

use std::sync::Arc;

use feataug_ml::Task;
use feataug_tabular::join::left_join;
use feataug_tabular::{Column, Table};

use crate::exec::EngineResult;
use crate::pipeline::{AugModel, FeatAug, FeatAugConfig, FeatAugResult, PipelineTiming};
use crate::problem::{AugTask, AugTaskError};
use crate::query::AugPlan;

/// One relevant table participating in a multi-table augmentation task.
#[derive(Debug, Clone)]
pub struct RelevantSource {
    /// The relevant table (`Arc`-shared: handing it to a sub-task is a
    /// reference-count bump, not a copy).
    pub table: Arc<Table>,
    /// Foreign-key columns shared with the training table.
    pub key_columns: Vec<String>,
    /// Aggregation attributes offered from this table (empty = numeric defaults).
    pub agg_columns: Vec<String>,
    /// Candidate predicate attributes offered from this table (empty = all non-key columns).
    pub predicate_attrs: Vec<String>,
}

impl RelevantSource {
    /// Build a source with default attribute sets.
    pub fn new(table: impl Into<Arc<Table>>, key_columns: Vec<String>) -> Self {
        RelevantSource {
            table: table.into(),
            key_columns,
            agg_columns: Vec::new(),
            predicate_attrs: Vec::new(),
        }
    }

    /// Builder-style setter for the aggregation attributes.
    pub fn with_agg_columns(mut self, cols: Vec<String>) -> Self {
        self.agg_columns = cols;
        self
    }

    /// Builder-style setter for the predicate attributes.
    pub fn with_predicate_attrs(mut self, attrs: Vec<String>) -> Self {
        self.predicate_attrs = attrs;
        self
    }
}

/// A feature-augmentation task with several relevant tables.
#[derive(Debug, Clone)]
pub struct MultiAugTask {
    /// Training table `D` (`Arc`-shared across every per-source sub-task).
    pub train: Arc<Table>,
    /// Label column in `D`.
    pub label_column: String,
    /// Downstream learning task.
    pub task: Task,
    /// The relevant tables, each with its own key / attribute metadata.
    pub sources: Vec<RelevantSource>,
}

impl MultiAugTask {
    /// Build a multi-table task.
    pub fn new(train: impl Into<Arc<Table>>, label_column: impl Into<String>, task: Task) -> Self {
        MultiAugTask {
            train: train.into(),
            label_column: label_column.into(),
            task,
            sources: Vec::new(),
        }
    }

    /// Builder-style: add a relevant table.
    pub fn with_source(mut self, source: RelevantSource) -> Self {
        self.sources.push(source);
        self
    }

    /// The single-table sub-task for source `i` (paper Section III's
    /// reduction). Both tables are `Arc`-shared with this task — building a
    /// sub-task is two reference-count bumps, never a table copy.
    pub fn sub_task(&self, i: usize) -> AugTask {
        let source = &self.sources[i];
        AugTask::new(
            self.train.clone(),
            source.table.clone(),
            source.key_columns.clone(),
            self.label_column.clone(),
            self.task,
        )
        .with_agg_columns(source.agg_columns.clone())
        .with_predicate_attrs(source.predicate_attrs.clone())
    }

    /// All per-source sub-tasks, in source order (each an `Arc`-sharing view
    /// of this task's tables).
    pub fn sub_tasks(&self) -> Vec<AugTask> {
        (0..self.sources.len()).map(|i| self.sub_task(i)).collect()
    }
}

/// The fit/transform counterpart of [`augment_multi`]: one fitted
/// [`AugModel`] per relevant source, transformable as a union onto any table
/// carrying the training-side key columns. Each source keeps its own engine
/// (engines are per `(train, relevant)` pair by construction), so repeat
/// transforms pay no aggregation anywhere.
#[derive(Debug)]
pub struct MultiAugModel<'a> {
    models: Vec<AugModel<'a>>,
}

/// Fit one model per sub-task (see [`MultiAugTask::sub_tasks`]). Each model
/// co-owns its source tables through the sub-task's `Arc`s, so the returned
/// [`OwnedMultiAugModel`] stands alone — the sub-task vector can be dropped.
///
/// ```no_run
/// # use feataug::multi::{MultiAugTask, fit_multi};
/// # use feataug::FeatAugConfig;
/// # use feataug_ml::ModelKind;
/// # fn get(_: ()) -> MultiAugTask { unimplemented!() }
/// let task: MultiAugTask = get(());
/// let subs = task.sub_tasks();
/// let model = fit_multi(&FeatAugConfig::fast(ModelKind::Linear), &subs).unwrap();
/// let augmented_train = model.transform(&task.train).unwrap();
/// ```
pub fn fit_multi(
    cfg: &FeatAugConfig,
    sub_tasks: &[AugTask],
) -> Result<OwnedMultiAugModel, AugTaskError> {
    let models = sub_tasks
        .iter()
        .map(|task| FeatAug::new(cfg.clone()).fit(task))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiAugModel { models })
}

/// An owned [`MultiAugModel`]: every per-source model co-owns its tables
/// (`Arc`-backed, `Send + Sync + 'static`).
pub type OwnedMultiAugModel = MultiAugModel<'static>;

/// [`fit_multi`] driven straight off the [`MultiAugTask`]: builds each
/// source's sub-task on the fly (two `Arc` bumps each — no table is copied
/// or cloned anywhere on this path) and fits it. The returned
/// [`OwnedMultiAugModel`] stands alone and can serve from a long-running
/// process.
pub fn fit_multi_owned(
    cfg: &FeatAugConfig,
    task: &MultiAugTask,
) -> Result<OwnedMultiAugModel, AugTaskError> {
    let models = (0..task.sources.len())
        .map(|i| FeatAug::new(cfg.clone()).fit(&task.sub_task(i)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiAugModel { models })
}

impl<'a> MultiAugModel<'a> {
    /// Assemble a multi-source serving model from per-source models (e.g.
    /// one [`AugModel::compile`] / [`AugModel::compile_shared`] per shipped
    /// plan), in source order.
    pub fn from_models(models: Vec<AugModel<'a>>) -> MultiAugModel<'a> {
        MultiAugModel { models }
    }

    /// Upgrade every per-source model to shared table ownership (see
    /// [`AugModel::into_owned`]).
    pub fn into_owned(self) -> OwnedMultiAugModel {
        MultiAugModel {
            models: self.models.into_iter().map(AugModel::into_owned).collect(),
        }
    }

    /// The per-source fitted models, in source order.
    pub fn models(&self) -> &[AugModel<'a>] {
        &self.models
    }

    /// The per-source portable plans, in source order.
    pub fn plans(&self) -> Vec<&AugPlan> {
        self.models.iter().map(|m| m.plan()).collect()
    }

    /// Ingest `rows` into source `source`'s relevant table as one atomic
    /// epoch (see [`AugModel::append_relevant`]). The other sources' engines
    /// and epochs are untouched.
    pub fn append_relevant(&self, source: usize, rows: &Table) -> EngineResult<crate::exec::Epoch> {
        let model = self.models.get(source).ok_or_else(|| {
            feataug_tabular::TabularError::InvalidArgument(format!(
                "append_relevant source index {source} out of range for {} sources",
                self.models.len()
            ))
        })?;
        model.append_relevant(rows)
    }

    /// Attach the union of every source's planned features to a copy of
    /// `table` (any table carrying each source's training-side key columns).
    /// Feature names embed a query hash, so cross-source collisions are
    /// unlikely; a colliding (or pre-existing) column is skipped, exactly
    /// like [`augment_multi`]'s union.
    pub fn transform(&self, table: &Table) -> EngineResult<Table> {
        let mut augmented = table.clone();
        for model in &self.models {
            for (name, values) in model.transform_features(table)? {
                let _ = augmented.add_column(name, Column::from_opt_f64s(&values));
            }
        }
        Ok(augmented)
    }

    /// [`MultiAugModel::transform`] under a
    /// [`feataug_tabular::CancelToken`]: sources run in order and every
    /// source's aggregations poll the token at the kernel checkpoints, so
    /// one tripped deadline abandons the whole union mid-source with
    /// [`crate::exec::EngineError::Cancelled`] instead of finishing the
    /// remaining relevant tables.
    pub fn transform_cancel(
        &self,
        table: &Table,
        cancel: &feataug_tabular::CancelToken,
    ) -> EngineResult<Table> {
        let mut augmented = table.clone();
        for model in &self.models {
            for (name, values) in model.transform_features_cancel(table, cancel)? {
                let _ = augmented.add_column(name, Column::from_opt_f64s(&values));
            }
        }
        Ok(augmented)
    }
}

/// The union of per-source pipeline runs.
#[derive(Debug, Clone)]
pub struct MultiAugResult {
    /// The training table with every source's selected features attached.
    pub augmented_train: Table,
    /// The per-source pipeline results, in source order.
    pub per_source: Vec<FeatAugResult>,
    /// Total timing across all sources.
    pub timing: PipelineTiming,
}

/// Run FeatAug once per relevant table and union the generated features onto the training table.
/// The per-source feature budget is the configuration's budget; callers who want a fixed total
/// budget should divide it across sources first.
pub fn augment_multi(cfg: &FeatAugConfig, task: &MultiAugTask) -> MultiAugResult {
    let mut augmented = (*task.train).clone();
    let mut per_source = Vec::new();
    let mut timing = PipelineTiming::default();

    for i in 0..task.sources.len() {
        let sub = task.sub_task(i);
        let result = FeatAug::new(cfg.clone()).augment(&sub);
        timing.qti += result.timing.qti;
        timing.warmup += result.timing.warmup;
        timing.generate += result.timing.generate;

        for name in &result.feature_names {
            if let Ok(col) = result.augmented_train.column(name) {
                // Feature names embed a query hash, so collisions across sources are unlikely;
                // skip silently if one does occur.
                let _ = augmented.add_column(name.clone(), col.clone());
            }
        }
        per_source.push(result);
    }

    MultiAugResult {
        augmented_train: augmented,
        per_source,
        timing,
    }
}

/// Flatten a deep-layer relationship chain into one relevant table by left-joining each
/// deeper table onto the chain head (paper Section III: "it can be represented by the
/// aforementioned scenario by joining all the tables into one relevant table").
///
/// `chain` lists `(table, join keys against the current head)` pairs in order.
pub fn flatten_chain(
    head: &Table,
    chain: &[(Table, Vec<String>)],
) -> feataug_tabular::Result<Table> {
    let mut current = head.clone();
    for (table, keys) in chain {
        let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        current = left_join(&current, table, &key_refs, &key_refs)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_ml::ModelKind;
    use feataug_tabular::{Column, Value};

    fn train(n: usize) -> Table {
        let keys: Vec<String> = (0..n).map(|i| format!("u{i}")).collect();
        let labels: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        let mut t = Table::new("d");
        t.add_column("user_id", Column::from_strings(&keys))
            .unwrap();
        t.add_column("label", Column::from_i64s(&labels)).unwrap();
        t
    }

    /// A relevant table whose mean of `value` per user tracks the label when `flag == target`.
    fn relevant(n: usize, name: &str, target: &str) -> Table {
        let mut keys = Vec::new();
        let mut flags = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            for j in 0..5 {
                keys.push(format!("u{i}"));
                let flag = if j % 2 == 0 { target } else { "other" };
                flags.push(flag.to_string());
                let label = (i % 2) as f64;
                values.push(if flag == target {
                    label * 10.0 + j as f64
                } else {
                    j as f64
                });
            }
        }
        let mut t = Table::new(name);
        t.add_column("user_id", Column::from_strings(&keys))
            .unwrap();
        t.add_column("flag", Column::from_strings(&flags)).unwrap();
        t.add_column("value", Column::from_f64s(&values)).unwrap();
        t
    }

    fn small_cfg() -> FeatAugConfig {
        let mut cfg = FeatAugConfig::fast(ModelKind::Linear);
        cfg.n_templates = 2;
        cfg.queries_per_template = 2;
        cfg.template_id.n_templates = 2;
        cfg.template_id.pool_samples = 6;
        cfg.sqlgen.warmup_iters = 10;
        cfg.sqlgen.warmup_top_k = 3;
        cfg.sqlgen.search_iters = 4;
        cfg
    }

    #[test]
    fn multi_source_union_attaches_features_from_every_source() {
        let n = 120;
        let task = MultiAugTask::new(train(n), "label", Task::BinaryClassification)
            .with_source(RelevantSource::new(
                relevant(n, "r1", "a"),
                vec!["user_id".into()],
            ))
            .with_source(RelevantSource::new(
                relevant(n, "r2", "b"),
                vec!["user_id".into()],
            ));
        assert_eq!(task.sources.len(), 2);
        let result = augment_multi(&small_cfg(), &task);
        assert_eq!(result.per_source.len(), 2);
        assert!(result.augmented_train.num_columns() > task.train.num_columns());
        assert_eq!(result.augmented_train.num_rows(), n);
        // Features from both sources contribute.
        assert!(result
            .per_source
            .iter()
            .all(|r| !r.feature_names.is_empty()));
        assert!(result.timing.total() > std::time::Duration::from_nanos(0));
        // Every source's run shared one engine across QTI + generation.
        assert!(result
            .per_source
            .iter()
            .all(|r| r.engine_stats.evaluations > 0));
    }

    #[test]
    fn fit_multi_transforms_unseen_tables_with_every_sources_features() {
        let n = 80;
        let task = MultiAugTask::new(train(n), "label", Task::BinaryClassification)
            .with_source(RelevantSource::new(
                relevant(n, "r1", "a"),
                vec!["user_id".into()],
            ))
            .with_source(RelevantSource::new(
                relevant(n, "r2", "b"),
                vec!["user_id".into()],
            ));
        let subs = task.sub_tasks();
        let model = fit_multi(&small_cfg(), &subs).unwrap();
        assert_eq!(model.models().len(), 2);
        assert_eq!(model.plans().len(), 2);
        assert!(model.plans().iter().all(|p| !p.is_empty()));

        // Transform the training table: union of all sources' features.
        let on_train = model.transform(&task.train).unwrap();
        let total_features: usize = model.models().iter().map(|m| m.plan().len()).sum();
        assert!(on_train.num_columns() > task.train.num_columns());
        assert!(on_train.num_columns() <= task.train.num_columns() + total_features);

        // Transform a held-out table with one known and one unseen key.
        let mut held_out = Table::new("held_out");
        held_out
            .add_column("user_id", Column::from_strs(&["u0", "nobody"]))
            .unwrap();
        let served = model.transform(&held_out).unwrap();
        assert_eq!(served.num_rows(), 2);
        assert_eq!(
            served.num_columns() - held_out.num_columns(),
            on_train.num_columns() - task.train.num_columns(),
            "held-out tables must carry the same feature union"
        );
        for name in served.column_names() {
            if name == "user_id" {
                continue;
            }
            assert_eq!(
                served.value(1, name).unwrap(),
                Value::Null,
                "unseen key must be NULL in {name}"
            );
        }
        // Fitting validated each sub-task; a broken one errors instead.
        let mut bad = task.sub_task(0);
        bad.label_column = "ghost".into();
        assert!(fit_multi(&small_cfg(), &[bad]).is_err());
    }

    #[test]
    fn sub_task_reduction_matches_paper_definition() {
        let n = 30;
        let task = MultiAugTask::new(train(n), "label", Task::BinaryClassification).with_source(
            RelevantSource::new(relevant(n, "r1", "a"), vec!["user_id".into()])
                .with_agg_columns(vec!["value".into()])
                .with_predicate_attrs(vec!["flag".into()]),
        );
        let sub = task.sub_task(0);
        assert_eq!(sub.key_columns, vec!["user_id".to_string()]);
        assert_eq!(sub.resolved_agg_columns(), vec!["value".to_string()]);
        assert_eq!(sub.resolved_predicate_attrs(), vec!["flag".to_string()]);
    }

    #[test]
    fn flatten_chain_joins_deep_layers() {
        // orders(order head) -> products (by product_id) -> departments (by dept_id)
        let mut orders = Table::new("orders");
        orders
            .add_column("user_id", Column::from_strs(&["u1", "u1", "u2"]))
            .unwrap();
        orders
            .add_column("product_id", Column::from_strs(&["p1", "p2", "p1"]))
            .unwrap();

        let mut products = Table::new("products");
        products
            .add_column("product_id", Column::from_strs(&["p1", "p2"]))
            .unwrap();
        products
            .add_column("dept_id", Column::from_strs(&["d1", "d2"]))
            .unwrap();
        products
            .add_column("price", Column::from_f64s(&[10.0, 20.0]))
            .unwrap();

        let mut departments = Table::new("departments");
        departments
            .add_column("dept_id", Column::from_strs(&["d1", "d2"]))
            .unwrap();
        departments
            .add_column("dept_name", Column::from_strs(&["produce", "dairy"]))
            .unwrap();

        let flat = flatten_chain(
            &orders,
            &[
                (products, vec!["product_id".to_string()]),
                (departments, vec!["dept_id".to_string()]),
            ],
        )
        .unwrap();
        assert_eq!(flat.num_rows(), 3);
        assert_eq!(flat.value(0, "price").unwrap(), Value::Float(10.0));
        assert_eq!(
            flat.value(1, "dept_name").unwrap(),
            Value::Str("dairy".into())
        );
        assert_eq!(
            flat.value(2, "dept_name").unwrap(),
            Value::Str("produce".into())
        );
    }
}
