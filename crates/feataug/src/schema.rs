//! Schema-graph augmentation: multi-hop join paths with budgeted search.
//!
//! The paper's problem statement fixes **one** relevant table per task; this
//! subsystem searches **join paths across a relational schema** — the shape
//! FeatNavigator (budgeted path exploration: cheap proxy scores gate which
//! paths get a full search) and ARDA (filter-then-validate over candidate
//! joins) take — while reusing every existing layer unchanged:
//!
//! 1. **Catalog** ([`SchemaGraph`]): register `Arc<Table>`s, declare known
//!    foreign keys, or let [`SchemaGraph::infer_edges`] discover joinable
//!    pairs by key-name/dtype match plus deterministic containment sampling.
//! 2. **Enumerate** ([`enumerate_paths`]): every acyclic [`JoinPath`]
//!    `train ⋈ base ⋈ rel₁ ⋈ rel₂ …` up to `max_hops`, prefix-closed and
//!    deterministic.
//! 3. **Compile** ([`materialize_path`]): a path becomes one virtual
//!    relevant view by composing per-hop gather maps — bit-identical to an
//!    eager pre-join chain, and consumed by the existing
//!    [`crate::exec::QueryEngine`] with all its memoized kernels.
//! 4. **Explore under budget** ([`fit_schema`]): proxy-score every candidate
//!    view with probe features, promote only the top [`SchemaTask`]
//!    `path_budget` to full TPE searches. `multi::fit_multi` is the
//!    degenerate `max_hops = 0`, unlimited-budget case.
//! 5. **Round-trip** ([`SchemaAugModel::plans`] / [`SchemaGraph::compile`]):
//!    multi-hop plans serialize as `AUGPLAN 2` text and recompile against a
//!    registered schema on another process.
//!
//! This module tree is serving-reachable (`SchemaGraph::compile` runs in
//! serving processes), so it is covered by the `panic-discipline` lint:
//! no `unwrap`/`expect`/panicking macros outside `#[cfg(test)]`.

mod compile;
mod fit;
mod graph;
mod path;

pub use compile::{compile_plan, materialize_path};
pub use fit::{fit_schema, ExplorationStats, PathScore, SchemaAugModel, SchemaTask};
pub use graph::{EdgeOrigin, InferOptions, SchemaEdge, SchemaError, SchemaGraph};
pub use path::{enumerate_paths, JoinPath};
