//! The SQL Query Generation component (paper Section V).
//!
//! Given a fixed [`QueryTemplate`], the component searches the template's query pool for the
//! queries whose generated feature minimises the downstream model's validation loss. The pool
//! is encoded as a hyperparameter space ([`QueryCodec`]) and searched with TPE in two rounds:
//!
//! 1. **Warm-up phase** — TPE optimises a low-cost proxy (mutual information by default) for
//!    [`SqlGenConfig::warmup_iters`] iterations; the top-[`SqlGenConfig::warmup_top_k`] proxy
//!    queries are then evaluated with the real model and used to seed the surrogate of the
//!    second round.
//! 2. **Query-generation phase** — a warm-started TPE optimises the real validation loss for
//!    [`SqlGenConfig::search_iters`] iterations.
//!
//! Disabling the warm-up (the paper's "NoWU" ablation) instead runs
//! `warmup_top_k + search_iters` iterations of plain TPE on the real objective, matching the
//! paper's fair-comparison protocol.
//!
//! Candidate queries are executed through a [`QueryEngine`] — by default a per-generator one,
//! but [`QueryGenerator::with_engine`] accepts a shared handle so the generator reuses the
//! group indexes, gather maps, column views and feature LRU the Query Template Identification
//! component already compiled for the same `(train, relevant)` pair (the pipeline wires this
//! up). The engine's evaluation-level cache also absorbs TPE's near-duplicate resamples: a
//! config that decodes to an already-evaluated query skips the whole materialisation.
//!
//! The warm-up's top-k selection deduplicates by feature name before ranking: TPE routinely
//! resamples configs that decode to the same query, and without the dedup each duplicate would
//! burn one real-model training of the `warmup_top_k` budget while crowding a distinct seed out
//! of the warm start.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use feataug_hpo::{Config, Optimizer, Tpe, TpeConfig};

use crate::evaluation::FeatureEvaluator;
use crate::exec::QueryEngine;
use crate::problem::AugTask;
use crate::proxy::LowCostProxy;
use crate::query::{PredicateQuery, QueryCodec};
use crate::template::QueryTemplate;

/// Configuration of the SQL Query Generation component.
#[derive(Debug, Clone)]
pub struct SqlGenConfig {
    /// TPE iterations spent on the low-cost proxy during the warm-up phase.
    pub warmup_iters: usize,
    /// Number of top proxy queries evaluated with the real model to seed the second phase.
    pub warmup_top_k: usize,
    /// TPE iterations spent on the real objective in the query-generation phase.
    pub search_iters: usize,
    /// Whether the warm-up phase runs at all (the "NoWU" ablation sets this to false).
    pub enable_warmup: bool,
    /// The low-cost proxy optimised during warm-up.
    pub proxy: LowCostProxy,
    /// TPE hyperparameters shared by both phases.
    pub tpe: TpeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SqlGenConfig {
    fn default() -> Self {
        SqlGenConfig {
            warmup_iters: 60,
            warmup_top_k: 15,
            search_iters: 25,
            enable_warmup: true,
            proxy: LowCostProxy::MutualInformation,
            tpe: TpeConfig::default(),
            seed: 42,
        }
    }
}

impl SqlGenConfig {
    /// A smaller configuration for tests and quick examples.
    pub fn fast() -> Self {
        SqlGenConfig {
            warmup_iters: 25,
            warmup_top_k: 6,
            search_iters: 10,
            ..SqlGenConfig::default()
        }
    }
}

/// A query selected by the generation component, with its evaluation outcome.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The predicate-aware SQL query.
    pub query: PredicateQuery,
    /// The real validation loss achieved when the query's feature is added (lower is better).
    pub loss: f64,
    /// Name of the feature column the query produces.
    pub feature_name: String,
    /// The feature values aligned with the training-table rows (NaN where unmatched).
    pub feature: Vec<f64>,
}

/// Wall-clock breakdown of one generation run (used by the scalability figures).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerationTiming {
    /// Time spent in the warm-up phase (proxy optimisation + seeding evaluations).
    pub warmup: Duration,
    /// Time spent in the query-generation phase (real-objective TPE).
    pub generate: Duration,
}

impl GenerationTiming {
    /// Total time of both phases.
    pub fn total(&self) -> Duration {
        self.warmup + self.generate
    }

    /// Accumulate another timing into this one.
    pub fn add(&mut self, other: &GenerationTiming) {
        self.warmup += other.warmup;
        self.generate += other.generate;
    }
}

/// The SQL Query Generation component.
pub struct QueryGenerator<'a, 'e> {
    task: &'a AugTask,
    evaluator: &'a FeatureEvaluator,
    cfg: SqlGenConfig,
    engine: QueryEngine<'e>,
}

impl<'a, 'e> QueryGenerator<'a, 'e> {
    /// Build a generator for one augmentation task. The execution engine is compiled lazily on
    /// the first candidate and its caches persist across every `generate` call on this
    /// generator.
    pub fn new(
        task: &'a AugTask,
        evaluator: &'a FeatureEvaluator,
        cfg: SqlGenConfig,
    ) -> QueryGenerator<'a, 'a> {
        QueryGenerator::with_engine(
            task,
            evaluator,
            cfg,
            QueryEngine::new(&task.train, &task.relevant),
        )
    }

    /// Build a generator that evaluates candidates through `engine` — a (clone of a) shared
    /// [`QueryEngine`] compiled over the *same* `(train, relevant)` pair as `task`, so the
    /// compiled group indexes, column views and cached feature vectors of other components are
    /// reused instead of rebuilt. The engine's lifetime is independent of the task borrow
    /// (epoch-versioned engines are invariant in their table lifetime, so a `'static` engine
    /// must not be forced down to the task's).
    pub fn with_engine(
        task: &'a AugTask,
        evaluator: &'a FeatureEvaluator,
        cfg: SqlGenConfig,
        engine: QueryEngine<'e>,
    ) -> Self {
        QueryGenerator {
            task,
            evaluator,
            cfg,
            engine,
        }
    }

    /// The execution engine this generator evaluates candidates through.
    pub fn engine(&self) -> &QueryEngine<'e> {
        &self.engine
    }

    /// The configuration in use.
    pub fn config(&self) -> &SqlGenConfig {
        &self.cfg
    }

    /// Execute one decoded query and return its feature vector aligned with the training table
    /// (None when the query matched no rows at all or failed to execute).
    fn materialize(&self, query: &PredicateQuery) -> Option<(String, Vec<f64>)> {
        let (name, values) = self.engine.feature(query).ok()?;
        if values.iter().all(|v| !v.is_finite()) {
            return None;
        }
        Some((name, values))
    }

    /// Search the query pool of `template` and return the best `n_queries` distinct queries
    /// (sorted by ascending real validation loss), together with the timing breakdown.
    pub fn generate(
        &self,
        template: &QueryTemplate,
        n_queries: usize,
    ) -> (Vec<GeneratedQuery>, GenerationTiming) {
        let codec = match QueryCodec::build(template, &self.task.relevant) {
            Ok(c) => c,
            Err(_) => return (Vec::new(), GenerationTiming::default()),
        };
        // The pipeline validates the task before any component runs; a
        // stand-alone generator on a label-less task degrades to no queries.
        let Ok(labels) = self.task.labels() else {
            return (Vec::new(), GenerationTiming::default());
        };
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut timing = GenerationTiming::default();

        // Every really-evaluated candidate ends up here, keyed by feature name for dedup.
        let mut evaluated: Vec<GeneratedQuery> = Vec::new();
        let record = |evaluated: &mut Vec<GeneratedQuery>,
                      query: PredicateQuery,
                      name: String,
                      feature: Vec<f64>,
                      loss: f64| {
            if !evaluated.iter().any(|g| g.feature_name == name) {
                evaluated.push(GeneratedQuery {
                    query,
                    loss,
                    feature_name: name,
                    feature,
                });
            }
        };

        // ---- Phase 1: warm-up on the low-cost proxy -------------------------------------
        let mut warm_observations: Vec<(Config, f64)> = Vec::new();
        if self.cfg.enable_warmup {
            let start = Instant::now();
            let mut proxy_tpe = Tpe::new(codec.space().clone(), self.cfg.tpe.clone());
            let mut proxy_trials: Vec<ProxyTrial> = Vec::new();
            for _ in 0..self.cfg.warmup_iters {
                let config = proxy_tpe.suggest(&mut rng);
                let query = codec.decode(&config);
                let proxy_loss = match self.materialize(&query) {
                    Some((name, feature)) => {
                        let loss = self
                            .cfg
                            .proxy
                            .loss(&feature, &labels, self.evaluator.task());
                        proxy_trials.push((config.clone(), loss, query, name, feature));
                        loss
                    }
                    None => 0.0, // an empty feature is as good as no feature
                };
                proxy_tpe.observe(config, proxy_loss);
            }

            // Evaluate the top-k proxy queries with the real model and keep them as warm
            // observations for the second phase.
            let proxy_trials = warmup_top_k(proxy_trials, self.cfg.warmup_top_k);
            for (config, _proxy_loss, query, name, feature) in proxy_trials {
                let loss = self.evaluator.loss_with_feature(&name, &feature);
                warm_observations.push((config, loss));
                record(&mut evaluated, query, name, feature, loss);
            }
            timing.warmup = start.elapsed();
        }

        // ---- Phase 2: TPE on the real objective ------------------------------------------
        let start = Instant::now();
        let mut tpe = Tpe::new(codec.space().clone(), self.cfg.tpe.clone());
        tpe.warm_start(warm_observations);
        let real_iters = if self.cfg.enable_warmup {
            self.cfg.search_iters
        } else {
            // Fair-comparison protocol: the ablation spends the warm-up's evaluation budget on
            // additional plain TPE iterations instead.
            self.cfg.search_iters + self.cfg.warmup_top_k
        };
        for _ in 0..real_iters {
            let config = tpe.suggest(&mut rng);
            let query = codec.decode(&config);
            let loss = match self.materialize(&query) {
                Some((name, feature)) => {
                    let loss = self.evaluator.loss_with_feature(&name, &feature);
                    record(&mut evaluated, query, name, feature, loss);
                    loss
                }
                None => self.evaluator.base_loss(),
            };
            tpe.observe(config, loss);
        }
        timing.generate = start.elapsed();

        evaluated.sort_by(|a, b| a.loss.total_cmp(&b.loss));
        evaluated.truncate(n_queries);
        (evaluated, timing)
    }
}

/// One warm-up proxy trial: (config, proxy loss, decoded query, feature name, feature values).
type ProxyTrial = (Config, f64, PredicateQuery, String, Vec<f64>);

/// Rank the warm-up's proxy trials by ascending proxy loss and keep the best `k` with
/// *distinct* feature names.
///
/// TPE resamples configurations, and distinct configurations can decode to the same query, so
/// `trials` routinely holds several entries with one feature name. A plain
/// `sort + truncate(k)` would spend one real-model training of the warm-start budget on every
/// duplicate — and crowd a distinct seed out of the top-k — for zero extra information, since
/// the duplicate's feature (and therefore its real loss) is identical.
fn warmup_top_k(mut trials: Vec<ProxyTrial>, k: usize) -> Vec<ProxyTrial> {
    trials.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut out: Vec<ProxyTrial> = Vec::with_capacity(k.min(trials.len()));
    for trial in trials {
        if out.len() >= k {
            break;
        }
        if !out.iter().any(|kept| kept.3 == trial.3) {
            out.push(trial);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_datagen::{tmall, GenConfig};
    use feataug_ml::{ModelKind, Task};
    use feataug_tabular::AggFunc;

    fn tmall_task() -> AugTask {
        let ds = tmall::generate(&GenConfig {
            n_entities: 250,
            fanout: 8,
            n_noise_cols: 1,
            seed: 5,
        });
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::BinaryClassification,
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn template(task: &AugTask) -> QueryTemplate {
        QueryTemplate::new(
            vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Max],
            task.resolved_agg_columns(),
            vec!["department".into(), "timestamp".into()],
            task.key_columns.clone(),
        )
    }

    fn trial(name: &str, proxy_loss: f64) -> ProxyTrial {
        let query = PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: "x".into(),
            predicate: feataug_tabular::Predicate::True,
            group_keys: vec!["k".into()],
        };
        (Vec::new(), proxy_loss, query, name.to_string(), vec![1.0])
    }

    /// Regression: TPE resamples configs decoding to the same query, and the warm-up's top-k
    /// must not spend its real-model budget on those duplicates (or let them crowd distinct
    /// seeds out of the warm start).
    #[test]
    fn warmup_top_k_dedups_by_feature_name_before_truncating() {
        let trials = vec![
            trial("f_a", -0.9),
            trial("f_a", -0.8), // duplicate of the best query under another config
            trial("f_b", -0.7),
            trial("f_a", -0.6), // and another
            trial("f_c", -0.5),
            trial("f_d", -0.4),
        ];
        let kept = warmup_top_k(trials, 3);
        let names: Vec<&str> = kept.iter().map(|t| t.3.as_str()).collect();
        // Distinct names, best proxy loss first; f_c replaces the duplicates
        // that sort+truncate(3) would have kept.
        assert_eq!(names, vec!["f_a", "f_b", "f_c"]);
        assert!(kept.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn warmup_top_k_handles_fewer_distinct_names_than_k() {
        let kept = warmup_top_k(vec![trial("f_a", -0.2), trial("f_a", -0.1)], 5);
        assert_eq!(kept.len(), 1);
        assert_eq!(
            kept[0].1, -0.2,
            "the duplicate kept must be the best-ranked one"
        );
    }

    #[test]
    fn generates_ranked_distinct_queries() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let gen = QueryGenerator::new(&task, &evaluator, SqlGenConfig::fast());
        let (queries, timing) = gen.generate(&template(&task), 5);
        assert!(!queries.is_empty());
        assert!(queries.len() <= 5);
        // Sorted by ascending loss.
        for w in queries.windows(2) {
            assert!(w[0].loss <= w[1].loss);
        }
        // Distinct feature names.
        let mut names: Vec<&str> = queries.iter().map(|q| q.feature_name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), queries.len());
        assert!(timing.total() > Duration::from_nanos(0));
    }

    #[test]
    fn best_query_beats_base_model() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let gen = QueryGenerator::new(&task, &evaluator, SqlGenConfig::fast());
        let (queries, _) = gen.generate(&template(&task), 3);
        let base = evaluator.base_loss();
        assert!(
            queries[0].loss < base,
            "best generated query ({}) should beat the base loss ({base})",
            queries[0].loss
        );
    }

    #[test]
    fn warmup_records_timing_and_nowu_does_not() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);

        let with = QueryGenerator::new(&task, &evaluator, SqlGenConfig::fast());
        let (_, t_with) = with.generate(&template(&task), 2);
        assert!(t_with.warmup > Duration::from_nanos(0));

        let cfg = SqlGenConfig {
            enable_warmup: false,
            ..SqlGenConfig::fast()
        };
        let without = QueryGenerator::new(&task, &evaluator, cfg);
        let (queries, t_without) = without.generate(&template(&task), 2);
        assert_eq!(t_without.warmup, Duration::from_nanos(0));
        assert!(!queries.is_empty());
    }

    #[test]
    fn empty_predicate_template_still_works() {
        let task = tmall_task();
        let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
        let gen = QueryGenerator::new(&task, &evaluator, SqlGenConfig::fast());
        let t = QueryTemplate::without_predicates(
            vec![AggFunc::Avg, AggFunc::Count],
            task.resolved_agg_columns(),
            task.key_columns.clone(),
        );
        let (queries, _) = gen.generate(&t, 3);
        assert!(!queries.is_empty());
        assert!(queries.iter().all(|q| q.query.predicate.is_trivial()));
    }
}
