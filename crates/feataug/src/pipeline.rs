//! The end-to-end FeatAug pipeline (paper Figure 2), split fit/transform.
//!
//! [`FeatAug::fit`] runs the discovery half offline: Query Template
//! Identification (optional — users who know their data can fix the template
//! instead), then SQL Query Generation inside each promising template's pool.
//! The ablation flags map one-to-one onto the paper's Table VII rows:
//! `enable_qti = false` is "NoQTI", `enable_warmup = false` is "NoWU".
//!
//! Fitting returns an [`AugModel`] — the bridge from offline discovery to
//! online serving:
//!
//! * [`AugModel::plan`] is the **portable artifact**: the selected queries as
//!   plain data ([`AugPlan`]), renderable to SQL and round-trippable through
//!   a text format, so the discovery cost is paid once and the result ships
//!   anywhere ([`AugModel::compile`] rebuilds a serving model from a plan).
//! * [`AugModel::transform`] materialises every planned feature onto **any**
//!   table carrying the key columns — the training table, a test split,
//!   tomorrow's users. Each query's aggregation runs once per model (memoized
//!   per-group in the shared engine core); each table pays only an O(rows)
//!   key mapping and gather.
//! * [`AugModel::serve`] answers **single-key requests** from the same cached
//!   per-group features — the online half of offline→online.
//!
//! [`FeatAug::augment`] survives as a thin `fit` + `transform(train)` wrapper
//! producing the one-shot [`FeatAugResult`], bit-identical to the historical
//! terminal pipeline.
//!
//! Both search components evaluate their candidates through **one shared
//! [`QueryEngine`]** compiled per fit (i.e. per `(train, relevant)` pair): the
//! identifier scores every beam-search node through it, and the generator's
//! warm-up and TPE loops of *all* templates then reuse the group indexes,
//! gather maps, column views and cached feature vectors beam search already
//! built — and the transform/serve paths keep reusing them after the fit.
//! [`FeatAugResult::engine_stats`] exposes the cross-component cache reuse;
//! batch evaluation inside the engine fans candidate pools across a
//! [`std::thread::scope`]-based worker pool (see [`crate::exec`]).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use feataug_ml::ModelKind;
use feataug_tabular::{AggFunc, Column, Table, Value};

use crate::evaluation::FeatureEvaluator;
use crate::exec::{EngineResult, EngineStats, QueryEngine, TableHandle};
use crate::generation::{GeneratedQuery, QueryGenerator, SqlGenConfig};
use crate::problem::{AugTask, AugTaskError};
use crate::proxy::LowCostProxy;
use crate::query::{AugPlan, PlanAnalysisError, PlannedQuery, PredicateQuery};
use crate::template::QueryTemplate;
use crate::template_id::{ScoredTemplate, TemplateIdConfig, TemplateIdentifier};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct FeatAugConfig {
    /// Number of promising query templates to search (paper default: 8).
    pub n_templates: usize,
    /// Number of queries kept per template's pool (paper default: 5 → 40 features in total).
    pub queries_per_template: usize,
    /// Run the Query Template Identification component ("NoQTI" ablation sets this to false).
    pub enable_qti: bool,
    /// Run the warm-up phase of SQL Query Generation ("NoWU" ablation sets this to false).
    pub enable_warmup: bool,
    /// The low-cost proxy used by the warm-up and by template identification.
    pub proxy: LowCostProxy,
    /// The downstream model optimised during the search.
    pub model: ModelKind,
    /// Aggregation-function set `F` shared by all templates.
    pub agg_funcs: Vec<AggFunc>,
    /// SQL Query Generation settings (iteration budgets, TPE settings).
    pub sqlgen: SqlGenConfig,
    /// Query Template Identification settings (beam width, depth, pool samples).
    pub template_id: TemplateIdConfig,
    /// RNG seed.
    pub seed: u64,
}

impl FeatAugConfig {
    /// Paper-style defaults for the given downstream model.
    pub fn new(model: ModelKind) -> Self {
        FeatAugConfig {
            n_templates: 8,
            queries_per_template: 5,
            enable_qti: true,
            enable_warmup: true,
            proxy: LowCostProxy::MutualInformation,
            model,
            agg_funcs: AggFunc::all().to_vec(),
            sqlgen: SqlGenConfig::default(),
            template_id: TemplateIdConfig::default(),
            seed: 42,
        }
    }

    /// A reduced-budget configuration for tests, examples and the laptop-scale experiment
    /// harness (fewer templates, fewer TPE iterations, the cheap aggregation functions only).
    pub fn fast(model: ModelKind) -> Self {
        FeatAugConfig {
            n_templates: 4,
            queries_per_template: 3,
            agg_funcs: vec![
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Count,
                AggFunc::Max,
                AggFunc::Min,
            ],
            sqlgen: SqlGenConfig::fast(),
            template_id: TemplateIdConfig::fast(),
            ..FeatAugConfig::new(model)
        }
    }

    /// Builder-style seed override (propagated to both components).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.sqlgen.seed = seed;
        self.template_id.seed = seed;
        self
    }

    /// Builder-style proxy override (propagated to both components).
    pub fn with_proxy(mut self, proxy: LowCostProxy) -> Self {
        self.proxy = proxy;
        self.sqlgen.proxy = proxy;
        self.template_id.proxy = proxy;
        self
    }

    /// Builder-style ablation switch for the Query Template Identification component.
    pub fn with_qti(mut self, enabled: bool) -> Self {
        self.enable_qti = enabled;
        self
    }

    /// Builder-style ablation switch for the warm-up phase.
    pub fn with_warmup(mut self, enabled: bool) -> Self {
        self.enable_warmup = enabled;
        self.sqlgen.enable_warmup = enabled;
        self
    }

    /// Builder-style override of the number of templates searched.
    pub fn with_n_templates(mut self, n: usize) -> Self {
        self.n_templates = n;
        self.template_id.n_templates = n;
        self
    }
}

/// Wall-clock breakdown of one pipeline run (the three series of the paper's Figures 7–9).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTiming {
    /// Query Template Identification time.
    pub qti: Duration,
    /// Warm-up time summed over all templates.
    pub warmup: Duration,
    /// Query-generation time summed over all templates.
    pub generate: Duration,
}

impl PipelineTiming {
    /// Total time of the three phases.
    pub fn total(&self) -> Duration {
        self.qti + self.warmup + self.generate
    }
}

/// The result of a one-shot [`FeatAug::augment`] run.
#[derive(Debug, Clone)]
pub struct FeatAugResult {
    /// The training table with every selected feature attached.
    pub augmented_train: Table,
    /// The selected queries (ascending validation loss within each template).
    pub queries: Vec<GeneratedQuery>,
    /// The templates that were searched, with their estimated effectiveness.
    pub templates: Vec<ScoredTemplate>,
    /// Names of the attached feature columns.
    pub feature_names: Vec<String>,
    /// Wall-clock breakdown.
    pub timing: PipelineTiming,
    /// Counters of the run's shared execution engine (one engine served both
    /// QTI and generation, so these show the cross-component cache reuse).
    pub engine_stats: EngineStats,
    /// The selected queries as a portable [`AugPlan`] artifact (text
    /// round-trippable, SQL renderable, [`AugModel::compile`]-able).
    pub plan: AugPlan,
}

/// A fitted augmentation: the discovered queries (as a portable [`AugPlan`])
/// plus the compiled [`QueryEngine`] that applies them. Produced by
/// [`FeatAug::fit`]; rebuilt from a shipped plan by [`AugModel::compile`].
///
/// The relevant table backs every aggregation, and clones of the engine
/// handle share one compiled core, so transforming N tables pays each
/// query's aggregation once. Table ownership follows the engine's
/// [`crate::exec::TableHandle`]: `compile` borrows the caller's tables
/// (zero copy), while [`FeatAug::fit`] and [`AugModel::compile_shared`]
/// share the task's `Arc<Table>`s directly and therefore produce an
/// [`OwnedAugModel`] (`AugModel<'static>`, `Send + Sync`) that co-owns its
/// tables and can live in a long-running serving process — no table is
/// cloned anywhere on the fit→serve path.
pub struct AugModel<'a> {
    plan: AugPlan,
    engine: QueryEngine<'a>,
    templates: Vec<ScoredTemplate>,
    queries: Vec<GeneratedQuery>,
    timing: PipelineTiming,
}

/// An [`AugModel`] that co-owns its tables (`Arc`-backed, `Send + Sync +
/// 'static`) — the shape a long-lived serving process holds.
pub type OwnedAugModel = AugModel<'static>;

impl std::fmt::Debug for AugModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AugModel")
            .field("plan", &self.plan)
            .field("templates", &self.templates.len())
            .field("engine_stats", &self.engine.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> AugModel<'a> {
    /// Rebuild a serving model from a portable plan and the table pair — the
    /// online half of offline→online: fit once, ship
    /// [`AugPlan::to_plan_text`], compile here, then
    /// [`AugModel::transform`] / [`AugModel::serve`]. The first use of each
    /// planned query pays its one aggregation; everything after is cache
    /// reads plus gathers.
    ///
    /// Compiled models carry no fit metadata: [`AugModel::templates`] and
    /// [`AugModel::queries`] are empty and [`AugModel::timing`] is zero.
    ///
    /// Runs [`AugPlan::analyze`] first: a plan that does not match the
    /// relevant table (missing or retyped columns, stray group keys,
    /// colliding feature names) fails here with a typed
    /// [`PlanAnalysisError`] instead of deep inside transform or serve.
    pub fn compile(
        plan: AugPlan,
        train: &'a Table,
        relevant: &'a Table,
    ) -> Result<AugModel<'a>, PlanAnalysisError> {
        plan.analyze(train, relevant)?;
        Ok(AugModel::with_engine(
            plan,
            QueryEngine::new(train, relevant),
        ))
    }

    /// [`AugModel::compile`] with shared table ownership: the returned
    /// [`OwnedAugModel`] is `Send + Sync + 'static` — load the tables into
    /// `Arc`s once and the model can outlive the loading scope, move across
    /// threads, and serve for the life of the process. Runs
    /// [`AugPlan::analyze`] first, like [`AugModel::compile`].
    pub fn compile_shared(
        plan: AugPlan,
        train: Arc<Table>,
        relevant: Arc<Table>,
    ) -> Result<OwnedAugModel, PlanAnalysisError> {
        plan.analyze(&train, &relevant)?;
        Ok(AugModel::with_engine(
            plan,
            QueryEngine::new_shared(train, relevant),
        ))
    }

    fn with_engine(plan: AugPlan, engine: QueryEngine<'_>) -> AugModel<'_> {
        AugModel {
            plan,
            engine,
            templates: Vec::new(),
            queries: Vec::new(),
            timing: PipelineTiming::default(),
        }
    }

    /// Upgrade this model to shared table ownership, keeping the engine's
    /// whole compiled core (memoized group indexes, per-group features,
    /// caches, counters). Borrowed tables are cloned once — the one-time
    /// price of a `Send + 'static` model; see
    /// [`crate::exec::QueryEngine::into_owned`].
    pub fn into_owned(self) -> OwnedAugModel {
        AugModel {
            plan: self.plan,
            engine: self.engine.into_owned(),
            templates: self.templates,
            queries: self.queries,
            timing: self.timing,
        }
    }

    /// Build the prepared, allocation-free lookup handle for this model's
    /// plan (see [`crate::serving::ServingHandle`]): every planned query is
    /// resolved to an interned feature slot and every distinct key subset to
    /// a pre-built key→group probe, so the hot path is hash probes plus a
    /// slice copy — no `Debug`/SQL rendering, no [`Value`] clones, zero heap
    /// allocation on the warm path. Pays each cold query's one aggregation
    /// up front; results are bit-identical to [`AugModel::serve`]. The
    /// handle follows this model's engine across
    /// [`AugModel::append_relevant`] epochs by itself.
    pub fn prepare(&self) -> EngineResult<crate::serving::ServingHandle<'a>> {
        crate::serving::ServingHandle::prepare(&self.engine, &self.plan)
    }

    /// Ingest `rows` into the engine's relevant table as one atomic epoch
    /// (see [`crate::exec::QueryEngine::append_relevant`]): only the touched
    /// groups are delta-updated, untouched compiled artifacts are shared
    /// with the prior epoch, and every in-flight lookup/transform keeps the
    /// epoch it pinned. Prepared [`crate::serving::ServingHandle`]s and
    /// later [`AugModel::serve`]/[`AugModel::transform`] calls observe the
    /// new rows on their next request.
    pub fn append_relevant(&self, rows: &Table) -> EngineResult<crate::exec::Epoch> {
        self.engine.append_relevant(rows)
    }

    /// The engine's current epoch (0 until the first
    /// [`AugModel::append_relevant`]).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The portable plan: the selected queries as plain data.
    pub fn plan(&self) -> &AugPlan {
        &self.plan
    }

    /// The templates the fit searched (empty for compiled models).
    pub fn templates(&self) -> &[ScoredTemplate] {
        &self.templates
    }

    /// The fit's selected queries with their search-time features and losses
    /// (empty for compiled models).
    pub fn queries(&self) -> &[GeneratedQuery] {
        &self.queries
    }

    /// Wall-clock breakdown of the fit (zero for compiled models).
    pub fn timing(&self) -> PipelineTiming {
        self.timing
    }

    /// The execution engine backing transform/serve (a cheap handle; clones
    /// share the compiled core).
    pub fn engine(&self) -> &QueryEngine<'a> {
        &self.engine
    }

    /// Counters of the model's engine — fit work plus transform/serve reuse.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The feature column names [`AugModel::transform`] attaches, in order.
    pub fn feature_names(&self) -> Vec<String> {
        self.plan.feature_names()
    }

    /// Materialise every planned feature as `(name, values)` pairs aligned
    /// with `table`'s rows — any table carrying the plan's key columns. The
    /// building block behind [`AugModel::transform`]; useful when the caller
    /// attaches columns itself (e.g. unioning several models' features).
    ///
    /// Non-finite aggregates (NaN, ±∞) surface as `None`, exactly like the
    /// historical one-shot materialisation.
    pub fn transform_features(
        &self,
        table: &Table,
    ) -> EngineResult<Vec<(String, Vec<Option<f64>>)>> {
        self.transform_features_cancel_opt(table, None)
    }

    /// [`AugModel::transform_features`] under a
    /// [`feataug_tabular::CancelToken`]: the per-query aggregations and
    /// gathers poll the token at the kernel checkpoints, so a tripped
    /// deadline abandons the transform mid-work with
    /// [`crate::exec::EngineError::Cancelled`].
    pub fn transform_features_cancel(
        &self,
        table: &Table,
        cancel: &feataug_tabular::CancelToken,
    ) -> EngineResult<Vec<(String, Vec<Option<f64>>)>> {
        self.transform_features_cancel_opt(table, Some(cancel))
    }

    fn transform_features_cancel_opt(
        &self,
        table: &Table,
        cancel: Option<&feataug_tabular::CancelToken>,
    ) -> EngineResult<Vec<(String, Vec<Option<f64>>)>> {
        let queries: Vec<PredicateQuery> =
            self.plan.queries.iter().map(|p| p.query.clone()).collect();
        let features = match cancel {
            Some(token) => self.engine.transform_cancel(&queries, table, token)?,
            None => self.engine.transform(&queries, table)?,
        };
        Ok(queries
            .iter()
            .zip(features)
            .map(|(query, values)| {
                let filtered: Vec<Option<f64>> = values
                    .into_iter()
                    .map(|v| v.filter(|x| x.is_finite()))
                    .collect();
                (query.feature_name(), filtered)
            })
            .collect())
    }

    /// Attach every planned feature to a copy of `table` — the offline
    /// transform. Works on any table carrying the plan's key columns: the
    /// training table reproduces [`FeatAug::augment`]'s output bit for bit,
    /// a test split or a fresh serving table gets the same features for its
    /// own keys (NULL where a key never appeared, or its group was filtered
    /// away). Returns the augmented table and the attached column names
    /// (planned columns whose name already exists in `table` are skipped,
    /// like the historical path).
    pub fn transform_named(&self, table: &Table) -> EngineResult<(Table, Vec<String>)> {
        let mut augmented = table.clone();
        let mut names = Vec::new();
        for (name, values) in self.transform_features(table)? {
            if augmented
                .add_column(name.clone(), Column::from_opt_f64s(&values))
                .is_ok()
            {
                names.push(name);
            }
        }
        Ok((augmented, names))
    }

    /// [`AugModel::transform_named`], returning just the augmented table.
    pub fn transform(&self, table: &Table) -> EngineResult<Table> {
        self.transform_named(table).map(|(table, _)| table)
    }

    /// Answer one online request: the planned features of a single key, in
    /// plan order ([`AugModel::feature_names`] names the slots). `key` holds
    /// one [`Value`] per plan key column (the full foreign key `K`); each
    /// query reads the subset it groups by. `None` marks the same rows a
    /// transform would leave NULL — unseen, filtered-away, NULL or
    /// type-mismatched keys, and non-finite aggregates.
    ///
    /// Lookups read the cached per-group features (two hash probes after a
    /// query's first use), so a warm model answers point requests without
    /// touching the relevant table. One engine epoch is pinned for the whole
    /// request, so every slot answers against the same ingestion snapshot.
    pub fn serve(&self, key: &[Value]) -> EngineResult<Vec<Option<f64>>> {
        if key.len() != self.plan.key_columns.len() {
            return Err(feataug_tabular::TabularError::InvalidArgument(format!(
                "serve key has {} values for {} key columns",
                key.len(),
                self.plan.key_columns.len()
            ))
            .into());
        }
        let core = self.engine.core();
        self.plan
            .queries
            .iter()
            .map(|planned| {
                let mut subset = Vec::with_capacity(planned.query.group_keys.len());
                for group_key in &planned.query.group_keys {
                    let position = self
                        .plan
                        .key_columns
                        .iter()
                        .position(|k| k == group_key)
                        .ok_or_else(|| {
                            feataug_tabular::TabularError::InvalidArgument(format!(
                                "planned query groups by `{group_key}`, which is not a plan \
                                 key column"
                            ))
                        })?;
                    subset.push(key[position].clone());
                }
                self.engine
                    .lookup_pinned(&core, &planned.query, &subset)
                    .map(|v| v.filter(|x| x.is_finite()))
            })
            .collect()
    }

    /// Consume the model into the one-shot [`FeatAugResult`] shape
    /// (`augmented` should be the fitted training table's transform).
    fn into_result(self, augmented_train: Table, feature_names: Vec<String>) -> FeatAugResult {
        let engine_stats = self.engine.stats();
        FeatAugResult {
            augmented_train,
            queries: self.queries,
            templates: self.templates,
            feature_names,
            timing: self.timing,
            engine_stats,
            plan: self.plan,
        }
    }
}

/// The FeatAug system.
#[derive(Debug, Clone)]
pub struct FeatAug {
    cfg: FeatAugConfig,
}

impl FeatAug {
    /// Build the system with a configuration.
    pub fn new(cfg: FeatAugConfig) -> Self {
        FeatAug { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatAugConfig {
        &self.cfg
    }

    /// Run the discovery half of the pipeline (QTI + SQL Query Generation)
    /// and return a fitted [`AugModel`]: the selected queries as a portable
    /// [`AugPlan`] plus the compiled engine that applies them to any table.
    /// The task is validated up front — a malformed task (missing label,
    /// mismatched keys, ghost attributes) fails fast with an
    /// [`AugTaskError`] instead of panicking mid-search.
    ///
    /// The engine co-owns the task's tables (an `Arc` bump each — the task
    /// itself holds them in `Arc`s), so the returned model is already the
    /// `Send + Sync + 'static` [`OwnedAugModel`] shape with no table clone
    /// anywhere on the path.
    pub fn fit(&self, task: &AugTask) -> Result<OwnedAugModel, AugTaskError> {
        task.validate()?;
        let evaluator = FeatureEvaluator::new(task, self.cfg.model, self.cfg.seed);
        let mut timing = PipelineTiming::default();

        // One execution engine per run: QTI compiles group indexes / views
        // while scoring beam nodes, and the generator's search loops reuse
        // them through the cloned handle below. The handles share the task's
        // `Arc<Table>`s — no copy, and the model outlives the task borrow.
        let engine = QueryEngine::with_handles(
            TableHandle::Shared(task.train.clone()),
            TableHandle::Shared(task.relevant.clone()),
        );

        // ---- Query Template Identification ------------------------------------------------
        let templates: Vec<ScoredTemplate> = if self.cfg.enable_qti {
            let mut ti_cfg = self.cfg.template_id.clone();
            ti_cfg.n_templates = self.cfg.n_templates;
            ti_cfg.proxy = self.cfg.proxy;
            let identifier = TemplateIdentifier::with_engine(
                task,
                &evaluator,
                self.cfg.agg_funcs.clone(),
                ti_cfg,
                engine.clone(),
            );
            let (templates, qti_time, _) = identifier.identify();
            timing.qti = qti_time;
            templates
        } else {
            // NoQTI: a single template whose WHERE combination is the full user-provided
            // attribute set.
            vec![ScoredTemplate {
                template: QueryTemplate::new(
                    self.cfg.agg_funcs.clone(),
                    task.resolved_agg_columns(),
                    task.resolved_predicate_attrs(),
                    task.key_columns.clone(),
                ),
                effectiveness: f64::NAN,
            }]
        };

        // ---- SQL Query Generation in each template's pool ---------------------------------
        let mut sql_cfg = self.cfg.sqlgen.clone();
        sql_cfg.enable_warmup = self.cfg.enable_warmup;
        sql_cfg.proxy = self.cfg.proxy;
        let generator = QueryGenerator::with_engine(task, &evaluator, sql_cfg, engine.clone());

        let per_template = per_template_budget(
            self.cfg.enable_qti,
            self.cfg.n_templates,
            self.cfg.queries_per_template,
        );

        // Cross-template dedup by feature name: templates overlap (a deeper
        // template's pool contains the shallower one's queries), and a repeat
        // feature would silently fail to attach. Membership is a `HashSet`
        // probe — the historical `queries.iter().any(...)` scan was O(n²)
        // across the whole selection.
        let mut queries: Vec<GeneratedQuery> = Vec::new();
        let mut seen_names: HashSet<String> = HashSet::new();
        for scored in &templates {
            let (generated, gen_timing) = generator.generate(&scored.template, per_template);
            timing.warmup += gen_timing.warmup;
            timing.generate += gen_timing.generate;
            for g in generated {
                if seen_names.insert(g.feature_name.clone()) {
                    queries.push(g);
                }
            }
        }

        let plan = AugPlan::new(
            task.relevant.name(),
            task.key_columns.clone(),
            queries
                .iter()
                .map(|g| PlannedQuery {
                    query: g.query.clone(),
                    loss: g.loss,
                })
                .collect(),
        );

        Ok(AugModel {
            plan,
            engine,
            templates,
            queries,
            timing,
        })
    }

    /// Alias of [`FeatAug::fit`], kept for the historical borrow/own API
    /// split: `fit` now co-owns the task's `Arc`-held tables directly, so
    /// the returned [`OwnedAugModel`] is `Send + Sync + 'static` without
    /// any table clone.
    pub fn fit_owned(&self, task: &AugTask) -> Result<OwnedAugModel, AugTaskError> {
        self.fit(task)
    }

    /// Run the full historical one-shot pipeline: [`FeatAug::fit`] followed
    /// by [`AugModel::transform`] on the training table. Bit-identical to the
    /// pre-split terminal `augment` (property-tested); panics on a malformed
    /// task — call `fit` directly to handle [`AugTaskError`] gracefully.
    pub fn augment(&self, task: &AugTask) -> FeatAugResult {
        let model = self
            .fit(task)
            .unwrap_or_else(|e| panic!("FeatAug::augment: invalid task: {e}"));
        let (augmented_train, feature_names) = model
            .transform_named(&task.train)
            .expect("transforming the fitted training table");
        model.into_result(augmented_train, feature_names)
    }
}

/// The feature budget each searched template's pool yields.
///
/// The NoQTI ablation runs a single template whose pool must yield the whole
/// `n_templates * queries_per_template` budget to stay comparable with the
/// full system. The inflation is keyed off the ablation flag itself — NOT off
/// the number of templates found — because QTI legitimately returns a single
/// promising template on small attribute sets, and inflating *that* run's
/// budget would silently hand it `n_templates`× the features of an
/// equally-configured multi-template run.
fn per_template_budget(enable_qti: bool, n_templates: usize, queries_per_template: usize) -> usize {
    if enable_qti {
        queries_per_template
    } else {
        n_templates * queries_per_template
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::evaluate_table;
    use feataug_datagen::{tmall, GenConfig};
    use feataug_ml::Task;

    fn tmall_task() -> AugTask {
        let ds = tmall::generate(&GenConfig {
            n_entities: 450,
            fanout: 8,
            n_noise_cols: 1,
            seed: 9,
        });
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::BinaryClassification,
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn tiny_cfg(model: ModelKind) -> FeatAugConfig {
        let mut cfg = FeatAugConfig::fast(model);
        cfg.n_templates = 3;
        cfg.queries_per_template = 2;
        cfg.template_id.n_templates = 3;
        cfg.template_id.pool_samples = 12;
        cfg.sqlgen.warmup_iters = 20;
        cfg.sqlgen.warmup_top_k = 5;
        cfg.sqlgen.search_iters = 8;
        cfg
    }

    #[test]
    fn full_pipeline_attaches_features_and_improves_over_base() {
        let task = tmall_task();
        let result = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        assert!(!result.feature_names.is_empty());
        assert_eq!(
            result.augmented_train.num_columns(),
            task.train.num_columns() + result.feature_names.len()
        );
        assert_eq!(result.augmented_train.num_rows(), task.train.num_rows());
        assert!(result.timing.total() > Duration::from_nanos(0));

        // The base features (age, gender) carry almost no signal, so the base AUC hovers near
        // chance; the planted predicate-aware feature should lift the augmented table clearly
        // above it.
        let base = evaluate_table(
            &task.train,
            "label",
            &task.key_columns,
            task.task,
            ModelKind::Linear,
            5,
        );
        let aug = evaluate_table(
            &result.augmented_train,
            "label",
            &task.key_columns,
            task.task,
            ModelKind::Linear,
            5,
        );
        assert!(
            aug.value > 0.55 && aug.value > base.value,
            "augmentation should clearly beat the near-chance base: base {} vs aug {}",
            base.value,
            aug.value
        );
    }

    /// Regression: the budget inflation must key off the NoQTI ablation flag, not off how many
    /// templates were found — QTI legitimately identifying a single promising template must NOT
    /// silently balloon the feature budget `n_templates`×.
    #[test]
    fn budget_inflation_keys_off_qti_flag_not_template_count() {
        // QTI enabled: per-template budget stays fixed even when only one template survives.
        assert_eq!(per_template_budget(true, 8, 5), 5);
        assert_eq!(per_template_budget(true, 8, 1), 1);
        // NoQTI ablation: the single full template's pool yields the whole budget.
        assert_eq!(per_template_budget(false, 8, 5), 40);
        assert_eq!(per_template_budget(false, 4, 3), 12);
    }

    /// Regression (behavioural): a QTI run that identifies exactly one template must attach at
    /// most `queries_per_template` features from it, not the inflated NoQTI budget.
    #[test]
    fn single_identified_template_keeps_per_template_budget() {
        let task = tmall_task();
        let mut cfg = tiny_cfg(ModelKind::Linear);
        // Force QTI to return exactly one template.
        cfg.n_templates = 1;
        cfg.template_id.n_templates = 1;
        cfg.queries_per_template = 2;
        let result = FeatAug::new(cfg).augment(&task);
        assert_eq!(result.templates.len(), 1);
        assert!(
            result.queries.len() <= 2,
            "QTI run with one template must keep the per-template budget, got {} queries",
            result.queries.len()
        );
    }

    #[test]
    fn one_engine_serves_qti_and_generation() {
        let task = tmall_task();
        let result = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        let stats = result.engine_stats;
        // Beam search alone evaluates pool_samples per node; generation adds its warm-up and
        // search iterations on top. A per-component engine would reset these counters.
        assert!(
            stats.evaluations > 0 && stats.group_indexes >= 1 && stats.column_views >= 1,
            "shared engine saw no work: {stats:?}"
        );
        let qti_only_evals = 12; // pool_samples per node, at least one node
        assert!(
            stats.evaluations > qti_only_evals,
            "generation must evaluate through the same engine as QTI ({stats:?})"
        );
    }

    #[test]
    fn ablation_flags_change_behaviour() {
        let task = tmall_task();
        let full = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        assert!(full.timing.qti > Duration::from_nanos(0));
        assert!(full.timing.warmup > Duration::from_nanos(0));

        let no_qti = FeatAug::new(tiny_cfg(ModelKind::Linear).with_qti(false)).augment(&task);
        assert_eq!(no_qti.timing.qti, Duration::from_nanos(0));
        assert_eq!(no_qti.templates.len(), 1);

        let no_wu = FeatAug::new(tiny_cfg(ModelKind::Linear).with_warmup(false)).augment(&task);
        assert_eq!(no_wu.timing.warmup, Duration::from_nanos(0));
        assert!(!no_wu.feature_names.is_empty());
    }

    /// The seed materialisation: what the historical terminal `augment` did
    /// with the search-time feature vectors. The transform path must
    /// reproduce it bit for bit.
    fn seed_materialise(task: &AugTask, queries: &[GeneratedQuery]) -> (Table, Vec<String>) {
        let mut augmented = (*task.train).clone();
        let mut feature_names = Vec::new();
        for q in queries {
            let values: Vec<Option<f64>> = q
                .feature
                .iter()
                .map(|v| if v.is_finite() { Some(*v) } else { None })
                .collect();
            if augmented
                .add_column(q.feature_name.clone(), Column::from_opt_f64s(&values))
                .is_ok()
            {
                feature_names.push(q.feature_name.clone());
            }
        }
        (augmented, feature_names)
    }

    fn assert_tables_bit_identical(a: &Table, b: &Table) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.column_names(), b.column_names());
        for name in a.column_names() {
            for row in 0..a.num_rows() {
                let va = a.value(row, name).unwrap();
                let vb = b.value(row, name).unwrap();
                let same = match (&va, &vb) {
                    (feataug_tabular::Value::Float(x), feataug_tabular::Value::Float(y)) => {
                        x.to_bits() == y.to_bits()
                    }
                    _ => va == vb,
                };
                assert!(same, "column {name} row {row}: {va:?} vs {vb:?}");
            }
        }
    }

    #[test]
    fn fit_transform_matches_seed_augment_materialisation() {
        let task = tmall_task();
        let model = FeatAug::new(tiny_cfg(ModelKind::Linear))
            .fit(&task)
            .unwrap();
        let (seed_table, seed_names) = seed_materialise(&task, model.queries());
        let (transformed, names) = model.transform_named(&task.train).unwrap();
        assert_eq!(names, seed_names);
        assert_tables_bit_identical(&transformed, &seed_table);

        // And the one-shot wrapper is exactly fit + transform(train).
        let via_augment = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        assert_eq!(via_augment.feature_names, seed_names);
        assert_tables_bit_identical(&via_augment.augmented_train, &seed_table);
    }

    #[test]
    fn transform_on_a_second_table_reuses_cached_aggregations() {
        let task = tmall_task();
        let model = FeatAug::new(tiny_cfg(ModelKind::Linear))
            .fit(&task)
            .unwrap();
        let first = model.transform(&task.train).unwrap();
        let stats_after_first = model.engine_stats();

        // A "test split": the second half of the training table's rows.
        let n = task.train.num_rows();
        let split: Vec<usize> = (n / 2..n).collect();
        let held_out = task.train.take(&split);
        let second = model.transform(&held_out).unwrap();
        assert_eq!(second.num_rows(), held_out.num_rows());
        assert_eq!(second.num_columns(), first.num_columns());
        assert_eq!(
            model.engine_stats(),
            stats_after_first,
            "the second transform must run no new evaluations"
        );
        // Row-for-row, the held-out rows carry the same feature values they
        // had inside the full-table transform (same keys -> same groups).
        for name in model.feature_names() {
            for (i, &src) in split.iter().enumerate() {
                let a = first.value(src, &name).unwrap();
                let b = second.value(i, &name).unwrap();
                assert_eq!(a, b, "feature {name}: row {src} vs held-out row {i}");
            }
        }
    }

    #[test]
    fn serve_answers_single_keys_like_transform_rows() {
        let task = tmall_task();
        let model = FeatAug::new(tiny_cfg(ModelKind::Linear))
            .fit(&task)
            .unwrap();
        let transformed = model.transform(&task.train).unwrap();
        let names = model.feature_names();
        for row in [0usize, 7, 31] {
            let key: Vec<feataug_tabular::Value> = task
                .key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect();
            let served = model.serve(&key).unwrap();
            assert_eq!(served.len(), names.len());
            for (name, value) in names.iter().zip(&served) {
                let expected = match transformed.value(row, name).unwrap() {
                    feataug_tabular::Value::Float(f) => Some(f),
                    feataug_tabular::Value::Null => None,
                    other => panic!("feature column held {other:?}"),
                };
                assert_eq!(
                    value.map(f64::to_bits),
                    expected.map(f64::to_bits),
                    "serve({key:?})[{name}] disagrees with transform row {row}"
                );
            }
        }
        // Arity mismatch errors; an unseen key serves all-NULL.
        assert!(model.serve(&[]).is_err());
        let unseen: Vec<feataug_tabular::Value> = task
            .key_columns
            .iter()
            .map(|_| feataug_tabular::Value::Str("no_such_key".into()))
            .collect();
        assert!(model.serve(&unseen).unwrap().iter().all(|v| v.is_none()));
    }

    #[test]
    fn fit_validates_the_task_up_front() {
        let mut task = tmall_task();
        task.label_column = "ghost".into();
        let err = FeatAug::new(tiny_cfg(ModelKind::Linear))
            .fit(&task)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::problem::AugTaskError::MissingLabelColumn { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "invalid task")]
    fn augment_panics_with_a_description_on_invalid_tasks() {
        let mut task = tmall_task();
        task.key_columns = vec![];
        FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
    }

    #[test]
    fn plan_round_trips_and_recompiles_into_an_equivalent_model() {
        let task = tmall_task();
        let model = FeatAug::new(tiny_cfg(ModelKind::Linear))
            .fit(&task)
            .unwrap();
        let text = model.plan().to_plan_text();
        let plan = crate::query::AugPlan::from_plan_text(&text).unwrap();
        assert_eq!(&plan, model.plan());

        let compiled = AugModel::compile(plan, &task.train, &task.relevant).expect("plan compiles");
        assert!(compiled.templates().is_empty() && compiled.queries().is_empty());
        let (a, names_a) = model.transform_named(&task.train).unwrap();
        let (b, names_b) = compiled.transform_named(&task.train).unwrap();
        assert_eq!(names_a, names_b);
        assert_tables_bit_identical(&a, &b);
    }

    #[test]
    fn config_builders_propagate() {
        let cfg = FeatAugConfig::fast(ModelKind::RandomForest)
            .with_seed(7)
            .with_proxy(LowCostProxy::Spearman)
            .with_n_templates(3);
        assert_eq!(cfg.sqlgen.seed, 7);
        assert_eq!(cfg.template_id.seed, 7);
        assert_eq!(cfg.sqlgen.proxy, LowCostProxy::Spearman);
        assert_eq!(cfg.template_id.n_templates, 3);
    }
}
