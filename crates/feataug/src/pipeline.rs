//! The end-to-end FeatAug pipeline (paper Figure 2).
//!
//! [`FeatAug::augment`] runs Query Template Identification (optional — users who know their
//! data can fix the template instead), then runs SQL Query Generation inside each promising
//! template's pool, and finally materialises the selected queries' features onto the training
//! table. The ablation flags map one-to-one onto the paper's Table VII rows: `enable_qti = false`
//! is "NoQTI", `enable_warmup = false` is "NoWU".
//!
//! Both components evaluate their candidates through **one shared
//! [`QueryEngine`]** compiled per pipeline run (i.e. per `(train, relevant)`
//! pair): the identifier scores every beam-search node through it, and the
//! generator's warm-up and TPE loops of *all* templates then reuse the group
//! indexes, gather maps, column views and cached feature vectors beam search
//! already built. [`FeatAugResult::engine_stats`] exposes the cross-component
//! cache reuse; batch evaluation inside the engine fans candidate pools
//! across a [`std::thread::scope`]-based worker pool (see [`crate::exec`]).

use std::time::Duration;

use feataug_ml::ModelKind;
use feataug_tabular::{AggFunc, Column, Table};

use crate::evaluation::FeatureEvaluator;
use crate::exec::{EngineStats, QueryEngine};
use crate::generation::{GeneratedQuery, QueryGenerator, SqlGenConfig};
use crate::problem::AugTask;
use crate::proxy::LowCostProxy;
use crate::template::QueryTemplate;
use crate::template_id::{ScoredTemplate, TemplateIdConfig, TemplateIdentifier};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct FeatAugConfig {
    /// Number of promising query templates to search (paper default: 8).
    pub n_templates: usize,
    /// Number of queries kept per template's pool (paper default: 5 → 40 features in total).
    pub queries_per_template: usize,
    /// Run the Query Template Identification component ("NoQTI" ablation sets this to false).
    pub enable_qti: bool,
    /// Run the warm-up phase of SQL Query Generation ("NoWU" ablation sets this to false).
    pub enable_warmup: bool,
    /// The low-cost proxy used by the warm-up and by template identification.
    pub proxy: LowCostProxy,
    /// The downstream model optimised during the search.
    pub model: ModelKind,
    /// Aggregation-function set `F` shared by all templates.
    pub agg_funcs: Vec<AggFunc>,
    /// SQL Query Generation settings (iteration budgets, TPE settings).
    pub sqlgen: SqlGenConfig,
    /// Query Template Identification settings (beam width, depth, pool samples).
    pub template_id: TemplateIdConfig,
    /// RNG seed.
    pub seed: u64,
}

impl FeatAugConfig {
    /// Paper-style defaults for the given downstream model.
    pub fn new(model: ModelKind) -> Self {
        FeatAugConfig {
            n_templates: 8,
            queries_per_template: 5,
            enable_qti: true,
            enable_warmup: true,
            proxy: LowCostProxy::MutualInformation,
            model,
            agg_funcs: AggFunc::all().to_vec(),
            sqlgen: SqlGenConfig::default(),
            template_id: TemplateIdConfig::default(),
            seed: 42,
        }
    }

    /// A reduced-budget configuration for tests, examples and the laptop-scale experiment
    /// harness (fewer templates, fewer TPE iterations, the cheap aggregation functions only).
    pub fn fast(model: ModelKind) -> Self {
        FeatAugConfig {
            n_templates: 4,
            queries_per_template: 3,
            agg_funcs: vec![
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Count,
                AggFunc::Max,
                AggFunc::Min,
            ],
            sqlgen: SqlGenConfig::fast(),
            template_id: TemplateIdConfig::fast(),
            ..FeatAugConfig::new(model)
        }
    }

    /// Builder-style seed override (propagated to both components).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.sqlgen.seed = seed;
        self.template_id.seed = seed;
        self
    }

    /// Builder-style proxy override (propagated to both components).
    pub fn with_proxy(mut self, proxy: LowCostProxy) -> Self {
        self.proxy = proxy;
        self.sqlgen.proxy = proxy;
        self.template_id.proxy = proxy;
        self
    }

    /// Builder-style ablation switch for the Query Template Identification component.
    pub fn with_qti(mut self, enabled: bool) -> Self {
        self.enable_qti = enabled;
        self
    }

    /// Builder-style ablation switch for the warm-up phase.
    pub fn with_warmup(mut self, enabled: bool) -> Self {
        self.enable_warmup = enabled;
        self.sqlgen.enable_warmup = enabled;
        self
    }

    /// Builder-style override of the number of templates searched.
    pub fn with_n_templates(mut self, n: usize) -> Self {
        self.n_templates = n;
        self.template_id.n_templates = n;
        self
    }
}

/// Wall-clock breakdown of one pipeline run (the three series of the paper's Figures 7–9).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTiming {
    /// Query Template Identification time.
    pub qti: Duration,
    /// Warm-up time summed over all templates.
    pub warmup: Duration,
    /// Query-generation time summed over all templates.
    pub generate: Duration,
}

impl PipelineTiming {
    /// Total time of the three phases.
    pub fn total(&self) -> Duration {
        self.qti + self.warmup + self.generate
    }
}

/// The result of a pipeline run.
#[derive(Debug, Clone)]
pub struct FeatAugResult {
    /// The training table with every selected feature attached.
    pub augmented_train: Table,
    /// The selected queries (ascending validation loss within each template).
    pub queries: Vec<GeneratedQuery>,
    /// The templates that were searched, with their estimated effectiveness.
    pub templates: Vec<ScoredTemplate>,
    /// Names of the attached feature columns.
    pub feature_names: Vec<String>,
    /// Wall-clock breakdown.
    pub timing: PipelineTiming,
    /// Counters of the run's shared execution engine (one engine served both
    /// QTI and generation, so these show the cross-component cache reuse).
    pub engine_stats: EngineStats,
}

/// The FeatAug system.
#[derive(Debug, Clone)]
pub struct FeatAug {
    cfg: FeatAugConfig,
}

impl FeatAug {
    /// Build the system with a configuration.
    pub fn new(cfg: FeatAugConfig) -> Self {
        FeatAug { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatAugConfig {
        &self.cfg
    }

    /// Run the full pipeline on a task.
    pub fn augment(&self, task: &AugTask) -> FeatAugResult {
        let evaluator = FeatureEvaluator::new(task, self.cfg.model, self.cfg.seed);
        let mut timing = PipelineTiming::default();

        // One execution engine per run: QTI compiles group indexes / views
        // while scoring beam nodes, and the generator's search loops reuse
        // them through the cloned handle below.
        let engine = QueryEngine::new(&task.train, &task.relevant);

        // ---- Query Template Identification ------------------------------------------------
        let templates: Vec<ScoredTemplate> = if self.cfg.enable_qti {
            let mut ti_cfg = self.cfg.template_id.clone();
            ti_cfg.n_templates = self.cfg.n_templates;
            ti_cfg.proxy = self.cfg.proxy;
            let identifier = TemplateIdentifier::with_engine(
                task,
                &evaluator,
                self.cfg.agg_funcs.clone(),
                ti_cfg,
                engine.clone(),
            );
            let (templates, qti_time, _) = identifier.identify();
            timing.qti = qti_time;
            templates
        } else {
            // NoQTI: a single template whose WHERE combination is the full user-provided
            // attribute set.
            vec![ScoredTemplate {
                template: QueryTemplate::new(
                    self.cfg.agg_funcs.clone(),
                    task.resolved_agg_columns(),
                    task.resolved_predicate_attrs(),
                    task.key_columns.clone(),
                ),
                effectiveness: f64::NAN,
            }]
        };

        // ---- SQL Query Generation in each template's pool ---------------------------------
        let mut sql_cfg = self.cfg.sqlgen.clone();
        sql_cfg.enable_warmup = self.cfg.enable_warmup;
        sql_cfg.proxy = self.cfg.proxy;
        let generator = QueryGenerator::with_engine(task, &evaluator, sql_cfg, engine.clone());

        let per_template = per_template_budget(
            self.cfg.enable_qti,
            self.cfg.n_templates,
            self.cfg.queries_per_template,
        );

        let mut queries: Vec<GeneratedQuery> = Vec::new();
        for scored in &templates {
            let (generated, gen_timing) = generator.generate(&scored.template, per_template);
            timing.warmup += gen_timing.warmup;
            timing.generate += gen_timing.generate;
            for g in generated {
                if !queries.iter().any(|q| q.feature_name == g.feature_name) {
                    queries.push(g);
                }
            }
        }

        // ---- Materialise the selected features onto the training table --------------------
        let mut augmented = task.train.clone();
        let mut feature_names = Vec::new();
        for q in &queries {
            let values: Vec<Option<f64>> = q
                .feature
                .iter()
                .map(|v| if v.is_finite() { Some(*v) } else { None })
                .collect();
            if augmented
                .add_column(q.feature_name.clone(), Column::from_opt_f64s(&values))
                .is_ok()
            {
                feature_names.push(q.feature_name.clone());
            }
        }

        FeatAugResult {
            augmented_train: augmented,
            queries,
            templates,
            feature_names,
            timing,
            engine_stats: engine.stats(),
        }
    }
}

/// The feature budget each searched template's pool yields.
///
/// The NoQTI ablation runs a single template whose pool must yield the whole
/// `n_templates * queries_per_template` budget to stay comparable with the
/// full system. The inflation is keyed off the ablation flag itself — NOT off
/// the number of templates found — because QTI legitimately returns a single
/// promising template on small attribute sets, and inflating *that* run's
/// budget would silently hand it `n_templates`× the features of an
/// equally-configured multi-template run.
fn per_template_budget(enable_qti: bool, n_templates: usize, queries_per_template: usize) -> usize {
    if enable_qti {
        queries_per_template
    } else {
        n_templates * queries_per_template
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::evaluate_table;
    use feataug_datagen::{tmall, GenConfig};
    use feataug_ml::Task;

    fn tmall_task() -> AugTask {
        let ds = tmall::generate(&GenConfig {
            n_entities: 450,
            fanout: 8,
            n_noise_cols: 1,
            seed: 9,
        });
        AugTask::new(
            ds.train,
            ds.relevant,
            ds.key_columns,
            ds.label_column,
            Task::BinaryClassification,
        )
        .with_agg_columns(ds.agg_columns)
        .with_predicate_attrs(ds.predicate_attrs)
    }

    fn tiny_cfg(model: ModelKind) -> FeatAugConfig {
        let mut cfg = FeatAugConfig::fast(model);
        cfg.n_templates = 3;
        cfg.queries_per_template = 2;
        cfg.template_id.n_templates = 3;
        cfg.template_id.pool_samples = 12;
        cfg.sqlgen.warmup_iters = 20;
        cfg.sqlgen.warmup_top_k = 5;
        cfg.sqlgen.search_iters = 8;
        cfg
    }

    #[test]
    fn full_pipeline_attaches_features_and_improves_over_base() {
        let task = tmall_task();
        let result = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        assert!(!result.feature_names.is_empty());
        assert_eq!(
            result.augmented_train.num_columns(),
            task.train.num_columns() + result.feature_names.len()
        );
        assert_eq!(result.augmented_train.num_rows(), task.train.num_rows());
        assert!(result.timing.total() > Duration::from_nanos(0));

        // The base features (age, gender) carry almost no signal, so the base AUC hovers near
        // chance; the planted predicate-aware feature should lift the augmented table clearly
        // above it.
        let base = evaluate_table(
            &task.train,
            "label",
            &task.key_columns,
            task.task,
            ModelKind::Linear,
            5,
        );
        let aug = evaluate_table(
            &result.augmented_train,
            "label",
            &task.key_columns,
            task.task,
            ModelKind::Linear,
            5,
        );
        assert!(
            aug.value > 0.55 && aug.value > base.value,
            "augmentation should clearly beat the near-chance base: base {} vs aug {}",
            base.value,
            aug.value
        );
    }

    /// Regression: the budget inflation must key off the NoQTI ablation flag, not off how many
    /// templates were found — QTI legitimately identifying a single promising template must NOT
    /// silently balloon the feature budget `n_templates`×.
    #[test]
    fn budget_inflation_keys_off_qti_flag_not_template_count() {
        // QTI enabled: per-template budget stays fixed even when only one template survives.
        assert_eq!(per_template_budget(true, 8, 5), 5);
        assert_eq!(per_template_budget(true, 8, 1), 1);
        // NoQTI ablation: the single full template's pool yields the whole budget.
        assert_eq!(per_template_budget(false, 8, 5), 40);
        assert_eq!(per_template_budget(false, 4, 3), 12);
    }

    /// Regression (behavioural): a QTI run that identifies exactly one template must attach at
    /// most `queries_per_template` features from it, not the inflated NoQTI budget.
    #[test]
    fn single_identified_template_keeps_per_template_budget() {
        let task = tmall_task();
        let mut cfg = tiny_cfg(ModelKind::Linear);
        // Force QTI to return exactly one template.
        cfg.n_templates = 1;
        cfg.template_id.n_templates = 1;
        cfg.queries_per_template = 2;
        let result = FeatAug::new(cfg).augment(&task);
        assert_eq!(result.templates.len(), 1);
        assert!(
            result.queries.len() <= 2,
            "QTI run with one template must keep the per-template budget, got {} queries",
            result.queries.len()
        );
    }

    #[test]
    fn one_engine_serves_qti_and_generation() {
        let task = tmall_task();
        let result = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        let stats = result.engine_stats;
        // Beam search alone evaluates pool_samples per node; generation adds its warm-up and
        // search iterations on top. A per-component engine would reset these counters.
        assert!(
            stats.evaluations > 0 && stats.group_indexes >= 1 && stats.column_views >= 1,
            "shared engine saw no work: {stats:?}"
        );
        let qti_only_evals = 12; // pool_samples per node, at least one node
        assert!(
            stats.evaluations > qti_only_evals,
            "generation must evaluate through the same engine as QTI ({stats:?})"
        );
    }

    #[test]
    fn ablation_flags_change_behaviour() {
        let task = tmall_task();
        let full = FeatAug::new(tiny_cfg(ModelKind::Linear)).augment(&task);
        assert!(full.timing.qti > Duration::from_nanos(0));
        assert!(full.timing.warmup > Duration::from_nanos(0));

        let no_qti = FeatAug::new(tiny_cfg(ModelKind::Linear).with_qti(false)).augment(&task);
        assert_eq!(no_qti.timing.qti, Duration::from_nanos(0));
        assert_eq!(no_qti.templates.len(), 1);

        let no_wu = FeatAug::new(tiny_cfg(ModelKind::Linear).with_warmup(false)).augment(&task);
        assert_eq!(no_wu.timing.warmup, Duration::from_nanos(0));
        assert!(!no_wu.feature_names.is_empty());
    }

    #[test]
    fn config_builders_propagate() {
        let cfg = FeatAugConfig::fast(ModelKind::RandomForest)
            .with_seed(7)
            .with_proxy(LowCostProxy::Spearman)
            .with_n_templates(3);
        assert_eq!(cfg.sqlgen.seed, 7);
        assert_eq!(cfg.template_id.seed, 7);
        assert_eq!(cfg.sqlgen.proxy, LowCostProxy::Spearman);
        assert_eq!(cfg.template_id.n_templates, 3);
    }
}
