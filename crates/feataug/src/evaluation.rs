//! Evaluating candidate features and augmented training tables with the downstream model.
//!
//! The paper's oracle is `L(A(D^q_train), D^q_valid)` (Problem 1): split the augmented training
//! table, train the downstream model on the train split and read its validation loss. This
//! module wraps that loop:
//!
//! * [`FeatureEvaluator`] holds the encoded base training table once and scores individual
//!   candidate feature vectors against it (used inside the search loop),
//! * [`evaluate_table`] scores an entire augmented table on a train/valid/test protocol (used to
//!   report the final numbers of the experiment tables).

use std::sync::OnceLock;

use feataug_ml::{evaluate, Dataset, EvalResult, ModelKind, Task};
use feataug_tabular::Table;

use crate::encoding::table_to_dataset;
use crate::problem::AugTask;

/// Default train/valid/test fractions (paper Section VII-A6: 0.6 / 0.2 / 0.2).
pub const SPLIT: (f64, f64) = (0.6, 0.2);

/// Scores candidate features by training the downstream model on
/// (base features + the candidate) and reading the validation metric.
#[derive(Debug, Clone)]
pub struct FeatureEvaluator {
    base: Dataset,
    model: ModelKind,
    seed: u64,
    /// Memoized base validation loss. The base table never changes for the
    /// evaluator's lifetime, yet `base_loss` is consulted once per candidate
    /// that fails to materialise — without memoization each such candidate
    /// would retrain the downstream model from scratch.
    base_loss: OnceLock<f64>,
}

impl FeatureEvaluator {
    /// Build an evaluator from the task's training table (key columns excluded from features).
    pub fn new(task: &AugTask, model: ModelKind, seed: u64) -> Self {
        let base = table_to_dataset(
            &task.train,
            &task.label_column,
            &task.key_columns,
            task.task,
        );
        FeatureEvaluator {
            base,
            model,
            seed,
            base_loss: OnceLock::new(),
        }
    }

    /// The downstream model kind this evaluator trains.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The base dataset (without any generated features).
    pub fn base_dataset(&self) -> &Dataset {
        &self.base
    }

    /// Validation loss of the base table without any augmentation (lower is better).
    /// Trained once and memoized: the base table and split are fixed, so every
    /// later call returns the cached value.
    pub fn base_loss(&self) -> f64 {
        *self.base_loss.get_or_init(|| {
            let (train, valid) = self.base.split2(SPLIT.0 + SPLIT.1, self.seed);
            evaluate(self.model, &train, &valid).loss
        })
    }

    /// Validation loss after appending one candidate feature vector (aligned with the training
    /// table's rows). Lower is better.
    pub fn loss_with_feature(&self, name: &str, values: &[f64]) -> f64 {
        self.result_with_features(&[(name.to_string(), values.to_vec())])
            .loss
    }

    /// Validation result after appending several candidate features.
    pub fn result_with_features(&self, features: &[(String, Vec<f64>)]) -> EvalResult {
        let mut data = self.base.clone();
        for (name, values) in features {
            data = data.with_feature(name.clone(), values);
        }
        let (train, valid) = data.split2(SPLIT.0 + SPLIT.1, self.seed);
        evaluate(self.model, &train, &valid)
    }

    /// The learning task being evaluated.
    pub fn task(&self) -> Task {
        self.base.task
    }
}

/// Train on 60%, validate on 20% and report the metric on the held-out 20% test split of an
/// augmented training table — the protocol behind the paper's result tables.
pub fn evaluate_table(
    augmented: &Table,
    label_column: &str,
    exclude: &[String],
    task: Task,
    model: ModelKind,
    seed: u64,
) -> EvalResult {
    let data = table_to_dataset(augmented, label_column, exclude, task);
    let (train, _valid, test) = data.split3(SPLIT.0, SPLIT.1, seed);
    // The search used the validation split; final numbers are reported on the test split. The
    // model is retrained on the train split only, mirroring the paper's protocol.
    evaluate(model, &train, &test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_ml::Metric;
    use feataug_tabular::Column;

    fn task() -> AugTask {
        let n = 300;
        let keys: Vec<String> = (0..n).map(|i| format!("u{i}")).collect();
        let ages: Vec<i64> = (0..n).map(|i| 20 + (i % 50) as i64).collect();
        let labels: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        let mut train = Table::new("d");
        train.add_column("k", Column::from_strings(&keys)).unwrap();
        train.add_column("age", Column::from_i64s(&ages)).unwrap();
        train
            .add_column("label", Column::from_i64s(&labels))
            .unwrap();

        let mut relevant = Table::new("r");
        relevant
            .add_column("k", Column::from_strings(&keys))
            .unwrap();
        relevant
            .add_column("x", Column::from_f64s(&vec![1.0; n]))
            .unwrap();
        AugTask::new(
            train,
            relevant,
            vec!["k".into()],
            "label",
            Task::BinaryClassification,
        )
    }

    #[test]
    fn informative_feature_beats_base_loss() {
        let t = task();
        let evaluator = FeatureEvaluator::new(&t, ModelKind::Linear, 3);
        let base = evaluator.base_loss();
        let labels = t.labels().unwrap();
        let informative: Vec<f64> = labels.iter().map(|&y| y * 4.0 + 0.1).collect();
        let with = evaluator.loss_with_feature("good", &informative);
        assert!(
            with < base,
            "informative feature should lower the loss ({with} vs {base})"
        );
    }

    #[test]
    fn base_loss_is_trained_once_and_memoized() {
        let t = task();
        let evaluator = FeatureEvaluator::new(&t, ModelKind::Linear, 3);
        assert!(
            evaluator.base_loss.get().is_none(),
            "constructor must not train eagerly"
        );
        let first = evaluator.base_loss();
        assert_eq!(
            evaluator.base_loss.get().copied(),
            Some(first),
            "first call must populate the memo"
        );
        // Repeated calls (generate()'s phase 2 makes one per failed candidate)
        // read the memo instead of retraining.
        assert_eq!(evaluator.base_loss().to_bits(), first.to_bits());
        // Clones carry the memo with them.
        assert_eq!(evaluator.clone().base_loss.get().copied(), Some(first));
    }

    #[test]
    fn noise_feature_does_not_dramatically_help() {
        let t = task();
        let evaluator = FeatureEvaluator::new(&t, ModelKind::Linear, 3);
        let noise: Vec<f64> = (0..t.train.num_rows())
            .map(|i| ((i * 37) % 23) as f64)
            .collect();
        let with = evaluator.loss_with_feature("noise", &noise);
        // For a balanced random label, AUC stays near 0.5 -> loss near -0.5.
        assert!(
            with > -0.75,
            "noise feature should not look great, got {with}"
        );
    }

    #[test]
    fn multiple_features_accumulate() {
        let t = task();
        let evaluator = FeatureEvaluator::new(&t, ModelKind::Linear, 3);
        let labels = t.labels().unwrap();
        let f1: Vec<f64> = labels.iter().map(|&y| y + 0.2).collect();
        let f2: Vec<f64> = labels.iter().map(|&y| 1.0 - y).collect();
        let result =
            evaluator.result_with_features(&[("a".to_string(), f1), ("b".to_string(), f2)]);
        assert_eq!(result.metric, Metric::Auc);
        assert!(result.value > 0.9);
    }

    #[test]
    fn evaluate_table_reports_test_metric() {
        let t = task();
        let result = evaluate_table(
            &t.train,
            "label",
            &t.key_columns,
            Task::BinaryClassification,
            ModelKind::Linear,
            7,
        );
        assert_eq!(result.metric, Metric::Auc);
        assert!((0.0..=1.0).contains(&result.value));
    }
}
