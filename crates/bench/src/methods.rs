//! Running FeatAug, its ablations and every baseline under a common evaluation protocol.

use feataug::baselines::{
    arda_augment, autofeature_augment, featuretools_augment, random_augment, AutoFeatureStrategy,
};
use feataug::evaluation::evaluate_table;
use feataug::pipeline::{FeatAug, FeatAugConfig, PipelineTiming};
use feataug::problem::AugTask;
use feataug::proxy::LowCostProxy;
use feataug_featuretools::DfsConfig;
use feataug_fsel::{ScoreSelector, ScoringMethod, WrapperDirection, WrapperSelector};
use feataug_ml::{EvalResult, ModelKind};
use feataug_tabular::{AggFunc, Table};

/// Which FeatAug configuration to run (the paper's ablation rows and proxy variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatAugVariant {
    /// Full system (QTI + warm-up).
    Full,
    /// Without Query Template Identification ("NoQTI").
    NoQti,
    /// Without the warm-up phase ("NoWU").
    NoWu,
    /// Full system with an alternative low-cost proxy (Table VIII).
    WithProxy(LowCostProxy),
}

/// An augmentation method evaluated by the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// No augmentation (the bare training table) — not in the paper's tables, but a useful
    /// reference row.
    Base,
    /// Featuretools without a selector ("FT").
    Featuretools,
    /// Featuretools + linear-importance selector ("FT+LR").
    FtLr,
    /// Featuretools + GBDT-importance selector ("FT+GBDT").
    FtGbdt,
    /// Featuretools + mutual-information selector ("FT+MI").
    FtMi,
    /// Featuretools + chi-square selector ("FT+Chi2", classification only).
    FtChi2,
    /// Featuretools + Gini selector ("FT+Gini", classification only).
    FtGini,
    /// Featuretools + forward selection ("FT+Forward").
    FtForward,
    /// Featuretools + backward elimination ("FT+Backward").
    FtBackward,
    /// Random templates + random queries ("Random").
    Random,
    /// ARDA-style random-injection selection (one-to-one tables).
    Arda,
    /// AutoFeature with a multi-armed bandit ("AutoFeat-MAB").
    AutoFeatMab,
    /// AutoFeature with an ε-greedy value learner ("AutoFeat-DQN").
    AutoFeatDqn,
    /// FeatAug (full system or an ablation variant).
    FeatAug(FeatAugVariant),
}

impl Method {
    /// The methods of Table III (one-to-many datasets), in paper row order.
    pub fn table3_methods() -> Vec<Method> {
        vec![
            Method::Featuretools,
            Method::FtLr,
            Method::FtGbdt,
            Method::FtMi,
            Method::FtChi2,
            Method::FtGini,
            Method::FtForward,
            Method::FtBackward,
            Method::Random,
            Method::FeatAug(FeatAugVariant::Full),
        ]
    }

    /// The methods of Table VI (one-to-one / single-table datasets), in paper row order.
    pub fn table6_methods() -> Vec<Method> {
        vec![
            Method::Featuretools,
            Method::FtLr,
            Method::FtGbdt,
            Method::FtMi,
            Method::FtChi2,
            Method::FtGini,
            Method::Arda,
            Method::AutoFeatMab,
            Method::AutoFeatDqn,
            Method::Random,
            Method::FeatAug(FeatAugVariant::Full),
        ]
    }

    /// Paper-style row label.
    pub fn name(&self) -> String {
        match self {
            Method::Base => "NoAug".to_string(),
            Method::Featuretools => "FT".to_string(),
            Method::FtLr => "FT+LR".to_string(),
            Method::FtGbdt => "FT+GBDT".to_string(),
            Method::FtMi => "FT+MI".to_string(),
            Method::FtChi2 => "FT+Chi2".to_string(),
            Method::FtGini => "FT+Gini".to_string(),
            Method::FtForward => "FT+Forward".to_string(),
            Method::FtBackward => "FT+Backward".to_string(),
            Method::Random => "Random".to_string(),
            Method::Arda => "ARDA".to_string(),
            Method::AutoFeatMab => "AutoFeat-MAB".to_string(),
            Method::AutoFeatDqn => "AutoFeat-DQN".to_string(),
            Method::FeatAug(FeatAugVariant::Full) => "FeatAug".to_string(),
            Method::FeatAug(FeatAugVariant::NoQti) => "FeatAug(NoQTI)".to_string(),
            Method::FeatAug(FeatAugVariant::NoWu) => "FeatAug(NoWU)".to_string(),
            Method::FeatAug(FeatAugVariant::WithProxy(p)) => format!("FeatAug[{}]", p.name()),
        }
    }

    /// True for methods that only apply to classification tasks (the paper leaves their
    /// regression cells blank).
    pub fn classification_only(&self) -> bool {
        matches!(self, Method::FtChi2 | Method::FtGini)
    }
}

/// The DFS configuration shared by all Featuretools-based baselines: a representative subset of
/// the aggregation functions, so the candidate pool stays laptop-sized.
pub fn dfs_config() -> DfsConfig {
    DfsConfig {
        agg_funcs: vec![
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Count,
            AggFunc::Max,
            AggFunc::Min,
            AggFunc::Std,
            AggFunc::Median,
            AggFunc::CountDistinct,
        ],
        ..DfsConfig::default()
    }
}

/// The FeatAug configuration used by the experiment harness: the `fast` profile scaled to the
/// requested feature budget.
pub fn feataug_config(
    model: ModelKind,
    variant: FeatAugVariant,
    n_features: usize,
    seed: u64,
) -> FeatAugConfig {
    let queries_per_template = 3usize;
    let n_templates = (n_features / queries_per_template).clamp(1, 8);
    let mut cfg = FeatAugConfig::fast(model)
        .with_seed(seed)
        .with_n_templates(n_templates);
    cfg.queries_per_template = queries_per_template;
    // A slightly larger search budget than the `fast` test profile, so the harness's result
    // shape is stable while remaining laptop-friendly.
    cfg.sqlgen.warmup_iters = 40;
    cfg.sqlgen.warmup_top_k = 8;
    cfg.sqlgen.search_iters = 15;
    cfg.template_id.pool_samples = 16;
    match variant {
        FeatAugVariant::Full => {}
        FeatAugVariant::NoQti => cfg = cfg.with_qti(false),
        FeatAugVariant::NoWu => cfg = cfg.with_warmup(false),
        FeatAugVariant::WithProxy(p) => cfg = cfg.with_proxy(p),
    }
    cfg
}

/// The outcome of one (dataset, method, model) cell: the augmented table's test metric plus the
/// pipeline timing when the method was FeatAug.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Test-split evaluation of the augmented table.
    pub result: EvalResult,
    /// The augmented training table the method produced.
    pub n_features_added: usize,
    /// FeatAug-only: wall-clock breakdown of the pipeline.
    pub timing: Option<PipelineTiming>,
}

/// Produce the augmented training table for one method.
pub fn augment_with(
    task: &AugTask,
    method: Method,
    model: ModelKind,
    n_features: usize,
    seed: u64,
) -> (Table, Option<PipelineTiming>) {
    let dfs = dfs_config();
    match method {
        Method::Base => ((*task.train).clone(), None),
        Method::Featuretools => (featuretools_augment(task, n_features, None, &dfs), None),
        Method::FtLr => {
            let sel = ScoreSelector::new(ScoringMethod::LinearImportance);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtGbdt => {
            let sel = ScoreSelector::new(ScoringMethod::GbdtImportance);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtMi => {
            let sel = ScoreSelector::new(ScoringMethod::MutualInformation);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtChi2 => {
            let sel = ScoreSelector::new(ScoringMethod::ChiSquare);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtGini => {
            let sel = ScoreSelector::new(ScoringMethod::Gini);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtForward => {
            // Wrapper selectors re-train a model per candidate; the cheap linear model keeps the
            // harness tractable (documented in EXPERIMENTS.md).
            let sel = WrapperSelector::new(WrapperDirection::Forward, ModelKind::Linear);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::FtBackward => {
            let sel = WrapperSelector::new(WrapperDirection::Backward, ModelKind::Linear);
            (
                featuretools_augment(task, n_features, Some(&sel), &dfs),
                None,
            )
        }
        Method::Random => {
            let queries_per_template = 3usize;
            let n_templates = (n_features / queries_per_template).max(1);
            (
                random_augment(
                    task,
                    &dfs.agg_funcs,
                    n_templates,
                    queries_per_template,
                    seed,
                ),
                None,
            )
        }
        Method::Arda => (arda_augment(task, n_features, model, seed), None),
        Method::AutoFeatMab => (
            autofeature_augment(
                task,
                n_features,
                ModelKind::Linear,
                AutoFeatureStrategy::Mab,
                seed,
            ),
            None,
        ),
        Method::AutoFeatDqn => (
            autofeature_augment(
                task,
                n_features,
                ModelKind::Linear,
                AutoFeatureStrategy::Dqn,
                seed,
            ),
            None,
        ),
        Method::FeatAug(variant) => {
            let cfg = feataug_config(model, variant, n_features, seed);
            let result = FeatAug::new(cfg).augment(task);
            (result.augmented_train, Some(result.timing))
        }
    }
}

/// Run one (dataset, method, model) cell: augment, then evaluate on the held-out test split.
pub fn run_method(
    task: &AugTask,
    method: Method,
    model: ModelKind,
    n_features: usize,
    seed: u64,
) -> MethodOutcome {
    let (augmented, timing) = augment_with(task, method, model, n_features, seed);
    let result = evaluate_table(
        &augmented,
        &task.label_column,
        &task.key_columns,
        task.task,
        model,
        seed,
    );
    MethodOutcome {
        result,
        n_features_added: augmented
            .num_columns()
            .saturating_sub(task.train.num_columns()),
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::build_task_with;
    use feataug_datagen::GenConfig;

    #[test]
    fn every_table3_method_runs_on_a_tiny_dataset() {
        let ds = build_task_with("tmall", &GenConfig::tiny());
        for method in Method::table3_methods() {
            if matches!(method, Method::FtForward | Method::FtBackward) {
                continue; // wrapper selectors are exercised in their own unit tests; skip here for speed
            }
            let outcome = run_method(&ds.task, method, ModelKind::Linear, 4, 1);
            assert!(
                outcome.result.value.is_finite(),
                "{} produced a non-finite metric",
                method.name()
            );
        }
    }

    #[test]
    fn feataug_variants_produce_timings() {
        let ds = build_task_with("instacart", &GenConfig::tiny());
        let outcome = run_method(
            &ds.task,
            Method::FeatAug(FeatAugVariant::Full),
            ModelKind::Linear,
            4,
            1,
        );
        assert!(outcome.timing.is_some());
        assert!(outcome.n_features_added > 0);
    }

    #[test]
    fn method_names_match_paper_labels() {
        assert_eq!(Method::Featuretools.name(), "FT");
        assert_eq!(Method::FtChi2.name(), "FT+Chi2");
        assert_eq!(
            Method::FeatAug(FeatAugVariant::NoQti).name(),
            "FeatAug(NoQTI)"
        );
        assert_eq!(
            Method::FeatAug(FeatAugVariant::WithProxy(LowCostProxy::Spearman)).name(),
            "FeatAug[SC]"
        );
        assert!(Method::FtGini.classification_only());
        assert!(!Method::Random.classification_only());
        assert_eq!(Method::table3_methods().len(), 10);
        assert_eq!(Method::table6_methods().len(), 11);
    }
}
