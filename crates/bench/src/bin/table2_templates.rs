//! Table II — detailed information of the query templates for the one-to-many datasets:
//! aggregation-function set F, number of aggregation attributes (# of A), number of candidate
//! predicate attributes (# of attr), group-by keys K, and the number of query templates
//! 2^|attr| (# of T).
//!
//! Run: `cargo run --release -p feataug-bench --bin table2_templates`

use feataug_bench::datasets::build_task;
use feataug_bench::report::{print_header, print_row, print_title};
use feataug_tabular::AggFunc;

fn main() {
    print_title("Table II: query-template information (one-to-many datasets)");
    let funcs: Vec<&str> = AggFunc::all().iter().map(|f| f.name()).collect();
    println!("F (all datasets): {}\n", funcs.join(", "));

    print_header(&["Dataset", "# of A", "# of attr", "K", "# of T"]);
    for name in feataug_datagen::one_to_many_names() {
        let ds = build_task(name);
        let stats = ds.synthetic.stats();
        print_row(&[
            name.to_string(),
            stats.n_agg_columns.to_string(),
            stats.n_predicate_attrs.to_string(),
            ds.synthetic.key_columns.join(", "),
            format!(
                "2^{} = {}",
                stats.n_predicate_attrs,
                stats.n_query_templates()
            ),
        ]);
    }
}
