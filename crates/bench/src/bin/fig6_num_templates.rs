//! Figure 6 — downstream performance as the number of query templates grows (1..8), on the four
//! one-to-many datasets and every downstream model.
//!
//! Run: `cargo run --release -p feataug-bench --bin fig6_num_templates`
//! (restrict with `FEATAUG_MODELS` / `FEATAUG_DATASETS` for a quicker pass).

use feataug::evaluation::evaluate_table;
use feataug::FeatAug;
use feataug_bench::datasets::build_task;
use feataug_bench::methods::{feataug_config, FeatAugVariant};
use feataug_bench::report::{format_metric, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, models_from_env};
use feataug_ml::ModelKind;

/// The template counts swept by the figure.
const TEMPLATE_COUNTS: [usize; 5] = [1, 2, 4, 6, 8];

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(ModelKind::all());
    let seed = base_seed();

    for name in &datasets {
        print_title(&format!(
            "Figure 6: performance vs. number of query templates on {name}"
        ));
        let ds = build_task(name);
        let mut header = vec!["Model".to_string()];
        for n in TEMPLATE_COUNTS {
            header.push(format!("{n} templates"));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for model in &models {
            let mut cells = vec![model.to_string()];
            for n in TEMPLATE_COUNTS {
                // Keep the per-template budget fixed (the paper selects 5 queries per template);
                // the total number of features therefore grows with the template count.
                let mut cfg = feataug_config(*model, FeatAugVariant::Full, n * 3, seed);
                cfg = cfg.with_n_templates(n);
                let result = FeatAug::new(cfg).augment(&ds.task);
                let eval = evaluate_table(
                    &result.augmented_train,
                    &ds.task.label_column,
                    &ds.task.key_columns,
                    ds.task.task,
                    *model,
                    seed,
                );
                cells.push(format_metric(&eval));
            }
            print_row(&cells);
        }
    }
}
