//! Figure 5 — ablation of the two Query Template Identification optimisations.
//!
//! (a) Running time of the QTI component without any optimisation (real model evaluation of
//!     every beam node), with only the low-cost proxy (Opt1), and with proxy + promising-template
//!     prediction (Opt1 + Opt2).
//! (b)–(e) Downstream performance of FeatAug when its QTI component uses each variant.
//!
//! Run: `cargo run --release -p feataug-bench --bin fig5_qti_opts`
//! (restrict with `FEATAUG_MODELS` / `FEATAUG_DATASETS` for a quicker pass).

use feataug::evaluation::FeatureEvaluator;
use feataug::template_id::{TemplateIdConfig, TemplateIdentifier};
use feataug_bench::datasets::build_task;
use feataug_bench::methods::{feataug_config, FeatAugVariant};
use feataug_bench::report::{format_metric, format_secs, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_ml::ModelKind;
use feataug_tabular::AggFunc;

/// The three QTI variants of the figure: (use_proxy, use_predictor).
const VARIANTS: [(&str, bool, bool); 3] = [
    ("QTI w/o Opt1,2", false, false),
    ("QTI w/o Opt2", true, false),
    ("QTI with All Opts", true, true),
];

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(&[ModelKind::Linear, ModelKind::GradientBoosting]);
    let seed = base_seed();
    let budget = feature_budget();

    // ---- (a) QTI running time ------------------------------------------------------------
    print_title("Figure 5(a): Query Template Identification time by optimisation level");
    print_header(&[
        "Dataset",
        VARIANTS[0].0,
        VARIANTS[1].0,
        VARIANTS[2].0,
        "# nodes (all opts)",
    ]);
    for name in &datasets {
        let ds = build_task(name);
        let evaluator = FeatureEvaluator::new(&ds.task, ModelKind::Linear, seed);
        let agg_funcs = vec![
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Count,
            AggFunc::Max,
            AggFunc::Min,
        ];
        let mut cells = vec![name.clone()];
        let mut last_nodes = 0usize;
        for (_, use_proxy, use_predictor) in VARIANTS {
            let cfg = TemplateIdConfig {
                use_proxy,
                use_predictor,
                seed,
                ..TemplateIdConfig::fast()
            };
            let identifier = TemplateIdentifier::new(&ds.task, &evaluator, agg_funcs.clone(), cfg);
            let (_, elapsed, nodes) = identifier.identify();
            cells.push(format_secs(elapsed));
            last_nodes = nodes;
        }
        cells.push(last_nodes.to_string());
        print_row(&cells);
    }

    // ---- (b)-(e) downstream quality per dataset / model -----------------------------------
    for name in &datasets {
        print_title(&format!("Figure 5(b-e): downstream performance on {name}"));
        let ds = build_task(name);
        let mut header = vec!["Model".to_string()];
        for (label, _, _) in VARIANTS {
            header.push(label.to_string());
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for model in &models {
            let mut cells = vec![model.to_string()];
            for (_, use_proxy, use_predictor) in VARIANTS {
                let mut cfg = feataug_config(*model, FeatAugVariant::Full, budget, seed);
                cfg.template_id.use_proxy = use_proxy;
                cfg.template_id.use_predictor = use_predictor;
                let result = feataug::FeatAug::new(cfg).augment(&ds.task);
                let eval = feataug::evaluation::evaluate_table(
                    &result.augmented_train,
                    &ds.task.label_column,
                    &ds.task.key_columns,
                    ds.task.task,
                    *model,
                    seed,
                );
                cells.push(format_metric(&eval));
            }
            print_row(&cells);
        }
    }
}
