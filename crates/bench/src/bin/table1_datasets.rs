//! Table I — detailed information of the four one-to-many datasets.
//!
//! Prints, per dataset: number of tables, rows in the relevant table `R`, and the
//! train/valid/test split sizes under the paper's 0.6/0.2/0.2 protocol.
//!
//! Run: `cargo run --release -p feataug-bench --bin table1_datasets`

use feataug_bench::datasets::build_task;
use feataug_bench::report::{print_header, print_row, print_title};

fn main() {
    print_title("Table I: detailed information of the one-to-many datasets (synthetic stand-ins)");
    print_header(&[
        "Dataset",
        "# of Tables",
        "# of rows in R",
        "# of Train/Valid/Test",
    ]);
    for name in feataug_datagen::one_to_many_names() {
        let ds = build_task(name);
        let stats = ds.synthetic.stats();
        let n = stats.train_rows;
        let train = (n as f64 * 0.6).round() as usize;
        let valid = (n as f64 * 0.2).round() as usize;
        let test = n - train - valid;
        print_row(&[
            name.to_string(),
            stats.n_tables.to_string(),
            stats.relevant_rows.to_string(),
            format!("{train}/{valid}/{test}"),
        ]);
    }
    println!(
        "\n(The paper's Kaggle/Tianchi datasets hold 1.6M-7.8M relevant rows; the synthetic \
         stand-ins are scaled with FEATAUG_SCALE — see DESIGN.md for the substitution.)"
    );
}
