//! Table VIII — sensitivity of FeatAug to the low-cost proxy: Spearman correlation ("SC"),
//! mutual information ("MI") and the logistic/linear-model proxy ("LR"), on the four one-to-many
//! datasets and every downstream model.
//!
//! Run: `cargo run --release -p feataug-bench --bin table8_proxy`

use feataug::proxy::LowCostProxy;
use feataug_bench::datasets::build_task;
use feataug_bench::methods::{run_method, FeatAugVariant, Method};
use feataug_bench::report::{format_metric, metric_header, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_ml::{Metric, ModelKind};

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(ModelKind::all());
    let budget = feature_budget();
    let seed = base_seed();

    print_title("Table VIII: FeatAug performance by low-cost proxy (SC / MI / LR)");
    for model in &models {
        println!("\n**Model: {model}**\n");
        let tasks: Vec<_> = datasets
            .iter()
            .map(|name| (name.clone(), build_task(name)))
            .collect();
        let mut header: Vec<String> = vec!["Dataset / Metric".to_string()];
        for proxy in LowCostProxy::all() {
            header.push(proxy.name().to_string());
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for (name, ds) in &tasks {
            let metric = Metric::for_task(ds.task.task);
            let mut cells = vec![format!("{name} ({})", metric_header(metric))];
            for proxy in LowCostProxy::all() {
                let outcome = run_method(
                    &ds.task,
                    Method::FeatAug(FeatAugVariant::WithProxy(*proxy)),
                    *model,
                    budget,
                    seed,
                );
                cells.push(format_metric(&outcome.result));
            }
            print_row(&cells);
        }
    }
}
