//! Figure 9 — running time of FeatAug as the number of rows in the relevant table R grows,
//! split into QTI time, warm-up time and query-generation time (the paper shows Student and
//! Merchant).
//!
//! Run: `cargo run --release -p feataug-bench --bin fig9_scale_rows_r`
//! (defaults to the LR model; set `FEATAUG_MODELS` to sweep more).

use feataug::FeatAug;
use feataug_bench::datasets::{dataset_scale, to_aug_task};
use feataug_bench::methods::{feataug_config, FeatAugVariant};
use feataug_bench::report::{format_secs, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_datagen::{generate_by_name, DatasetScale};
use feataug_ml::ModelKind;

/// Fractions of the configured relevant-table size swept by the figure.
const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let datasets = datasets_from_env(&["student", "merchant"]);
    let models = models_from_env(&[ModelKind::Linear]);
    let seed = base_seed();
    let budget = feature_budget();
    let gen_cfg = dataset_scale();

    for name in &datasets {
        let full = generate_by_name(name, &gen_cfg).expect("known dataset");
        for model in &models {
            print_title(&format!(
                "Figure 9: running time vs. #rows in R on {name}, model = {model}"
            ));
            print_header(&[
                "# rows in R",
                "QTI Time",
                "Warm-up Time",
                "Generate Time",
                "Total Time",
            ]);
            for frac in FRACTIONS {
                let rows = ((full.relevant.num_rows() as f64) * frac)
                    .round()
                    .max(100.0) as usize;
                let scaled = DatasetScale::relevant_rows(rows).apply(&full);
                let task = to_aug_task(&scaled);
                let cfg = feataug_config(*model, FeatAugVariant::Full, budget, seed);
                let result = FeatAug::new(cfg).augment(&task);
                print_row(&[
                    scaled.relevant.num_rows().to_string(),
                    format_secs(result.timing.qti),
                    format_secs(result.timing.warmup),
                    format_secs(result.timing.generate),
                    format_secs(result.timing.total()),
                ]);
            }
        }
    }
}
